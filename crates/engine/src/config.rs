//! Engine configuration and strategy selection.

use std::path::PathBuf;
use std::sync::Arc;

use calc_baselines::{FuzzyStrategy, IppStrategy, MvccStrategy, NaiveStrategy, ZigzagStrategy};
use calc_common::vfs::{OsVfs, Vfs};
use calc_core::calc::CalcStrategy;
use calc_core::strategy::CheckpointStrategy;
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::CommitLog;

use crate::service::ServiceTuning;

/// Which checkpointing algorithm the engine runs — the six schemes of the
/// paper's evaluation, full or partial, plus `NoCheckpoint` (the "None"
/// baseline line in every throughput figure).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum StrategyKind {
    NoCheckpoint,
    Calc,
    PCalc,
    Naive,
    PNaive,
    Fuzzy,
    PFuzzy,
    Ipp,
    PIpp,
    Zigzag,
    PZigzag,
    /// Full multi-versioning (§2.1's design-space alternative; not one of
    /// the paper's measured baselines — included for the memory ablation).
    Mvcc,
}

impl StrategyKind {
    /// All kinds that actually checkpoint.
    pub const ALL_CHECKPOINTING: [StrategyKind; 10] = [
        StrategyKind::Calc,
        StrategyKind::PCalc,
        StrategyKind::Naive,
        StrategyKind::PNaive,
        StrategyKind::Fuzzy,
        StrategyKind::PFuzzy,
        StrategyKind::Ipp,
        StrategyKind::PIpp,
        StrategyKind::Zigzag,
        StrategyKind::PZigzag,
    ];

    /// The five full-checkpoint schemes compared in Figure 2.
    pub const FULL_SET: [StrategyKind; 5] = [
        StrategyKind::Calc,
        StrategyKind::Ipp,
        StrategyKind::Fuzzy,
        StrategyKind::Naive,
        StrategyKind::Zigzag,
    ];

    /// The five partial-checkpoint schemes compared in Figure 3.
    pub const PARTIAL_SET: [StrategyKind; 5] = [
        StrategyKind::PCalc,
        StrategyKind::PIpp,
        StrategyKind::PFuzzy,
        StrategyKind::PNaive,
        StrategyKind::PZigzag,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::NoCheckpoint => "None",
            StrategyKind::Calc => "CALC",
            StrategyKind::PCalc => "pCALC",
            StrategyKind::Naive => "Naive",
            StrategyKind::PNaive => "pNaive",
            StrategyKind::Fuzzy => "Fuzzy",
            StrategyKind::PFuzzy => "pFuzzy",
            StrategyKind::Ipp => "IPP",
            StrategyKind::PIpp => "pIPP",
            StrategyKind::Zigzag => "Zigzag",
            StrategyKind::PZigzag => "pZigzag",
            StrategyKind::Mvcc => "MVCC",
        }
    }

    /// Whether this kind takes partial checkpoints.
    pub fn is_partial(self) -> bool {
        matches!(
            self,
            StrategyKind::PCalc
                | StrategyKind::PNaive
                | StrategyKind::PFuzzy
                | StrategyKind::PIpp
                | StrategyKind::PZigzag
        )
    }

    /// Parses a name as printed by [`StrategyKind::name`]
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<StrategyKind> {
        let all = [
            StrategyKind::NoCheckpoint,
            StrategyKind::Calc,
            StrategyKind::PCalc,
            StrategyKind::Naive,
            StrategyKind::PNaive,
            StrategyKind::Fuzzy,
            StrategyKind::PFuzzy,
            StrategyKind::Ipp,
            StrategyKind::PIpp,
            StrategyKind::Zigzag,
            StrategyKind::PZigzag,
            StrategyKind::Mvcc,
        ];
        all.into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Builds the strategy. `NoCheckpoint` runs CALC's storage with its
    /// checkpointer never invoked (zero overhead at rest, the "None"
    /// baseline).
    pub fn build(self, store: StoreConfig, log: Arc<CommitLog>) -> Arc<dyn CheckpointStrategy> {
        match self {
            StrategyKind::NoCheckpoint | StrategyKind::Calc => {
                Arc::new(CalcStrategy::full(store, log))
            }
            StrategyKind::PCalc => Arc::new(CalcStrategy::partial(store, log)),
            StrategyKind::Naive => Arc::new(NaiveStrategy::full(store, log)),
            StrategyKind::PNaive => Arc::new(NaiveStrategy::partial(store, log)),
            StrategyKind::Fuzzy => Arc::new(FuzzyStrategy::full(store, log)),
            StrategyKind::PFuzzy => Arc::new(FuzzyStrategy::partial(store, log)),
            StrategyKind::Ipp => Arc::new(IppStrategy::full(store, log)),
            StrategyKind::PIpp => Arc::new(IppStrategy::partial(store, log)),
            StrategyKind::Zigzag => Arc::new(ZigzagStrategy::full(store, log)),
            StrategyKind::PZigzag => Arc::new(ZigzagStrategy::partial(store, log)),
            StrategyKind::Mvcc => Arc::new(MvccStrategy::new(store, log)),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the engine's worker pool executes transactions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecutorMode {
    /// Legacy shared pool: one submission queue, any worker takes any
    /// transaction, isolation via the shared ordered-2PL lock manager.
    #[default]
    Pool,
    /// Thread-per-core shard ownership: each worker owns a contiguous
    /// stripe of shards, transactions route to their footprint's owner,
    /// and single-owner transactions run lock-free (serial on the owner).
    /// Cross-owner transactions briefly fence the involved owners.
    ShardOwned,
}

impl ExecutorMode {
    /// Display/parse name.
    pub fn name(self) -> &'static str {
        match self {
            ExecutorMode::Pool => "pool",
            ExecutorMode::ShardOwned => "shard_owned",
        }
    }

    /// Parses a name as printed by [`ExecutorMode::name`]
    /// (case-insensitive; `-` and `_` are interchangeable).
    pub fn parse(s: &str) -> Option<ExecutorMode> {
        match s.to_ascii_lowercase().replace('-', "_").as_str() {
            "pool" => Some(ExecutorMode::Pool),
            "shard_owned" => Some(ExecutorMode::ShardOwned),
            _ => None,
        }
    }

    /// The mode named by the `EXEC_MODE` environment variable, or the
    /// default ([`ExecutorMode::Pool`]). Lets every harness (sim,
    /// conform, bench, verify.sh) rerun its suite under the shard-owned
    /// executor without per-test plumbing, the same convention as
    /// `CKPT_THREADS`/`CKPT_CODEC`.
    pub fn from_env() -> ExecutorMode {
        std::env::var("EXEC_MODE")
            .ok()
            .and_then(|s| ExecutorMode::parse(&s))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for ExecutorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a warm standby tails its primary from. Both paths name the
/// *primary's* durable state; the standby only ever reads them (plus the
/// quarantine renames `CheckpointDir::scan` performs on corrupt published
/// cycles, which are idempotent and crash-safe from either node).
#[derive(Clone, Debug)]
pub struct StandbyOf {
    /// The primary's checkpoint directory (manifests + part files).
    pub checkpoint_dir: PathBuf,
    /// The primary's segmented command-log directory.
    pub log_dir: PathBuf,
    /// How often the background tail loop polls for new log bytes.
    pub poll_interval: std::time::Duration,
}

impl StandbyOf {
    /// A standby of the primary whose durable state lives at
    /// `checkpoint_dir` + `log_dir`, polling every 10 ms.
    pub fn new(checkpoint_dir: PathBuf, log_dir: PathBuf) -> Self {
        StandbyOf {
            checkpoint_dir,
            log_dir,
            poll_interval: std::time::Duration::from_millis(10),
        }
    }
}

/// Engine configuration. The defaults match a laptop-scale rendition of
/// the paper's setup (15 worker threads on the paper's 16-core box scale
/// down to the host's parallelism).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Checkpointing algorithm.
    pub strategy: StrategyKind,
    /// Store sizing.
    pub store: StoreConfig,
    /// Worker threads executing transactions.
    pub workers: usize,
    /// How the worker pool executes transactions: the legacy shared
    /// queue + lock manager ([`ExecutorMode::Pool`]) or thread-per-core
    /// shard ownership ([`ExecutorMode::ShardOwned`]). Defaults to the
    /// `EXEC_MODE` environment variable when set (`pool`/`shard_owned`),
    /// else `Pool`.
    pub executor_mode: ExecutorMode,
    /// Shards per worker for the shard-owned executor (total routing
    /// shards = `workers * shards_per_worker`). More shards smooth load
    /// imbalance across owners; ignored under [`ExecutorMode::Pool`].
    pub shards_per_worker: usize,
    /// Submission queue capacity: `Some(n)` gives a bounded queue whose
    /// backpressure produces closed-loop (peak-throughput) behaviour;
    /// `None` is unbounded, for open-loop latency experiments where the
    /// backlog must be allowed to grow during quiesce periods (§5.1.4).
    pub queue_capacity: Option<usize>,
    /// Whether the in-memory commit log retains command payloads for
    /// deterministic replay. Off for throughput experiments.
    pub retain_command_log: bool,
    /// Directory for checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// Simulated disk bandwidth in bytes/sec (0 = unlimited). The paper's
    /// disk: ~150 MB/s.
    pub disk_bytes_per_sec: u64,
    /// Worker threads per checkpoint capture (and recovery load): each
    /// cycle writes this many part files, striped over the slot space.
    /// Defaults to `min(store shards, available cores)`; 1 reproduces the
    /// pre-parts single-writer pipeline (files still go through the
    /// manifest format, just with one part).
    pub checkpoint_threads: usize,
    /// Write a full base checkpoint right after initial load (needed by
    /// partial strategies so the recovery chain has a full ancestor).
    pub base_checkpoint: bool,
    /// Collapse partial checkpoints in a background thread after every N
    /// partials (`None` disables; Figure 4 sweeps 4/8/16).
    pub merge_batch: Option<usize>,
    /// Cadence of the supervised checkpoint daemon
    /// ([`crate::service::CheckpointService`]): `Some(d)` spawns a
    /// background thread that runs a checkpoint cycle every `d`, retrying
    /// failures under backoff and reporting via [`crate::Database::health`].
    /// `None` (the default) leaves checkpointing to explicit
    /// [`crate::Database::checkpoint_now`] calls, as the benchmark
    /// schedules require.
    pub checkpoint_interval: Option<std::time::Duration>,
    /// Retry backoff, degraded-mode threshold, and stalled-cycle watchdog
    /// for checkpoint cycles (used by the daemon and by health accounting
    /// on manual cycles).
    pub checkpoint_tuning: ServiceTuning,
    /// Durable command log (VoltDB-style, §1 of the paper): when set, a
    /// group-commit sync thread appends every commit's `(seq, proc,
    /// params)` to this file, one fsync per batch. Plain
    /// [`crate::Database::execute`]/`submit` acknowledge before the flush
    /// (the paper's low-latency choice — a crash can lose the unflushed
    /// tail, bounded by [`EngineConfig::group_commit_window`]);
    /// [`crate::Database::execute_durable`] acknowledges only after the
    /// batch fsync. Recovery replays the log on top of the newest
    /// checkpoint.
    pub command_log_path: Option<PathBuf>,
    /// Segmented command log: when set, commits are logged into rotating
    /// `cmdlog-{i:06}.log` segments under this directory instead of the
    /// single file named by `command_log_path` (which is then ignored).
    /// Sealed segments fully covered by a durable checkpoint are deleted
    /// after each successful cycle, bounding log disk use.
    pub command_log_dir: Option<PathBuf>,
    /// Rotation threshold for segmented command logs, in bytes (clamped
    /// to at least 4 KiB). `None` uses a 64 MiB default.
    pub log_segment_bytes: Option<u64>,
    /// Group-commit deadline window: the first commit of a batch waits at
    /// most this long for company before the log fsync fires. Larger
    /// windows build bigger batches (higher throughput under many
    /// concurrent committers) at the cost of durable-commit latency.
    pub group_commit_window: std::time::Duration,
    /// Group-commit batch-size cap: the fsync fires immediately once this
    /// many records are batched, even inside the window. `1` degenerates
    /// to per-commit fsync (the benchmark's baseline).
    pub group_commit_max_batch: usize,
    /// Load-aware checkpoint pacing: when on (the default), capture
    /// workers consult the engine's [`calc_common::LoadSignal`] — under
    /// [`calc_common::LoadLevel::High`] the effective capture pool is
    /// halved and writers yield between records; under `Overload` the
    /// pool clamps to one thread and writers sleep briefly per stride,
    /// ceding the machine to transaction workers. Off reproduces the
    /// fixed-pool pre-pacing behaviour exactly.
    pub adaptive_pacing: bool,
    /// Expected saturation throughput in commits/sec, used by the load
    /// signal to grade pressure (`0`, the default, disables the tps
    /// ratio; load is then judged from admission-gate occupancy alone,
    /// which only a server front-end provides).
    pub load_capacity_tps: u64,
    /// Block codec checkpoint parts are written with ([`Codec::None`]
    /// keeps the legacy byte-identical format).
    pub codec: calc_core::Codec,
    /// Retention: after each successful cycle, prune published checkpoint
    /// chains down to the newest N fulls (plus their partials). `None`
    /// keeps everything, the pre-retention behaviour.
    pub keep_checkpoints: Option<usize>,
    /// The filesystem all durable state is written through. Defaults to
    /// the real one ([`OsVfs`]); crash-simulation tests substitute a
    /// fault-injecting [`calc_common::simfs::SimVfs`].
    pub vfs: Arc<dyn Vfs>,
    /// Run as a warm standby of another node's durable state. A config
    /// with this set cannot be opened as a serving engine
    /// ([`crate::Database::open`] refuses it): build a
    /// `calc_replica::Standby` from it instead, and `promote()` that into
    /// a serving [`crate::Database`] on failover.
    pub standby_of: Option<StandbyOf>,
    /// History recorder for the conformance harness (`calc-conform`).
    /// `None` (the default) records nothing and costs one pointer check
    /// per operation; the field only exists under the `conform` feature.
    #[cfg(feature = "conform")]
    pub recorder: Option<Arc<crate::recorder::HistoryRecorder>>,
}

impl EngineConfig {
    /// A config for `strategy` with stores sized for `records` of
    /// `record_size` bytes, checkpointing into `dir`.
    pub fn new(strategy: StrategyKind, records: usize, record_size: usize, dir: PathBuf) -> Self {
        let store = StoreConfig::for_records(records + records / 4 + 1024, record_size);
        let checkpoint_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(store.shards.max(1));
        EngineConfig {
            strategy,
            store,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).max(1))
                .unwrap_or(4),
            executor_mode: ExecutorMode::from_env(),
            shards_per_worker: 8,
            queue_capacity: Some(4096),
            retain_command_log: false,
            checkpoint_dir: dir,
            disk_bytes_per_sec: 0,
            checkpoint_threads,
            base_checkpoint: strategy.is_partial(),
            merge_batch: None,
            checkpoint_interval: None,
            checkpoint_tuning: ServiceTuning::default(),
            command_log_path: None,
            command_log_dir: None,
            log_segment_bytes: None,
            group_commit_window: std::time::Duration::from_millis(2),
            group_commit_max_batch: 4096,
            adaptive_pacing: true,
            load_capacity_tps: 0,
            codec: calc_core::Codec::None,
            keep_checkpoints: None,
            vfs: Arc::new(OsVfs),
            standby_of: None,
            #[cfg(feature = "conform")]
            recorder: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for k in StrategyKind::ALL_CHECKPOINTING {
            assert_eq!(StrategyKind::parse(k.name()), Some(k));
        }
        assert_eq!(StrategyKind::parse("pcalc"), Some(StrategyKind::PCalc));
        assert_eq!(StrategyKind::parse("none"), Some(StrategyKind::NoCheckpoint));
        assert_eq!(StrategyKind::parse("bogus"), None);
    }

    #[test]
    fn partial_flags() {
        assert!(StrategyKind::PCalc.is_partial());
        assert!(!StrategyKind::Calc.is_partial());
        for k in StrategyKind::PARTIAL_SET {
            assert!(k.is_partial());
        }
        for k in StrategyKind::FULL_SET {
            assert!(!k.is_partial());
        }
    }

    #[test]
    fn build_produces_matching_names() {
        let log = Arc::new(CommitLog::new(false));
        for k in StrategyKind::ALL_CHECKPOINTING {
            let s = k.build(StoreConfig::for_records(16, 16), log.clone());
            assert_eq!(s.name(), k.name(), "strategy name mismatch for {k:?}");
            assert_eq!(s.partial(), k.is_partial());
        }
    }

    #[test]
    fn executor_mode_parse_roundtrip() {
        for m in [ExecutorMode::Pool, ExecutorMode::ShardOwned] {
            assert_eq!(ExecutorMode::parse(m.name()), Some(m));
            assert_eq!(format!("{m}"), m.name());
        }
        assert_eq!(ExecutorMode::parse("shard-owned"), Some(ExecutorMode::ShardOwned));
        assert_eq!(ExecutorMode::parse("SHARD_OWNED"), Some(ExecutorMode::ShardOwned));
        assert_eq!(ExecutorMode::parse("Pool"), Some(ExecutorMode::Pool));
        assert_eq!(ExecutorMode::parse("bogus"), None);
        assert_eq!(ExecutorMode::default(), ExecutorMode::Pool);
    }
}
