//! History recorder for concurrency conformance checking (feature
//! `conform`).
//!
//! When attached via [`crate::EngineConfig`]`::recorder`, every *committed*
//! transaction is recorded with its commit sequence, start/commit phase
//! stamps, and the full ordered list of operations it performed — reads
//! with the value each one observed, and writes with the value installed.
//! Initial bulk loads are recorded too, so the offline checker
//! (`calc-conform`) can rebuild the exact serial model: strict 2PL makes
//! the commit-sequence order a valid serial order, so replaying the
//! recorded operations in that order must reproduce every observed read,
//! and a checkpoint file must equal the replayed state at its watermark.
//!
//! Cost model: this module only exists under the `conform` cargo feature,
//! and even then the per-operation work is a single `Option` check unless
//! a recorder is actually attached (the default is `None`). Default
//! release builds carry nothing.

use std::collections::BTreeMap;
use std::sync::Mutex;

use calc_common::types::{CommitSeq, Key, TxnId, Value};
use calc_txn::commitlog::PhaseStamp;
use calc_txn::proc::ProcId;

/// One operation a transaction performed, in intra-transaction order.
#[derive(Clone, Debug)]
pub enum RecordedOp {
    /// A read, with the value it observed (`None` = key absent).
    Get {
        /// Key read.
        key: Key,
        /// Observed value at read time.
        observed: Option<Value>,
    },
    /// A blind or read-modify write.
    Put {
        /// Key written.
        key: Key,
        /// Value installed.
        value: Value,
    },
    /// An insert attempt.
    Insert {
        /// Key inserted.
        key: Key,
        /// Value supplied.
        value: Value,
        /// Whether the insert succeeded (`false` = key already present).
        inserted: bool,
    },
    /// A delete attempt.
    Delete {
        /// Key deleted.
        key: Key,
        /// Whether a record existed and was removed.
        deleted: bool,
    },
}

/// A committed transaction's recorded history.
#[derive(Clone, Debug)]
pub struct RecordedTxn {
    /// Commit sequence — position in the serial order.
    pub seq: CommitSeq,
    /// Transaction id.
    pub txn: TxnId,
    /// Stored procedure that ran.
    pub proc: ProcId,
    /// Phase stamp at transaction start.
    pub start: PhaseStamp,
    /// Phase stamp at commit (from the commit-log token).
    pub commit: PhaseStamp,
    /// Operations in execution order.
    pub ops: Vec<RecordedOp>,
}

/// Everything the checker needs from one run: the bulk-loaded initial
/// state and every committed transaction.
#[derive(Debug, Default)]
pub struct RecordedHistory {
    /// Initial state installed by `load_initial`, keyed by raw key.
    pub initial: BTreeMap<u64, Value>,
    /// Committed transactions, sorted by commit sequence.
    pub txns: Vec<RecordedTxn>,
}

/// Collects per-transaction histories from the worker pool. Push cost is
/// one short mutex-protected `Vec::push` per commit; the contention is
/// negligible next to lock acquisition and commit-log appends, but it is
/// not zero — which is why the recorder only exists behind the `conform`
/// feature and is detached by default.
#[derive(Default)]
pub struct HistoryRecorder {
    initial: Mutex<BTreeMap<u64, Value>>,
    txns: Mutex<Vec<RecordedTxn>>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one bulk-loaded record.
    pub fn record_initial(&self, key: Key, value: &[u8]) {
        self.initial.lock().unwrap().insert(key.0, value.into());
    }

    /// Records one committed transaction.
    pub fn record(&self, txn: RecordedTxn) {
        self.txns.lock().unwrap().push(txn);
    }

    /// Number of transactions recorded so far.
    pub fn len(&self) -> usize {
        self.txns.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the recorder, returning the history with transactions
    /// sorted by commit sequence. Call after the database has shut down
    /// (or otherwise quiesced) so no commit is mid-record.
    pub fn take_history(&self) -> RecordedHistory {
        let initial = std::mem::take(&mut *self.initial.lock().unwrap());
        let mut txns = std::mem::take(&mut *self.txns.lock().unwrap());
        txns.sort_by_key(|t| t.seq);
        RecordedHistory { initial, txns }
    }
}

impl std::fmt::Debug for HistoryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HistoryRecorder(txns={})", self.len())
    }
}
