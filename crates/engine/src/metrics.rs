//! Engine metrics: counters, latency histogram, and timeline sampling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use calc_common::hist::Histogram;
use calc_core::strategy::CheckpointStrategy;

/// Shared engine counters. Latency is measured from *submission* to
/// commit, so queueing during quiesce periods shows up — exactly what
/// Figure 5's CDFs require.
pub struct Metrics {
    committed: AtomicU64,
    aborted: AtomicU64,
    /// Submission-to-commit latency in nanoseconds.
    pub latency: Histogram,
    started: Instant,
}

impl Metrics {
    /// Fresh metrics anchored at now.
    pub fn new() -> Self {
        Metrics {
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            latency: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Records a committed transaction and its latency.
    #[inline]
    pub fn record_commit(&self, latency: Duration) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency.as_nanos() as u64);
    }

    /// Records an aborted transaction.
    #[inline]
    pub fn record_abort(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed count.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Aborted count.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Time since metrics creation.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Metrics(committed={}, aborted={}, {:?})",
            self.committed(),
            self.aborted(),
            self.latency
        )
    }
}

/// One sampled point of the throughput/memory timeline.
#[derive(Clone, Copy, Debug)]
pub struct TimelinePoint {
    /// Seconds since sampling started.
    pub t: f64,
    /// Commits during this sample interval.
    pub commits: u64,
    /// Instantaneous throughput (txns/sec) over the interval.
    pub tps: f64,
    /// Total record copies in memory (live + extra) — Figure 6's y-axis.
    pub mem_copies: usize,
    /// Total record bytes in memory.
    pub mem_bytes: usize,
}

/// Background sampler recording a throughput + memory timeline at a fixed
/// interval — the data series behind Figures 2(a,b), 3(a,b), 4(a), 6 and
/// 7(a).
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<TimelinePoint>>>,
}

impl Sampler {
    /// Starts sampling `metrics` (and the strategy's memory stats) every
    /// `interval`.
    pub fn start(
        metrics: Arc<Metrics>,
        strategy: Arc<dyn CheckpointStrategy>,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("calc-sampler".into())
            .spawn(move || {
                let mut points = Vec::new();
                let start = Instant::now();
                let mut last_commits = metrics.committed();
                let mut next = start + interval;
                while !stop2.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(Duration::from_millis(5)));
                        continue;
                    }
                    let commits_now = metrics.committed();
                    let delta = commits_now - last_commits;
                    last_commits = commits_now;
                    let mem = strategy.memory();
                    let t = now.duration_since(start).as_secs_f64();
                    points.push(TimelinePoint {
                        t,
                        commits: delta,
                        tps: delta as f64 / interval.as_secs_f64(),
                        mem_copies: mem.total_copies(),
                        mem_bytes: mem.total_bytes(),
                    });
                    next += interval;
                }
                points
            })
            .expect("spawn sampler");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops sampling and returns the timeline.
    pub fn finish(mut self) -> Vec<TimelinePoint> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("finish called once")
            .join()
            .expect("sampler thread panicked")
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_latency() {
        let m = Metrics::new();
        m.record_commit(Duration::from_micros(100));
        m.record_commit(Duration::from_micros(300));
        m.record_abort();
        assert_eq!(m.committed(), 2);
        assert_eq!(m.aborted(), 1);
        assert_eq!(m.latency.count(), 2);
        assert!(m.latency.max() >= 300_000);
    }

    #[test]
    fn sampler_produces_points() {
        use calc_core::calc::CalcStrategy;
        use calc_storage::dual::StoreConfig;
        use calc_txn::commitlog::CommitLog;

        let metrics = Arc::new(Metrics::new());
        let strategy: Arc<dyn CheckpointStrategy> = Arc::new(CalcStrategy::full(
            StoreConfig::for_records(16, 16),
            Arc::new(CommitLog::new(false)),
        ));
        strategy.load_initial(calc_common::types::Key(1), b"x").unwrap();
        let sampler = Sampler::start(metrics.clone(), strategy, Duration::from_millis(10));
        for _ in 0..50 {
            metrics.record_commit(Duration::from_micros(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        let points = sampler.finish();
        assert!(points.len() >= 3, "got {} points", points.len());
        let total: u64 = points.iter().map(|p| p.commits).sum();
        assert!(total <= 50);
        assert!(total >= 20, "sampled too few commits: {total}");
        assert!(points.iter().all(|p| p.mem_copies == 1));
    }
}
