//! Engine metrics: counters, latency histogram, checkpointer health, and
//! timeline sampling.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use calc_common::hist::Histogram;
use calc_core::strategy::CheckpointStrategy;

use crate::service::ErrorClass;

/// Shared engine counters. Latency is measured from *submission* to
/// commit, so queueing during quiesce periods shows up — exactly what
/// Figure 5's CDFs require.
pub struct Metrics {
    committed: AtomicU64,
    aborted: AtomicU64,
    /// Submission-to-commit latency in nanoseconds.
    pub latency: Histogram,
    started: Instant,
}

impl Metrics {
    /// Fresh metrics anchored at now.
    pub fn new() -> Self {
        Metrics {
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            latency: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Records a committed transaction and its latency.
    #[inline]
    pub fn record_commit(&self, latency: Duration) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency.as_nanos() as u64);
    }

    /// Records an aborted transaction.
    #[inline]
    pub fn record_abort(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed count.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Aborted count.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Time since metrics creation.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Metrics(committed={}, aborted={}, {:?})",
            self.committed(),
            self.aborted(),
            self.latency
        )
    }
}

/// Sentinel for "no timestamp recorded" in [`Health`]'s nanosecond slots.
const NEVER: u64 = u64::MAX;

/// Checkpointer health, shared between the [`crate::service::CheckpointService`],
/// manual [`crate::Database::checkpoint_now`] calls, the background
/// merger, and observers.
///
/// All fields are monotonic counters or last-value slots so readers never
/// block writers; timestamps are nanoseconds since construction so they
/// fit in atomics. The stalled-cycle watchdog is computed lazily by
/// readers ([`Health::stalled`]) instead of by a dedicated timer thread.
pub struct Health {
    started: Instant,
    degraded_after: u32,
    watchdog: Duration,
    consecutive_failures: AtomicU32,
    total_failures: AtomicU64,
    degraded: AtomicBool,
    degraded_entries: AtomicU64,
    degraded_exits: AtomicU64,
    /// Class + message of the last failed cycle.
    last_error: Mutex<Option<(ErrorClass, String)>>,
    /// Nanos-since-start of the last successfully published checkpoint.
    last_success_nanos: AtomicU64,
    /// Nanos-since-start when the in-flight cycle began ([`NEVER`] when
    /// no cycle is running) — the watchdog's reference point.
    cycle_started_nanos: AtomicU64,
    /// Background partial-checkpoint merges that failed.
    merge_failures: AtomicU64,
    last_merge_error: Mutex<Option<String>>,
    /// Part files written by the most recent checkpoint cycle (0 until
    /// one completes).
    last_checkpoint_parts: AtomicU64,
    /// Disk bytes written by the most recent cycle (post-compression).
    last_checkpoint_bytes: AtomicU64,
    /// Uncompressed record-stream bytes of the most recent cycle.
    last_checkpoint_raw_bytes: AtomicU64,
    /// Superseded checkpoint chains pruned by retention, lifetime total.
    checkpoints_pruned: AtomicU64,
    /// Command-log segments truncated by retention, lifetime total.
    log_segments_truncated: AtomicU64,
    /// Command-log bytes freed by retention, lifetime total.
    log_bytes_truncated: AtomicU64,
    /// Retention passes (prune or truncate) that failed. Retention runs
    /// after the cycle is durably published, so a failure never un-commits
    /// a checkpoint — disk use just stays higher until the next pass.
    retention_failures: AtomicU64,
    /// Highest commit seq a warm standby has applied (0 until tailing).
    standby_applied_seq: AtomicU64,
    /// Commits the most recent tail poll found waiting beyond the applied
    /// watermark — how far behind the standby had fallen between polls.
    standby_commits_behind: AtomicU64,
    /// Log bytes beyond the trusted tail the most recent poll could not
    /// yet apply (an in-flight append, or untrusted bytes past a wedge).
    standby_bytes_behind: AtomicU64,
    /// Times the standby rebuilt its state from the covering checkpoint
    /// after retention truncated segments below its cursor.
    standby_rebootstraps: AtomicU64,
    /// Tail errors recorded (poll failures and tail-thread exits).
    tail_errors: AtomicU64,
    /// Class + message of the most recent tail error.
    last_tail_error: Mutex<Option<(ErrorClass, String)>>,
    /// Nanos-since-start of the most recent tail poll ([`NEVER`] until
    /// the standby starts tailing) — the tail watchdog's reference point.
    tail_heartbeat_nanos: AtomicU64,
    /// The tail loop exited (thread death or fatal error): the applied
    /// watermark is frozen and will never advance again.
    tail_exited: AtomicBool,
    /// The standby was promoted: lag slots are final, not live.
    promoted: AtomicBool,
    /// Group-commit batches fsynced, lifetime total.
    commit_batches: AtomicU64,
    /// Commit records made durable across all batches (the numerator of
    /// the average batch size).
    commit_batch_records: AtomicU64,
    /// Per-batch fsync latency in nanoseconds.
    fsync_latency: Histogram,
    /// Server connections accepted, lifetime total.
    connections_opened: AtomicU64,
    /// Server connections closed, lifetime total.
    connections_closed: AtomicU64,
    /// The command log hit ENOSPC and the engine is shedding writes while
    /// the group committer retries inside its heal window.
    log_read_only: AtomicBool,
    /// Times the command log entered read-only degraded mode (ENOSPC).
    log_enospc_entries: AtomicU64,
    /// Emergency retention passes triggered by ENOSPC on the command log.
    emergency_retention_passes: AtomicU64,
    /// Transactions the shard-owned executor ran lock-free on their
    /// single owning worker.
    single_shard_txns: AtomicU64,
    /// Transactions that spanned several owners and took the cross-shard
    /// fence path.
    cross_shard_txns: AtomicU64,
    /// Transactions the router could not classify (empty or undeclarable
    /// footprint), executed on the fallback worker.
    routing_fallbacks: AtomicU64,
    /// Per-worker submission-queue depth gauges, installed by the engine
    /// at boot (worker count is not known when `Health` is built). Empty
    /// under the legacy pool executor, which has one shared queue.
    worker_queues: Mutex<Arc<[AtomicU64]>>,
}

impl Health {
    /// Fresh health state. `degraded_after` consecutive cycle failures
    /// (or one fatal failure) enter degraded mode; a cycle running longer
    /// than `watchdog` is reported stalled.
    pub fn new(degraded_after: u32, watchdog: Duration) -> Self {
        Health {
            started: Instant::now(),
            degraded_after: degraded_after.max(1),
            watchdog,
            consecutive_failures: AtomicU32::new(0),
            total_failures: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            degraded_entries: AtomicU64::new(0),
            degraded_exits: AtomicU64::new(0),
            last_error: Mutex::new(None),
            last_success_nanos: AtomicU64::new(NEVER),
            cycle_started_nanos: AtomicU64::new(NEVER),
            merge_failures: AtomicU64::new(0),
            last_merge_error: Mutex::new(None),
            last_checkpoint_parts: AtomicU64::new(0),
            last_checkpoint_bytes: AtomicU64::new(0),
            last_checkpoint_raw_bytes: AtomicU64::new(0),
            checkpoints_pruned: AtomicU64::new(0),
            log_segments_truncated: AtomicU64::new(0),
            log_bytes_truncated: AtomicU64::new(0),
            retention_failures: AtomicU64::new(0),
            standby_applied_seq: AtomicU64::new(0),
            standby_commits_behind: AtomicU64::new(0),
            standby_bytes_behind: AtomicU64::new(0),
            standby_rebootstraps: AtomicU64::new(0),
            tail_errors: AtomicU64::new(0),
            last_tail_error: Mutex::new(None),
            tail_heartbeat_nanos: AtomicU64::new(NEVER),
            tail_exited: AtomicBool::new(false),
            promoted: AtomicBool::new(false),
            commit_batches: AtomicU64::new(0),
            commit_batch_records: AtomicU64::new(0),
            fsync_latency: Histogram::new(),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            log_read_only: AtomicBool::new(false),
            log_enospc_entries: AtomicU64::new(0),
            emergency_retention_passes: AtomicU64::new(0),
            single_shard_txns: AtomicU64::new(0),
            cross_shard_txns: AtomicU64::new(0),
            routing_fallbacks: AtomicU64::new(0),
            worker_queues: Mutex::new(Arc::from(Vec::new().into_boxed_slice())),
        }
    }

    fn now_nanos(&self) -> u64 {
        // Saturate far below NEVER; ~584 years of uptime before wrap.
        self.started.elapsed().as_nanos().min((NEVER - 1) as u128) as u64
    }

    /// A checkpoint cycle is starting (arms the watchdog).
    pub fn cycle_started(&self) {
        self.cycle_started_nanos
            .store(self.now_nanos(), Ordering::Release);
    }

    /// The in-flight cycle published successfully: resets the failure
    /// streak and exits degraded mode (self-heal).
    pub fn cycle_succeeded(&self) {
        self.last_success_nanos
            .store(self.now_nanos(), Ordering::Release);
        self.cycle_started_nanos.store(NEVER, Ordering::Release);
        self.consecutive_failures.store(0, Ordering::Release);
        if self.degraded.swap(false, Ordering::AcqRel) {
            self.degraded_exits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The in-flight cycle failed. Enters degraded mode when the streak
    /// reaches the threshold, or immediately on a fatal error. Returns
    /// `true` if this failure newly entered degraded mode.
    pub fn cycle_failed(&self, class: ErrorClass, err: &io::Error) -> bool {
        self.cycle_started_nanos.store(NEVER, Ordering::Release);
        let streak = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        self.total_failures.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock() = Some((class, err.to_string()));
        if (class == ErrorClass::Fatal || streak >= self.degraded_after)
            && !self.degraded.swap(true, Ordering::AcqRel)
        {
            self.degraded_entries.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// A background partial-checkpoint merge failed (it will be retried
    /// at the next merge trigger).
    pub fn record_merge_failure(&self, err: &io::Error) {
        self.merge_failures.fetch_add(1, Ordering::Relaxed);
        *self.last_merge_error.lock() = Some(err.to_string());
    }

    /// Whether the engine is in degraded mode: checkpointing is failing,
    /// but transactions keep committing and the command log keeps
    /// growing, so recovery works — with a longer replay.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Times degraded mode has been entered.
    pub fn degraded_entries(&self) -> u64 {
        self.degraded_entries.load(Ordering::Relaxed)
    }

    /// Times degraded mode has been exited (self-heals).
    pub fn degraded_exits(&self) -> u64 {
        self.degraded_exits.load(Ordering::Relaxed)
    }

    /// Current streak of failed cycles.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::Acquire)
    }

    /// Total failed cycles over the engine's lifetime.
    pub fn total_failures(&self) -> u64 {
        self.total_failures.load(Ordering::Relaxed)
    }

    /// Class and message of the most recent cycle failure.
    pub fn last_error(&self) -> Option<(ErrorClass, String)> {
        self.last_error.lock().clone()
    }

    /// Time since the last successfully published checkpoint (`None` if
    /// none has ever published) — the recovery-replay-length proxy.
    pub fn time_since_last_success(&self) -> Option<Duration> {
        match self.last_success_nanos.load(Ordering::Acquire) {
            NEVER => None,
            n => Some(self.started.elapsed().saturating_sub(Duration::from_nanos(n))),
        }
    }

    /// Watchdog: `true` while an in-flight cycle has been running longer
    /// than the configured budget. Distinguishes "cycles failing fast"
    /// (degraded mode, retries in progress) from "a cycle is wedged and
    /// nothing is being retried at all".
    pub fn stalled(&self) -> bool {
        match self.cycle_started_nanos.load(Ordering::Acquire) {
            NEVER => false,
            n => self.started.elapsed().saturating_sub(Duration::from_nanos(n)) > self.watchdog,
        }
    }

    /// The stalled-cycle budget.
    pub fn watchdog(&self) -> Duration {
        self.watchdog
    }

    /// Records how many part files the just-completed checkpoint cycle
    /// wrote (from [`calc_core::strategy::CheckpointStats::parts`]).
    pub fn record_parts(&self, parts: usize) {
        self.last_checkpoint_parts
            .store(parts as u64, Ordering::Relaxed);
    }

    /// Part files written by the most recent checkpoint cycle (0 before
    /// the first completes). With `checkpoint_threads = n` this is n for
    /// every parallel capture; 1 indicates the serial pipeline.
    pub fn last_checkpoint_parts(&self) -> u64 {
        self.last_checkpoint_parts.load(Ordering::Relaxed)
    }

    /// Records the just-completed cycle's disk footprint (from
    /// [`calc_core::strategy::CheckpointStats`]): bytes on disk and the
    /// uncompressed stream size they encode.
    pub fn record_footprint(&self, bytes: u64, raw_bytes: u64) {
        self.last_checkpoint_bytes.store(bytes, Ordering::Relaxed);
        self.last_checkpoint_raw_bytes
            .store(raw_bytes, Ordering::Relaxed);
    }

    /// Disk bytes written by the most recent checkpoint cycle.
    pub fn last_checkpoint_bytes(&self) -> u64 {
        self.last_checkpoint_bytes.load(Ordering::Relaxed)
    }

    /// Uncompressed record-stream bytes of the most recent cycle. The
    /// ratio against [`Health::last_checkpoint_bytes`] is the cycle's
    /// compression ratio (1.0 under codec `none`).
    pub fn last_checkpoint_raw_bytes(&self) -> u64 {
        self.last_checkpoint_raw_bytes.load(Ordering::Relaxed)
    }

    /// Records one retention pass: checkpoints pruned, command-log
    /// segments truncated, and log bytes freed.
    pub fn record_retention(&self, pruned: u64, segments: u64, log_bytes: u64) {
        self.checkpoints_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.log_segments_truncated
            .fetch_add(segments, Ordering::Relaxed);
        self.log_bytes_truncated
            .fetch_add(log_bytes, Ordering::Relaxed);
    }

    /// A retention pass failed (the cycle itself already published).
    pub fn record_retention_failure(&self) {
        self.retention_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Superseded checkpoints pruned by retention, lifetime total.
    pub fn checkpoints_pruned(&self) -> u64 {
        self.checkpoints_pruned.load(Ordering::Relaxed)
    }

    /// Command-log segments truncated by retention, lifetime total.
    pub fn log_segments_truncated(&self) -> u64 {
        self.log_segments_truncated.load(Ordering::Relaxed)
    }

    /// Command-log bytes freed by retention, lifetime total.
    pub fn log_bytes_truncated(&self) -> u64 {
        self.log_bytes_truncated.load(Ordering::Relaxed)
    }

    /// Failed retention passes.
    pub fn retention_failures(&self) -> u64 {
        self.retention_failures.load(Ordering::Relaxed)
    }

    // --- group commit & server connections ---

    /// Records one successful group-commit batch: how many commit records
    /// it made durable and how long its fsync took. Fed by the engine's
    /// [`calc_recovery::GroupCommitter`] batch observer.
    pub fn record_commit_batch(&self, records: u64, fsync: Duration) {
        self.commit_batches.fetch_add(1, Ordering::Relaxed);
        self.commit_batch_records.fetch_add(records, Ordering::Relaxed);
        self.fsync_latency.record(fsync.as_nanos() as u64);
    }

    /// Group-commit batches fsynced, lifetime total.
    pub fn commit_batches(&self) -> u64 {
        self.commit_batches.load(Ordering::Relaxed)
    }

    /// Commit records made durable across all batches.
    pub fn commit_batch_records(&self) -> u64 {
        self.commit_batch_records.load(Ordering::Relaxed)
    }

    /// Mean records per fsync — the amortization factor group commit
    /// achieves (1.0 means every commit paid its own fsync).
    pub fn avg_batch_size(&self) -> f64 {
        let batches = self.commit_batches();
        if batches == 0 {
            return 0.0;
        }
        self.commit_batch_records() as f64 / batches as f64
    }

    /// 99th-percentile batch fsync latency in microseconds (0 before the
    /// first batch).
    pub fn fsync_p99_us(&self) -> u64 {
        self.fsync_latency.quantile(0.99) / 1_000
    }

    /// A server connection was accepted.
    pub fn connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A server connection was closed.
    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open (opened minus closed).
    pub fn active_connections(&self) -> u64 {
        self.connections_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.connections_closed.load(Ordering::Relaxed))
    }

    /// Connections accepted over the engine's lifetime.
    pub fn total_connections(&self) -> u64 {
        self.connections_opened.load(Ordering::Relaxed)
    }

    // --- command-log read-only degradation (ENOSPC) ---

    /// The command log's read-only mode transitioned: `true` entering
    /// (ENOSPC on the log), `false` healing (space returned). Counts
    /// entries; fed by the group committer's read-only observer.
    pub fn set_log_read_only(&self, entering: bool) {
        let was = self.log_read_only.swap(entering, Ordering::AcqRel);
        if entering && !was {
            self.log_enospc_entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the engine is currently shedding writes because the
    /// command log hit ENOSPC (self-clears when the committer heals).
    pub fn log_read_only(&self) -> bool {
        self.log_read_only.load(Ordering::Acquire)
    }

    /// Times the command log entered read-only degraded mode.
    pub fn log_enospc_entries(&self) -> u64 {
        self.log_enospc_entries.load(Ordering::Relaxed)
    }

    /// An ENOSPC-triggered emergency retention pass ran (attempting to
    /// free log segments and superseded checkpoints).
    pub fn record_emergency_retention(&self) {
        self.emergency_retention_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Emergency retention passes triggered by log ENOSPC.
    pub fn emergency_retention_passes(&self) -> u64 {
        self.emergency_retention_passes.load(Ordering::Relaxed)
    }

    // --- shard-owned executor ---

    /// A transaction ran lock-free on its single owning worker.
    #[inline]
    pub fn record_single_shard_txn(&self) {
        self.single_shard_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// A transaction spanned several owners and took the fence path.
    #[inline]
    pub fn record_cross_shard_txn(&self) {
        self.cross_shard_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// The router could not classify a transaction's footprint; it ran on
    /// the fallback worker.
    #[inline]
    pub fn record_routing_fallback(&self) {
        self.routing_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Lock-free single-owner transactions executed, lifetime total.
    pub fn single_shard_txns(&self) -> u64 {
        self.single_shard_txns.load(Ordering::Relaxed)
    }

    /// Cross-owner (fenced) transactions executed, lifetime total.
    pub fn cross_shard_txns(&self) -> u64 {
        self.cross_shard_txns.load(Ordering::Relaxed)
    }

    /// Unclassifiable transactions routed to the fallback worker.
    pub fn routing_fallbacks(&self) -> u64 {
        self.routing_fallbacks.load(Ordering::Relaxed)
    }

    /// Installs the per-worker queue-depth gauges. Called once by the
    /// shard-owned executor at boot; the gauges themselves are updated by
    /// the dispatch path (push) and the workers (pop).
    pub fn install_worker_queues(&self, queues: Arc<[AtomicU64]>) {
        *self.worker_queues.lock() = queues;
    }

    /// Current submission-queue depth per worker (empty under the legacy
    /// pool executor, which shares one queue).
    pub fn worker_queue_depths(&self) -> Vec<u64> {
        self.worker_queues
            .lock()
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }

    /// Background merges that failed.
    pub fn merge_failures(&self) -> u64 {
        self.merge_failures.load(Ordering::Relaxed)
    }

    /// Message of the most recent merge failure.
    pub fn last_merge_error(&self) -> Option<String> {
        self.last_merge_error.lock().clone()
    }

    // --- warm standby lag ---

    /// A tail poll is running now (stamps the tail heartbeat). Called at
    /// the top of every standby poll, whether or not it makes progress.
    pub fn tail_heartbeat(&self) {
        self.tail_heartbeat_nanos
            .store(self.now_nanos(), Ordering::Release);
    }

    /// Records the outcome of one standby tail poll: the applied commit
    /// watermark, how many commits the poll found waiting (its lag at
    /// poll start), and the log bytes it could not yet trust/apply.
    pub fn record_standby_lag(&self, applied_seq: u64, commits_behind: u64, bytes_behind: u64) {
        self.standby_applied_seq
            .fetch_max(applied_seq, Ordering::AcqRel);
        self.standby_commits_behind
            .store(commits_behind, Ordering::Relaxed);
        self.standby_bytes_behind
            .store(bytes_behind, Ordering::Relaxed);
    }

    /// Retention truncated below the standby's cursor and its state was
    /// rebuilt from the covering checkpoint.
    pub fn record_standby_rebootstrap(&self) {
        self.standby_rebootstraps.fetch_add(1, Ordering::Relaxed);
    }

    /// A tail poll failed. Recoverable errors leave the loop running;
    /// pair with [`Health::record_tail_exit`] when the loop dies.
    pub fn record_tail_error(&self, class: ErrorClass, err: &io::Error) {
        self.tail_errors.fetch_add(1, Ordering::Relaxed);
        *self.last_tail_error.lock() = Some((class, err.to_string()));
    }

    /// The tail loop exited for good (fatal error, wedged log, or thread
    /// death). The applied watermark is frozen: observers must see a
    /// classified error, not a silently stale standby.
    pub fn record_tail_exit(&self, class: ErrorClass, err: &io::Error) {
        self.record_tail_error(class, err);
        self.tail_exited.store(true, Ordering::Release);
        self.tail_heartbeat_nanos.store(NEVER, Ordering::Release);
    }

    /// The standby was promoted: the lag slots are zeroed (a promoted
    /// engine has no one to lag behind) and the watchdog is disarmed.
    pub fn standby_promoted(&self) {
        self.promoted.store(true, Ordering::Release);
        self.standby_commits_behind.store(0, Ordering::Relaxed);
        self.standby_bytes_behind.store(0, Ordering::Relaxed);
        self.tail_heartbeat_nanos.store(NEVER, Ordering::Release);
    }

    /// Highest commit seq the standby has applied.
    pub fn standby_applied_seq(&self) -> u64 {
        self.standby_applied_seq.load(Ordering::Acquire)
    }

    /// Commits the most recent tail poll found waiting (0 when caught up
    /// or promoted).
    pub fn standby_commits_behind(&self) -> u64 {
        self.standby_commits_behind.load(Ordering::Relaxed)
    }

    /// Log bytes the most recent tail poll could not yet apply.
    pub fn standby_bytes_behind(&self) -> u64 {
        self.standby_bytes_behind.load(Ordering::Relaxed)
    }

    /// Checkpoint re-bootstraps forced by retention, lifetime total.
    pub fn standby_rebootstraps(&self) -> u64 {
        self.standby_rebootstraps.load(Ordering::Relaxed)
    }

    /// Tail errors recorded.
    pub fn tail_errors(&self) -> u64 {
        self.tail_errors.load(Ordering::Relaxed)
    }

    /// Class and message of the most recent tail error.
    pub fn last_tail_error(&self) -> Option<(ErrorClass, String)> {
        self.last_tail_error.lock().clone()
    }

    /// Whether the tail loop has exited for good.
    pub fn tail_exited(&self) -> bool {
        self.tail_exited.load(Ordering::Acquire)
    }

    /// Whether this standby has been promoted.
    pub fn promoted(&self) -> bool {
        self.promoted.load(Ordering::Acquire)
    }

    /// Tail watchdog: `true` when the standby *should* be polling but no
    /// poll has stamped the heartbeat within the watchdog budget — a
    /// stalled (wedged, deadlocked, or silently dead) tail thread.
    /// Disarmed until the first poll, after promotion, and after a
    /// recorded tail exit (those surface via [`Health::tail_exited`]).
    pub fn tail_stalled(&self) -> bool {
        match self.tail_heartbeat_nanos.load(Ordering::Acquire) {
            NEVER => false,
            n => self.started.elapsed().saturating_sub(Duration::from_nanos(n)) > self.watchdog,
        }
    }
}

impl std::fmt::Debug for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Health(degraded={}, streak={}, total_failures={}, merge_failures={}, stalled={})",
            self.degraded(),
            self.consecutive_failures(),
            self.total_failures(),
            self.merge_failures(),
            self.stalled()
        )
    }
}

/// One sampled point of the throughput/memory timeline.
#[derive(Clone, Copy, Debug)]
pub struct TimelinePoint {
    /// Seconds since sampling started.
    pub t: f64,
    /// Commits during this sample interval.
    pub commits: u64,
    /// Instantaneous throughput (txns/sec) over the interval.
    pub tps: f64,
    /// Total record copies in memory (live + extra) — Figure 6's y-axis.
    pub mem_copies: usize,
    /// Total record bytes in memory.
    pub mem_bytes: usize,
}

/// Background sampler recording a throughput + memory timeline at a fixed
/// interval — the data series behind Figures 2(a,b), 3(a,b), 4(a), 6 and
/// 7(a).
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<TimelinePoint>>>,
}

impl Sampler {
    /// Starts sampling `metrics` (and the strategy's memory stats) every
    /// `interval`.
    pub fn start(
        metrics: Arc<Metrics>,
        strategy: Arc<dyn CheckpointStrategy>,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("calc-sampler".into())
            .spawn(move || {
                let mut points = Vec::new();
                let start = Instant::now();
                let mut last_commits = metrics.committed();
                let mut next = start + interval;
                while !stop2.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(Duration::from_millis(5)));
                        continue;
                    }
                    let commits_now = metrics.committed();
                    let delta = commits_now - last_commits;
                    last_commits = commits_now;
                    let mem = strategy.memory();
                    let t = now.duration_since(start).as_secs_f64();
                    points.push(TimelinePoint {
                        t,
                        commits: delta,
                        tps: delta as f64 / interval.as_secs_f64(),
                        mem_copies: mem.total_copies(),
                        mem_bytes: mem.total_bytes(),
                    });
                    next += interval;
                }
                points
            })
            .expect("spawn sampler");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops sampling and returns the timeline.
    pub fn finish(mut self) -> Vec<TimelinePoint> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("finish called once")
            .join()
            .expect("sampler thread panicked")
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_degraded_threshold_and_self_heal() {
        let h = Health::new(2, Duration::from_secs(1));
        let err = io::Error::new(io::ErrorKind::Interrupted, "x");
        assert!(!h.cycle_failed(ErrorClass::Transient, &err));
        assert!(!h.degraded());
        assert!(h.cycle_failed(ErrorClass::Transient, &err));
        assert!(h.degraded());
        assert_eq!(h.consecutive_failures(), 2);
        // Further failures do not re-enter.
        assert!(!h.cycle_failed(ErrorClass::Transient, &err));
        assert_eq!(h.degraded_entries(), 1);
        h.cycle_succeeded();
        assert!(!h.degraded());
        assert_eq!(h.degraded_exits(), 1);
        assert_eq!(h.consecutive_failures(), 0);
        assert_eq!(h.total_failures(), 3);
    }

    #[test]
    fn health_watchdog_is_lazy_and_cycle_scoped() {
        let h = Health::new(3, Duration::from_millis(2));
        assert!(!h.stalled(), "no cycle in flight");
        h.cycle_started();
        assert!(!h.stalled(), "budget not yet exceeded");
        std::thread::sleep(Duration::from_millis(10));
        assert!(h.stalled(), "overdue cycle must trip the watchdog");
        h.cycle_succeeded();
        assert!(!h.stalled(), "completed cycle must clear the watchdog");
    }

    #[test]
    fn standby_lag_advances_while_tailing_and_resets_on_promotion() {
        let h = Health::new(3, Duration::from_secs(1));
        assert_eq!(h.standby_applied_seq(), 0);
        assert!(!h.tail_stalled(), "watchdog disarmed before the first poll");

        // Poll 1: 5 commits were waiting, all applied, clean tail.
        h.tail_heartbeat();
        h.record_standby_lag(5, 5, 0);
        assert_eq!(h.standby_applied_seq(), 5);
        assert_eq!(h.standby_commits_behind(), 5);

        // Poll 2: the primary pulled further ahead between polls — lag
        // advances — and the tail ends mid-append (pending bytes).
        h.tail_heartbeat();
        h.record_standby_lag(40, 35, 17);
        assert_eq!(h.standby_applied_seq(), 40);
        assert_eq!(h.standby_commits_behind(), 35);
        assert_eq!(h.standby_bytes_behind(), 17);

        // The applied watermark is monotonic even if a racy reader
        // records a stale value.
        h.record_standby_lag(12, 0, 0);
        assert_eq!(h.standby_applied_seq(), 40);

        h.record_standby_rebootstrap();
        assert_eq!(h.standby_rebootstraps(), 1);

        h.standby_promoted();
        assert!(h.promoted());
        assert_eq!(h.standby_commits_behind(), 0, "promotion resets lag");
        assert_eq!(h.standby_bytes_behind(), 0);
        assert!(!h.tail_stalled(), "promotion disarms the tail watchdog");
        assert_eq!(
            h.standby_applied_seq(),
            40,
            "the sealed watermark survives promotion"
        );
    }

    #[test]
    fn dead_or_stalled_tail_surfaces_as_classified_error() {
        let h = Health::new(3, Duration::from_millis(2));
        // A stalled tail: one heartbeat, then silence past the watchdog.
        h.tail_heartbeat();
        h.record_standby_lag(3, 3, 0);
        assert!(!h.tail_stalled());
        std::thread::sleep(Duration::from_millis(10));
        assert!(h.tail_stalled(), "silent tail thread must trip the watchdog");
        assert_eq!(h.standby_applied_seq(), 3, "watermark frozen, not advancing");

        // A dead tail: the loop records a classified exit instead of
        // freezing silently.
        let err = io::Error::new(io::ErrorKind::InvalidData, "sealed segment torn");
        h.record_tail_exit(ErrorClass::Fatal, &err);
        assert!(h.tail_exited());
        assert_eq!(h.tail_errors(), 1);
        let (class, msg) = h.last_tail_error().expect("classified error recorded");
        assert_eq!(class, ErrorClass::Fatal);
        assert!(msg.contains("sealed segment torn"));
        assert!(
            !h.tail_stalled(),
            "an exited tail reports via tail_exited, not a stuck watchdog"
        );
    }

    #[test]
    fn counters_and_latency() {
        let m = Metrics::new();
        m.record_commit(Duration::from_micros(100));
        m.record_commit(Duration::from_micros(300));
        m.record_abort();
        assert_eq!(m.committed(), 2);
        assert_eq!(m.aborted(), 1);
        assert_eq!(m.latency.count(), 2);
        assert!(m.latency.max() >= 300_000);
    }

    #[test]
    fn group_commit_counters_track_batches_and_fsync_latency() {
        let h = Health::new(3, Duration::from_secs(1));
        assert_eq!(h.commit_batches(), 0);
        assert_eq!(h.avg_batch_size(), 0.0, "no batches yet");
        assert_eq!(h.fsync_p99_us(), 0);

        h.record_commit_batch(10, Duration::from_micros(500));
        h.record_commit_batch(30, Duration::from_micros(1500));
        assert_eq!(h.commit_batches(), 2);
        assert_eq!(h.commit_batch_records(), 40);
        assert!((h.avg_batch_size() - 20.0).abs() < f64::EPSILON);
        // p99 lands on the slowest recorded fsync (histogram buckets are
        // approximate upward, never below the true value's bucket floor).
        assert!(h.fsync_p99_us() >= 1000, "p99 {}us", h.fsync_p99_us());
    }

    #[test]
    fn connection_counters_balance_open_and_close() {
        let h = Health::new(3, Duration::from_secs(1));
        assert_eq!(h.active_connections(), 0);
        h.connection_opened();
        h.connection_opened();
        h.connection_opened();
        assert_eq!(h.active_connections(), 3);
        assert_eq!(h.total_connections(), 3);
        h.connection_closed();
        assert_eq!(h.active_connections(), 2);
        h.connection_closed();
        h.connection_closed();
        assert_eq!(h.active_connections(), 0);
        // A stray double-close must not underflow.
        h.connection_closed();
        assert_eq!(h.active_connections(), 0);
        assert_eq!(h.total_connections(), 3, "total is monotone");
    }

    #[test]
    fn log_read_only_transitions_count_entries_once() {
        let h = Health::new(3, Duration::from_secs(1));
        assert!(!h.log_read_only());
        assert_eq!(h.log_enospc_entries(), 0);
        h.set_log_read_only(true);
        assert!(h.log_read_only());
        assert_eq!(h.log_enospc_entries(), 1);
        // Re-entering while already read-only is not a new entry.
        h.set_log_read_only(true);
        assert_eq!(h.log_enospc_entries(), 1);
        h.set_log_read_only(false);
        assert!(!h.log_read_only());
        h.set_log_read_only(true);
        assert_eq!(h.log_enospc_entries(), 2, "a fresh entry counts again");
        h.record_emergency_retention();
        assert_eq!(h.emergency_retention_passes(), 1);
    }

    #[test]
    fn sampler_produces_points() {
        use calc_core::calc::CalcStrategy;
        use calc_storage::dual::StoreConfig;
        use calc_txn::commitlog::CommitLog;

        let metrics = Arc::new(Metrics::new());
        let strategy: Arc<dyn CheckpointStrategy> = Arc::new(CalcStrategy::full(
            StoreConfig::for_records(16, 16),
            Arc::new(CommitLog::new(false)),
        ));
        strategy.load_initial(calc_common::types::Key(1), b"x").unwrap();
        let sampler = Sampler::start(metrics.clone(), strategy, Duration::from_millis(10));
        for _ in 0..50 {
            metrics.record_commit(Duration::from_micros(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        let points = sampler.finish();
        assert!(points.len() >= 3, "got {} points", points.len());
        let total: u64 = points.iter().map(|p| p.commits).sum();
        assert!(total <= 50);
        assert!(total >= 20, "sampled too few commits: {total}");
        assert!(points.iter().all(|p| p.mem_copies == 1));
    }
}
