//! The `Database` facade: transaction executor (shared pool or
//! thread-per-core shard ownership), admission gate, checkpoint
//! triggering, and background merging.
//!
//! Two executor modes share every invariant below the dispatch layer:
//!
//! * [`ExecutorMode::Pool`] — the paper's §4 design: one submission
//!   queue, any worker takes any transaction, isolation via the shared
//!   ordered-2PL lock manager.
//! * [`ExecutorMode::ShardOwned`] — thread-per-core shard ownership:
//!   each worker owns a contiguous stripe of shards
//!   ([`calc_txn::route::ShardRouter`], aligned with the checkpoint
//!   pipeline's `ShardPartition` striping and recovery's `key % shards`
//!   bucketing), transactions route to their pre-declared footprint's
//!   owner, and single-owner transactions execute **lock-free** — owner
//!   serialism replaces per-key latching. A footprint spanning several
//!   owners takes a brief multi-shard *fence*: the lowest involved owner
//!   coordinates, the others park until the commit completes. Fences
//!   only ever target higher-indexed workers, so fence-wait edges form a
//!   DAG and cannot deadlock.
//!
//! Both modes assign commit sequences and enqueue on the durable log
//! under the single `cmdlog` mutex, so channel order equals seq order
//! and deterministic replay, the conformance checker, group commit, and
//! standby replay see byte-identical commit-token streams.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use calc_common::load::LoadSignal;
use calc_common::types::{CommitSeq, Key, TxnId, Value};
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::merge::{collapse, MergeStats};
use calc_core::strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoImage, UndoRec,
};
use calc_core::throttle::Throttle;
use calc_storage::dual::StoreError;
use calc_recovery::{
    truncate_segments_below, CommandLogWriter, DurabilityTicket, GroupCommitConfig,
    GroupCommitter, LogBackend, SegmentedLogWriter, TruncateStats,
};
use calc_common::perturb::{point as perturb_point, Site};
use calc_txn::commitlog::{CommitLog, CommitRecord};
use calc_txn::locks::LockManager;
use calc_txn::proc::{AbortReason, ProcId, ProcRegistry, TxnOps};
use calc_txn::route::{Route, ShardRouter};

use crate::config::{EngineConfig, ExecutorMode, StrategyKind};
use crate::metrics::{Health, Metrics};
use crate::service::{classify, CheckpointService};

/// Result of a synchronously executed transaction.
#[derive(Clone, Debug)]
pub enum TxnOutcome {
    /// Committed at the given sequence.
    Committed(CommitSeq),
    /// Rolled back.
    Aborted(AbortReason),
}

/// Re-exported so existing engine callers keep their `SyncError` paths;
/// the type now lives with the group-commit machinery it describes.
pub use calc_recovery::SyncError;

/// Slot for the ENOSPC emergency-retention trigger. The group-commit
/// read-only observer captures it before `Inner` exists; boot fills it
/// in once the engine is constructed.
type RetentionTrigger = Arc<Mutex<Option<Box<dyn Fn() + Send + Sync>>>>;

struct Request {
    proc: ProcId,
    params: Arc<[u8]>,
    submitted: Instant,
    /// Ack-after-fsync: the worker requests a [`DurabilityTicket`] for
    /// the commit and hands it back with the outcome, so the *caller*
    /// thread (not a worker) blocks on the batch fsync.
    durable: bool,
    reply: Option<Sender<(TxnOutcome, Option<DurabilityTicket>)>>,
}

/// How a shard-owned worker must isolate a routed request, decided on the
/// submitting thread from the procedure's pre-declared lock footprint.
enum OwnedMode {
    /// The whole footprint is owned by the receiving worker: execute
    /// serially, no locks. Carries the procedure the router already
    /// resolved, so the owner does zero registry lookups — the routed
    /// fast path does strictly less per-transaction work than the pool.
    Single(Arc<dyn calc_txn::proc::Procedure>),
    /// The footprint spans the receiving worker (the coordinator, lowest
    /// involved owner) plus these higher-indexed co-owners: fence them,
    /// execute, release.
    Cross(Arc<dyn calc_txn::proc::Procedure>, Vec<usize>),
    /// Routing already failed (unknown procedure, undeclarable
    /// footprint): the worker reports the abort without running anything,
    /// so outcome accounting matches the pool executor exactly.
    Abort(AbortReason),
}

/// A message on a shard-owned worker's queue.
enum WorkerMsg {
    Req(Request, OwnedMode),
    /// Park until the sending coordinator's cross-shard commit completes.
    Fence(Arc<FenceState>),
    /// Drain-and-exit marker; [`Database::stop_threads`] sends exactly one
    /// per worker, after all requests, and joins each worker in ascending
    /// index order so no dead worker is ever a fence target.
    Shutdown,
}

/// Rendezvous for a cross-shard fence: co-owners park, the coordinator
/// waits for all of them, commits, and releases.
///
/// Deadlock freedom: fences only target workers with a *higher* index
/// than the coordinator (the coordinator is the lowest involved owner),
/// so every fence-wait edge points up the worker order and no cycle can
/// form. The coordinator takes the admission gate only *after* every
/// co-owner has parked — a parked worker holds no gate access, so a
/// pending quiesce writer (which blocks new readers under parking_lot's
/// writer preference) can serialize against the fence without wedging it.
struct FenceState {
    /// (parked co-owners, released flag).
    state: Mutex<(usize, bool)>,
    cv: Condvar,
    expected: usize,
}

impl FenceState {
    fn new(expected: usize) -> Self {
        FenceState {
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
            expected,
        }
    }

    /// Co-owner side: register as parked, block until released.
    fn park(&self) {
        perturb_point(Site::OwnerHandoff);
        let mut s = self.state.lock();
        s.0 += 1;
        self.cv.notify_all();
        while !s.1 {
            self.cv.wait(&mut s);
        }
    }

    /// Coordinator side: wait until every co-owner is parked.
    fn wait_parked(&self) {
        let mut s = self.state.lock();
        while s.0 < self.expected {
            self.cv.wait(&mut s);
        }
    }

    /// Coordinator side: the commit is done, release the co-owners.
    fn release(&self) {
        perturb_point(Site::OwnerHandoff);
        let mut s = self.state.lock();
        s.1 = true;
        self.cv.notify_all();
    }
}

/// The shard-owned executor's dispatch state: one queue per worker plus
/// the router and per-worker depth gauges (shared with [`Health`]).
struct ShardExec {
    senders: Vec<Sender<WorkerMsg>>,
    router: ShardRouter,
    depths: Arc<[AtomicU64]>,
}

impl ShardExec {
    /// Classifies a request's footprint and picks its worker. Counters
    /// feed [`Health`] so routing quality is observable from day one.
    fn route(&self, inner: &Inner, proc: ProcId, params: &[u8]) -> (usize, OwnedMode) {
        let Some(p) = inner.registry.get(proc) else {
            inner.health.record_routing_fallback();
            return (
                0,
                OwnedMode::Abort(AbortReason::BadParams(format!(
                    "unknown procedure {proc:?}"
                ))),
            );
        };
        match p.locks(params) {
            Err(e) => {
                inner.health.record_routing_fallback();
                (0, OwnedMode::Abort(e))
            }
            Ok(request) => match self.router.classify(&request) {
                Route::Single(w) => {
                    inner.health.record_single_shard_txn();
                    (w, OwnedMode::Single(p.clone()))
                }
                Route::Cross(owners) => {
                    inner.health.record_cross_shard_txn();
                    let coordinator = owners[0];
                    (
                        coordinator,
                        OwnedMode::Cross(p.clone(), owners[1..].to_vec()),
                    )
                }
                // An empty footprint touches nothing (the determinism
                // contract), so serial execution anywhere is safe; pin it
                // to worker 0 and count the fallback.
                Route::Unrouted => {
                    inner.health.record_routing_fallback();
                    (0, OwnedMode::Single(p.clone()))
                }
            },
        }
    }

    /// Routes and enqueues one request on its owner's queue.
    fn dispatch(&self, inner: &Inner, req: Request) {
        let (worker, mode) = self.route(inner, req.proc, &req.params);
        self.depths[worker].fetch_add(1, Ordering::Relaxed);
        perturb_point(Site::OwnerHandoff);
        self.senders[worker]
            .send(WorkerMsg::Req(req, mode))
            .expect("workers alive");
    }
}

/// The dispatch half of the executor, by mode. The `Option`s are taken at
/// shutdown so workers observe closed queues (pool) or drain-and-exit
/// markers (shard-owned).
enum Executor {
    Pool(Option<Sender<Request>>),
    ShardOwned(Option<ShardExec>),
}

/// How long shutdown waits for a background thread before declaring the
/// engine hung. Generous: a loaded drain of a deep queue is legitimate;
/// a thread that makes no exit progress for this long is not.
const SHUTDOWN_JOIN_TIMEOUT: Duration = Duration::from_secs(120);

/// Joins `handle`, polling with a deadline instead of blocking forever,
/// so a wedged background thread turns into a diagnosable panic rather
/// than a silent test-suite hang. During an unwind (drop while
/// panicking) it degrades to a warning so the original panic surfaces.
fn join_bounded(handle: std::thread::JoinHandle<()>, what: &str) {
    let deadline = Instant::now() + SHUTDOWN_JOIN_TIMEOUT;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            let msg = format!(
                "Database shutdown hung: {what} thread made no exit progress for \
                 {SHUTDOWN_JOIN_TIMEOUT:?} after the submission queue closed — \
                 likely a transaction stuck on a lock queue or a checkpoint \
                 wedged draining a phase"
            );
            if std::thread::panicking() {
                eprintln!("{msg} (suppressed: already panicking)");
                return;
            }
            panic!("{msg}");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = handle.join();
}

struct Inner {
    strategy: Arc<dyn CheckpointStrategy>,
    log: Arc<CommitLog>,
    locks: LockManager,
    registry: ProcRegistry,
    /// Admission gate: every transaction holds read access for its whole
    /// lifetime (locks, logic, commit hook). `quiesced` takes write
    /// access — parking_lot's writer preference blocks new readers, so
    /// this waits out active transactions and then excludes new ones: a
    /// physical point of consistency.
    gate: RwLock<()>,
    dir: CheckpointDir,
    metrics: Arc<Metrics>,
    /// Commit-path load signal: every commit feeds its latency and the
    /// tps window here; the checkpoint capture path and a server
    /// front-end's admission gate read it back. Shared (not owned) so
    /// the server can hang its [`calc_common::Gate`] off the same signal.
    load: Arc<LoadSignal>,
    txn_counter: AtomicU64,
    checkpoint_serial: Mutex<()>,
    merge_serial: Arc<Mutex<()>>,
    /// In-flight background merger threads, joined before the database is
    /// dropped so no merge races a post-run inspection of the checkpoint
    /// directory.
    mergers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Durable command log behind a group-commit sync thread (None when
    /// command logging is off). Taken (dropped) at shutdown so the sync
    /// thread drains the queue and performs the final fsync.
    cmdlog: Mutex<Option<GroupCommitter>>,
    partials_since_merge: AtomicU64,
    merge_batch: Option<usize>,
    /// Checkpointer health, shared with the service daemon and observers.
    health: Arc<Health>,
    /// Set when a background merge failed; the next checkpoint cycle
    /// retries the merge even off the batch boundary.
    merge_retry_pending: AtomicBool,
    /// Segmented command-log directory, when segmentation is on; the
    /// retention step truncates covered segments here after each cycle.
    command_log_dir: Option<std::path::PathBuf>,
    /// Retention depth: prune published chains down to this many fulls
    /// after each successful cycle (`None` keeps everything).
    keep_checkpoints: Option<usize>,
    kind: StrategyKind,
    #[cfg(feature = "conform")]
    recorder: Option<Arc<crate::recorder::HistoryRecorder>>,
}

impl EngineEnv for Inner {
    fn quiesced(&self, f: &mut dyn FnMut() -> io::Result<()>) -> io::Result<Duration> {
        let start = Instant::now();
        let _w = self.gate.write();
        f()?;
        Ok(start.elapsed())
    }
}

impl Inner {
    /// One checkpoint cycle: run the strategy's capture, and on success
    /// trigger (or retry) the background merge. Health accounting lives
    /// in the callers ([`Database::checkpoint_now`] and the service
    /// daemon) so a cycle is recorded exactly once.
    fn checkpoint_cycle_raw(self: &Arc<Self>) -> io::Result<CheckpointStats> {
        let _serial = self.checkpoint_serial.lock();
        let stats = self.strategy.checkpoint(self.as_ref(), &self.dir)?;
        self.health.record_parts(stats.parts);
        self.health.record_footprint(stats.bytes, stats.raw_bytes);
        self.run_retention();
        if self.strategy.partial() {
            let n = self.partials_since_merge.fetch_add(1, Ordering::AcqRel) + 1;
            // A previously failed merge is retried at the next trigger —
            // the swap clears the flag; the merger re-sets it if it fails
            // again.
            let retry = self.merge_retry_pending.swap(false, Ordering::AcqRel);
            if let Some(batch) = self.merge_batch {
                if n.is_multiple_of(batch as u64) || retry {
                    // §2.3.1: "a low-priority thread to take advantage of
                    // moments of sub-peak load".
                    let inner = self.clone();
                    let handle = std::thread::Builder::new()
                        .name("calc-merger".into())
                        .spawn(move || {
                            let _g = inner.merge_serial.lock();
                            if let Err(e) = collapse(&inner.dir) {
                                // A failed collapse leaves the existing
                                // chain fully intact — recovery is just
                                // longer. Surface it and queue a retry
                                // instead of swallowing the error.
                                inner.health.record_merge_failure(&e);
                                inner.merge_retry_pending.store(true, Ordering::Release);
                            }
                        })
                        .expect("spawn merger");
                    self.mergers.lock().push(handle);
                }
            }
        }
        Ok(stats)
    }

    /// Post-cycle retention: prune superseded checkpoint chains down to
    /// `keep_checkpoints` fulls, then truncate command-log segments (and
    /// the in-memory log) below the *oldest surviving full's* watermark.
    ///
    /// That floor — not the just-published cycle's watermark — is what
    /// makes truncation safe against corruption discovered later: if the
    /// newest cycle turns out torn at recovery and is quarantined,
    /// recovery falls back to an older chain, and every chain still on
    /// disk roots at a full whose watermark is at or above the floor, so
    /// the replay window it needs is fully covered by surviving segments.
    ///
    /// Runs only after the cycle durably published; a retention failure
    /// is therefore recorded in [`Health`] but never fails the cycle —
    /// disk just stays larger until the next pass succeeds.
    fn run_retention(&self) {
        if self.keep_checkpoints.is_none() && self.command_log_dir.is_none() {
            return;
        }
        let result: io::Result<(u64, TruncateStats)> = (|| {
            let pruned = match self.keep_checkpoints {
                Some(k) => self.dir.prune_chains(k)? as u64,
                None => 0,
            };
            let mut truncated = TruncateStats::default();
            let floor = self
                .dir
                .scan()?
                .iter()
                .filter(|m| m.kind == CheckpointKind::Full)
                .map(|m| m.watermark)
                .min();
            if let Some(floor) = floor {
                if let Some(log_dir) = &self.command_log_dir {
                    truncated =
                        truncate_segments_below(self.dir.vfs().as_ref(), log_dir, floor)?;
                }
                // The in-memory log mirrors the durable floor: entries a
                // surviving checkpoint covers are never replayed again.
                self.log.truncate_through(floor);
            }
            Ok((pruned, truncated))
        })();
        match result {
            Ok((pruned, t)) => self.health.record_retention(pruned, t.removed, t.bytes),
            Err(_) => self.health.record_retention_failure(),
        }
    }
}

/// An embeddable, checkpointable, main-memory transactional key-value
/// store — the paper's evaluation system, with the checkpointing strategy
/// chosen by [`EngineConfig::strategy`].
pub struct Database {
    inner: Arc<Inner>,
    executor: Executor,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// The supervised checkpoint daemon, when
    /// [`EngineConfig::checkpoint_interval`] is set.
    service: Option<CheckpointService>,
}

impl Database {
    /// Opens a database: builds the strategy, spawns the worker pool.
    /// Populate with [`Database::load_initial`] then call
    /// [`Database::finalize_load`] before submitting transactions.
    ///
    /// Refuses a config with [`EngineConfig::standby_of`] set: a standby
    /// is not a serving engine. Open a `calc_replica::Standby` from that
    /// config instead, and `promote()` it into a `Database` on failover.
    pub fn open(config: EngineConfig, registry: ProcRegistry) -> io::Result<Self> {
        if config.standby_of.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "standby_of is set: open a calc_replica::Standby and promote() it \
                 instead of serving directly over another node's durable state",
            ));
        }
        let log = Arc::new(CommitLog::new(config.retain_command_log));
        let strategy = config.strategy.build(config.store.clone(), log.clone());
        Self::boot(config, registry, strategy, log)
    }

    /// Opens a serving database around an *already populated* strategy —
    /// the promotion path of a warm standby. The caller (normally
    /// `calc_replica::Promoted::into_database`) has already loaded the
    /// checkpoint chain, applied the log tail, and resumed the commit-seq
    /// and checkpoint-id spaces on `strategy` and `log`; this spawns the
    /// worker pool and, when [`EngineConfig::command_log_dir`] is set,
    /// seals the applied prefix by opening a fresh log segment above the
    /// highest survivor (rotation invariant: a restarted writer never
    /// appends into an existing segment).
    pub fn resume(
        config: EngineConfig,
        registry: ProcRegistry,
        strategy: Arc<dyn CheckpointStrategy>,
        log: Arc<CommitLog>,
    ) -> io::Result<Self> {
        Self::boot(config, registry, strategy, log)
    }

    fn boot(
        config: EngineConfig,
        registry: ProcRegistry,
        strategy: Arc<dyn CheckpointStrategy>,
        log: Arc<CommitLog>,
    ) -> io::Result<Self> {
        let throttle = if config.disk_bytes_per_sec == 0 {
            Throttle::unlimited()
        } else {
            Throttle::new(config.disk_bytes_per_sec)
        };
        let dir =
            CheckpointDir::open_with_vfs(&config.checkpoint_dir, Arc::new(throttle), config.vfs.clone())?;
        dir.set_checkpoint_threads(config.checkpoint_threads);
        dir.set_codec(config.codec);
        // The commit path feeds this signal; capture workers (pool sizing
        // + per-record pacing) and the server's admission gate read it.
        let load = Arc::new(LoadSignal::new());
        load.set_capacity_tps(config.load_capacity_tps);
        if config.adaptive_pacing {
            dir.set_load_signal(load.clone());
        }
        // Durable command logging: a dedicated sync thread group-commits
        // concurrent appends (append many, fsync once per deadline-bounded
        // batch) — the paper's §1 "logging of transactional input is
        // generally far lighter weight than full ARIES logging".
        let backend: Option<Box<dyn LogBackend>> = if let Some(log_dir) = &config.command_log_dir
        {
            Some(Box::new(SegmentedLogWriter::create(
                config.vfs.clone(),
                log_dir,
                config.log_segment_bytes.unwrap_or(64 << 20),
            )?))
        } else if let Some(path) = &config.command_log_path {
            Some(Box::new(CommandLogWriter::create_with_vfs(
                config.vfs.as_ref(),
                path,
            )?))
        } else {
            None
        };
        // Health is created before the committer so every fsynced batch
        // feeds the batch-size and flush-latency counters.
        let health = Arc::new(Health::new(
            config.checkpoint_tuning.degraded_after,
            config.checkpoint_tuning.watchdog,
        ));
        // The read-only observer fires from the sync thread before `Inner`
        // exists, so the emergency-retention trigger goes through a slot
        // filled in after construction.
        let retention_trigger: RetentionTrigger = Arc::new(Mutex::new(None));
        let cmdlog = backend.map(|b| {
            let observer_health = health.clone();
            let ro_health = health.clone();
            let ro_trigger = retention_trigger.clone();
            GroupCommitter::start_with(
                b,
                GroupCommitConfig {
                    window: config.group_commit_window,
                    max_batch: config.group_commit_max_batch.max(1),
                    ..GroupCommitConfig::default()
                },
                Some(Box::new(move |records, fsync| {
                    observer_health.record_commit_batch(records as u64, fsync);
                })),
                Some(Box::new(move |entering| {
                    ro_health.set_log_read_only(entering);
                    if entering {
                        if let Some(trigger) = ro_trigger.lock().as_ref() {
                            trigger();
                        }
                    }
                })),
            )
        });
        let inner = Arc::new(Inner {
            strategy,
            log,
            locks: LockManager::new(1024),
            registry,
            gate: RwLock::new(()),
            dir,
            metrics: Arc::new(Metrics::new()),
            load,
            txn_counter: AtomicU64::new(1),
            checkpoint_serial: Mutex::new(()),
            merge_serial: Arc::new(Mutex::new(())),
            mergers: Mutex::new(Vec::new()),
            cmdlog: Mutex::new(cmdlog),
            partials_since_merge: AtomicU64::new(0),
            merge_batch: config.merge_batch,
            health,
            merge_retry_pending: AtomicBool::new(false),
            command_log_dir: config.command_log_dir.clone(),
            keep_checkpoints: config.keep_checkpoints,
            kind: config.strategy,
            #[cfg(feature = "conform")]
            recorder: config.recorder.clone(),
        });

        // Arm the emergency-retention trigger: ENOSPC on the command log
        // kicks a detached retention pass (prune superseded chains,
        // truncate covered segments) to free space inside the committer's
        // heal window. Holds only a Weak ref so shutdown is never pinned.
        {
            let weak = Arc::downgrade(&inner);
            *retention_trigger.lock() = Some(Box::new(move || {
                if let Some(inner) = weak.upgrade() {
                    let _ = std::thread::Builder::new()
                        .name("calc-emergency-retention".into())
                        .spawn(move || {
                            // Serialize against checkpoint-cycle retention.
                            let _serial = inner.checkpoint_serial.lock();
                            inner.health.record_emergency_retention();
                            inner.run_retention();
                        });
                }
            }));
        }

        let service = config.checkpoint_interval.map(|interval| {
            let cycle_inner = inner.clone();
            CheckpointService::start(
                interval,
                config.checkpoint_tuning.clone(),
                inner.health.clone(),
                move || cycle_inner.checkpoint_cycle_raw().map(|_| ()),
            )
        });

        let worker_count = config.workers.max(1);
        let (executor, workers) = match config.executor_mode {
            ExecutorMode::Pool => {
                let (tx, rx) = match config.queue_capacity {
                    Some(n) => bounded::<Request>(n),
                    None => unbounded::<Request>(),
                };
                let workers = (0..worker_count)
                    .map(|i| {
                        let inner = inner.clone();
                        let rx: Receiver<Request> = rx.clone();
                        std::thread::Builder::new()
                            .name(format!("calc-worker-{i}"))
                            .spawn(move || worker_loop(&inner, &rx))
                            .expect("spawn worker")
                    })
                    .collect();
                (Executor::Pool(Some(tx)), workers)
            }
            ExecutorMode::ShardOwned => {
                let router = ShardRouter::new(worker_count, config.shards_per_worker);
                let depths: Arc<[AtomicU64]> = (0..worker_count)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into();
                inner.health.install_worker_queues(depths.clone());
                let mut senders = Vec::with_capacity(worker_count);
                let mut receivers = Vec::with_capacity(worker_count);
                for _ in 0..worker_count {
                    let (tx, rx) = match config.queue_capacity {
                        Some(n) => bounded::<WorkerMsg>(n),
                        None => unbounded::<WorkerMsg>(),
                    };
                    senders.push(tx);
                    receivers.push(rx);
                }
                let workers = receivers
                    .into_iter()
                    .enumerate()
                    .map(|(i, rx)| {
                        let inner = inner.clone();
                        let senders = senders.clone();
                        let depths = depths.clone();
                        std::thread::Builder::new()
                            .name(format!("calc-owner-{i}"))
                            .spawn(move || {
                                owned_worker_loop(&inner, &rx, &senders, &depths[i])
                            })
                            .expect("spawn worker")
                    })
                    .collect();
                (
                    Executor::ShardOwned(Some(ShardExec {
                        senders,
                        router,
                        depths,
                    })),
                    workers,
                )
            }
        };

        Ok(Database {
            inner,
            executor,
            workers,
            service,
        })
    }

    /// Bulk-loads a record (before any transactions run).
    pub fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError> {
        #[cfg(feature = "conform")]
        if let Some(rec) = self.inner.recorder.as_ref() {
            rec.record_initial(key, value);
        }
        self.inner.strategy.load_initial(key, value)
    }

    /// Finishes initial load: writes the base full checkpoint when the
    /// configuration asks for one.
    pub fn finalize_load(&self, base_checkpoint: bool) -> io::Result<Option<CheckpointStats>> {
        if base_checkpoint {
            Ok(Some(self.inner.strategy.write_base_checkpoint(&self.inner.dir)?))
        } else {
            Ok(None)
        }
    }

    /// Routes one request to the executor: the shared queue (pool) or the
    /// owner's queue chosen by footprint classification (shard-owned).
    fn dispatch(&self, req: Request) {
        match &self.executor {
            Executor::Pool(tx) => tx
                .as_ref()
                .expect("database not shut down")
                .send(req)
                .expect("workers alive"),
            Executor::ShardOwned(ex) => ex
                .as_ref()
                .expect("database not shut down")
                .dispatch(&self.inner, req),
        }
    }

    /// Submits a transaction fire-and-forget. Blocks when the bounded
    /// queue is full (closed-loop backpressure).
    pub fn submit(&self, proc: ProcId, params: Arc<[u8]>) {
        self.dispatch(Request {
            proc,
            params,
            submitted: Instant::now(),
            durable: false,
            reply: None,
        });
    }

    /// Executes a transaction synchronously, returning its outcome. The
    /// acknowledgement is ack-before-fsync (the paper's low-latency
    /// choice): the commit is in memory and enqueued on the durable log,
    /// but its batch fsync may still be in flight — a crash can lose it,
    /// bounded by [`EngineConfig::group_commit_window`]. Use
    /// [`Database::execute_durable`] for ack-after-fsync.
    pub fn execute(&self, proc: ProcId, params: Arc<[u8]>) -> TxnOutcome {
        let (tx, rx) = bounded(1);
        self.dispatch(Request {
            proc,
            params,
            submitted: Instant::now(),
            durable: false,
            reply: Some(tx),
        });
        rx.recv().expect("worker replies").0
    }

    /// Executes a transaction and, if it commits, waits until its
    /// group-commit batch has been fsynced before returning — an
    /// acknowledged commit survives any later crash (ack-after-fsync,
    /// the promise a network server must make).
    ///
    /// The fsync wait happens on *this* thread via a [`DurabilityTicket`],
    /// never on a worker: under group commit many callers park here
    /// concurrently while one batch fsync retires all of them. Without a
    /// configured command log the outcome is returned immediately.
    ///
    /// `Err` means the transaction committed in memory but its durability
    /// could not be confirmed (sync thread dead or wedged) — degraded
    /// durability, not a rollback.
    pub fn execute_durable(
        &self,
        proc: ProcId,
        params: Arc<[u8]>,
    ) -> Result<TxnOutcome, SyncError> {
        let (tx, rx) = bounded(1);
        self.dispatch(Request {
            proc,
            params,
            submitted: Instant::now(),
            durable: true,
            reply: Some(tx),
        });
        let (outcome, ticket) = rx.recv().expect("worker replies");
        match (&outcome, ticket) {
            (TxnOutcome::Committed(_), Some(ticket)) => {
                ticket.wait(SHUTDOWN_JOIN_TIMEOUT)?;
                Ok(outcome)
            }
            // Aborts carry no durability obligation; no command log means
            // nothing to wait for.
            _ => Ok(outcome),
        }
    }

    /// Direct (non-transactional) point read.
    pub fn get(&self, key: Key) -> Option<Value> {
        self.inner.strategy.get(key)
    }

    /// Live record count.
    pub fn record_count(&self) -> usize {
        self.inner.strategy.record_count()
    }

    /// Runs one checkpoint cycle now (blocking until capture completes).
    /// With `merge_batch` configured, every Nth partial checkpoint also
    /// kicks off a background collapse. The outcome is recorded in
    /// [`Database::health`] exactly like a daemon-driven cycle, so manual
    /// successes also heal degraded mode.
    pub fn checkpoint_now(&self) -> io::Result<CheckpointStats> {
        self.inner.health.cycle_started();
        match self.inner.checkpoint_cycle_raw() {
            Ok(stats) => {
                self.inner.health.cycle_succeeded();
                Ok(stats)
            }
            Err(e) => {
                self.inner.health.cycle_failed(classify(&e), &e);
                Err(e)
            }
        }
    }

    /// Synchronously collapses partial checkpoints (blocks until done).
    pub fn collapse_partials(&self) -> io::Result<Option<MergeStats>> {
        let _g = self.inner.merge_serial.lock();
        collapse(&self.inner.dir)
    }

    /// Engine metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// Checkpointer health: degraded mode, failure streaks, last error,
    /// time since the last published checkpoint, merge failures, and the
    /// stalled-cycle watchdog.
    pub fn health(&self) -> &Arc<Health> {
        &self.inner.health
    }

    /// The engine's commit-path load signal. Every commit feeds it; the
    /// checkpoint capture path paces against it, and a server front-end
    /// hangs its admission gate off it so shed/inflight counters and
    /// [`calc_common::LoadLevel`] grading share one source of truth.
    pub fn load(&self) -> &Arc<LoadSignal> {
        &self.inner.load
    }

    /// Whether the command log is in read-only degraded mode: it hit
    /// ENOSPC and the group committer is retrying inside its heal window
    /// while an emergency retention pass tries to free space. Callers
    /// should reject writes (reads stay fine) until this clears.
    pub fn log_read_only(&self) -> bool {
        self.inner
            .cmdlog
            .lock()
            .as_ref()
            .map(|gc| gc.read_only())
            .unwrap_or(false)
    }

    /// The active checkpointing strategy.
    pub fn strategy(&self) -> &Arc<dyn CheckpointStrategy> {
        &self.inner.strategy
    }

    /// The commit/command log.
    pub fn commit_log(&self) -> &Arc<CommitLog> {
        &self.inner.log
    }

    /// The checkpoint directory.
    pub fn checkpoint_dir(&self) -> &CheckpointDir {
        &self.inner.dir
    }

    /// The configured strategy kind.
    pub fn strategy_kind(&self) -> StrategyKind {
        self.inner.kind
    }

    /// The active executor mode.
    pub fn executor_mode(&self) -> ExecutorMode {
        match &self.executor {
            Executor::Pool(_) => ExecutorMode::Pool,
            Executor::ShardOwned(_) => ExecutorMode::ShardOwned,
        }
    }

    /// The shard-owned executor's router (`None` under the legacy pool).
    pub fn shard_router(&self) -> Option<ShardRouter> {
        match &self.executor {
            Executor::Pool(_) => None,
            Executor::ShardOwned(ex) => ex.as_ref().map(|e| e.router),
        }
    }

    /// Recovers this (freshly opened, unused) database from its checkpoint
    /// directory plus a command log: loads the newest recovery chain,
    /// deterministically replays `commands` past the watermark, then
    /// resumes the commit-sequence and checkpoint-id spaces so nothing
    /// post-recovery collides with pre-crash artifacts. The procedures in
    /// the registry must match the pre-crash ones (determinism contract).
    pub fn recover(
        &self,
        commands: &[CommitRecord],
    ) -> Result<calc_recovery::RecoveryOutcome, calc_recovery::RecoveryError> {
        // Resume the id/seq spaces BEFORE replaying: replay stamps each
        // commit with the strategy's current phase stamp, and partial
        // strategies dirty-mark that stamp's checkpoint interval. The next
        // partial checkpoint (id max_id+1) advances its watermark past the
        // replayed commits, so their marks must land in ITS interval — if
        // the log still read cycle 0 here, the replayed writes would be
        // invisible to it and lost on the next crash.
        let metas = self
            .inner
            .dir
            .scan()
            .map_err(calc_recovery::RecoveryError::Io)?;
        let max_id = metas.iter().map(|m| m.id).max().unwrap_or(0);
        let chain_watermark = metas
            .iter()
            .map(|m| m.watermark)
            .max()
            .unwrap_or(CommitSeq::ZERO);
        let max_seq = commands
            .iter()
            .map(|c| c.seq)
            .max()
            .unwrap_or(chain_watermark)
            .max(chain_watermark);
        self.inner.log.advance_to(max_seq, max_id + 1);
        self.inner.strategy.resume_checkpoint_ids(max_id + 1);
        let outcome = calc_recovery::recover(
            &self.inner.dir,
            self.inner.strategy.as_ref(),
            &self.inner.registry,
            commands,
        )?;
        Ok(outcome)
    }

    /// Waits for any in-flight background merges to finish. Call before
    /// inspecting the checkpoint directory externally.
    pub fn join_mergers(&self) {
        for h in self.inner.mergers.lock().drain(..) {
            let _ = h.join();
        }
    }

    /// Waits for the submission queue to drain and workers to go idle,
    /// then stops them. Consumes the database.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        // Stop the checkpoint daemon first so no new cycle starts while
        // the worker pool drains.
        if let Some(svc) = self.service.take() {
            svc.stop();
        }
        match &mut self.executor {
            Executor::Pool(tx) => {
                drop(tx.take());
                for w in self.workers.drain(..) {
                    join_bounded(w, "worker");
                }
            }
            Executor::ShardOwned(ex) => {
                if let Some(ex) = ex.take() {
                    // Shut down in ascending index order, joining each
                    // worker before signalling the next: fences only
                    // target higher indices, so by the time worker i sees
                    // its Shutdown marker every coordinator that could
                    // still fence it (index < i) has already exited, and
                    // every co-owner worker i itself may still need to
                    // fence (index > i) is still alive.
                    for (i, w) in self.workers.drain(..).enumerate() {
                        let _ = ex.senders[i].send(WorkerMsg::Shutdown);
                        join_bounded(w, "worker");
                    }
                }
            }
        }
        for h in self.inner.mergers.lock().drain(..) {
            join_bounded(h, "merger");
        }
        // Drop the group committer last: its Drop closes the channel, the
        // sync thread drains the remaining queue and performs the final
        // batch fsync, so the on-disk log is complete when drop returns.
        drop(self.inner.cmdlog.lock().take());
    }

    /// Forces an fsync of the durable command log: sends a flush request
    /// to the logger thread and waits for its acknowledgement, so every
    /// record enqueued before this call is durable on return. No-op
    /// without command logging.
    ///
    /// A logger that exited on an earlier append I/O error, died
    /// mid-flush, or is wedged past the timeout is reported as a typed
    /// [`SyncError`] — durability is degraded, but the in-memory engine
    /// is intact, so the caller (not this method) decides whether that
    /// is fatal.
    pub fn sync_command_log(&self) -> Result<(), SyncError> {
        // Enqueue the flush under the lock (ordered against in-flight
        // commit enqueues), wait on the ticket outside it.
        let ticket = {
            let guard = self.inner.cmdlog.lock();
            match guard.as_ref() {
                Some(gc) => gc.flush(),
                None => return Ok(()),
            }
        };
        ticket.wait(SHUTDOWN_JOIN_TIMEOUT)
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Database({}, records={}, committed={})",
            self.inner.strategy.name(),
            self.record_count(),
            self.inner.metrics.committed()
        )
    }
}

fn worker_loop(inner: &Inner, rx: &Receiver<Request>) {
    while let Ok(req) = rx.recv() {
        // Admission: held for the entire transaction, including the commit
        // hook, so a quiesce observes no in-flight commit work.
        let _admission = inner.gate.read();
        let (outcome, ticket) = execute_one(inner, &req);
        if let Some(reply) = &req.reply {
            let _ = reply.send((outcome, ticket));
        }
    }
}

/// A shard-owned worker: pops routed requests off its own queue and runs
/// them serially over the shards it owns. Single-owner requests execute
/// lock-free; cross-shard requests fence the involved co-owners; `Fence`
/// messages park this worker for a lower-indexed coordinator's commit.
fn owned_worker_loop(
    inner: &Inner,
    rx: &Receiver<WorkerMsg>,
    senders: &[Sender<WorkerMsg>],
    depth: &AtomicU64,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Req(req, mode) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                let (outcome, ticket) = match mode {
                    // Match the pool executor's accounting: routing-time
                    // failures produce the abort outcome without touching
                    // the strategy or metrics.
                    OwnedMode::Abort(e) => (TxnOutcome::Aborted(e), None),
                    OwnedMode::Single(proc) => {
                        // Admission: held for the whole transaction, as in
                        // the pool loop, so a quiesce observes no
                        // in-flight commit work.
                        let _admission = inner.gate.read();
                        perturb_point(Site::OwnerHandoff);
                        run_transaction(inner, &req, proc.as_ref(), None)
                    }
                    OwnedMode::Cross(proc, co_owners) => {
                        let fence = Arc::new(FenceState::new(co_owners.len()));
                        for &w in &co_owners {
                            senders[w]
                                .send(WorkerMsg::Fence(fence.clone()))
                                .expect("co-owner alive");
                        }
                        fence.wait_parked();
                        // Take the admission gate only now: every involved
                        // owner is parked holding no gate access, so a
                        // pending quiesce writer serializes cleanly before
                        // or after this commit instead of deadlocking
                        // between coordinator and co-owners.
                        let result = {
                            let _admission = inner.gate.read();
                            run_transaction(inner, &req, proc.as_ref(), None)
                        };
                        fence.release();
                        result
                    }
                };
                if let Some(reply) = &req.reply {
                    let _ = reply.send((outcome, ticket));
                }
            }
            WorkerMsg::Fence(fence) => fence.park(),
            WorkerMsg::Shutdown => break,
        }
    }
}

/// Runs one transaction under ordered 2PL (the pool executor's isolation
/// model): acquire the pre-declared lock set, run, release after commit
/// processing. (The shard-owned executor needs no counterpart: its router
/// resolves the procedure and proves exclusivity up front, so workers
/// call [`run_transaction`] directly with no lock guard.)
fn execute_one(inner: &Inner, req: &Request) -> (TxnOutcome, Option<DurabilityTicket>) {
    let Some(proc) = inner.registry.get(req.proc) else {
        return (
            TxnOutcome::Aborted(AbortReason::BadParams(format!(
                "unknown procedure {:?}",
                req.proc
            ))),
            None,
        );
    };
    let lock_request = match proc.locks(&req.params) {
        Ok(r) => r,
        Err(e) => return (TxnOutcome::Aborted(e), None),
    };
    let lockset = lock_request.to_lock_set();
    let guard = inner.locks.acquire(&lockset);
    run_transaction(inner, req, proc.as_ref(), Some(guard))
}

/// The shared transaction body: strategy hooks, commit-token append, and
/// metrics — identical for both executors, so the commit-token stream
/// (and everything downstream of it: deterministic replay, conformance,
/// group commit, standby tailing) is byte-compatible across modes. For a
/// durable request that commits, the second element is the commit's
/// [`DurabilityTicket`] — the worker never waits on it (a worker parked
/// on an fsync would stall the whole pool behind one batch); the
/// submitting thread does.
fn run_transaction(
    inner: &Inner,
    req: &Request,
    proc: &dyn calc_txn::proc::Procedure,
    guard: Option<calc_txn::locks::LockSetGuard<'_>>,
) -> (TxnOutcome, Option<DurabilityTicket>) {
    let mut token = inner.strategy.txn_begin();
    #[cfg(feature = "conform")]
    let start_stamp = token.stamp;
    let mut ops = ExecOps {
        strategy: inner.strategy.as_ref(),
        token: &mut token,
        undo: Vec::new(),
        failed: None,
        #[cfg(feature = "conform")]
        trace: inner.recorder.as_ref().map(|_| Vec::new()),
    };
    let result = proc.run(&req.params, &mut ops);
    #[cfg(feature = "conform")]
    let trace = ops.trace.take();
    let ExecOps {
        mut undo, failed, ..
    } = ops;

    let (outcome, ticket) = match (result, failed) {
        (Ok(()), None) => {
            let txn_id = TxnId(inner.txn_counter.fetch_add(1, Ordering::Relaxed));
            // Sequence assignment and the durable-log enqueue must be one
            // atomic step: otherwise two workers can hand the sync thread
            // records out of seq order, and deterministic replay (which
            // consumes the log front to back) would reorder commits. The
            // enqueue never blocks on the disk, so holding the lock across
            // it costs a channel send, not an fsync.
            let (seq, stamp, ticket) = {
                let cmdlog = inner.cmdlog.lock();
                let (seq, stamp) = inner
                    .log
                    .append_commit(txn_id, req.proc, req.params.clone());
                let ticket = cmdlog.as_ref().map(|gc| {
                    let rec = CommitRecord {
                        seq,
                        txn: txn_id,
                        proc: req.proc,
                        params: req.params.clone(),
                    };
                    if req.durable {
                        Some(gc.submit_durable(rec))
                    } else {
                        gc.submit(rec);
                        None
                    }
                });
                (seq, stamp, ticket.flatten())
            };
            inner.strategy.on_commit(&mut token, seq, stamp);
            #[cfg(feature = "conform")]
            if let Some(rec) = inner.recorder.as_ref() {
                rec.record(crate::recorder::RecordedTxn {
                    seq,
                    txn: txn_id,
                    proc: req.proc,
                    start: start_stamp,
                    commit: stamp,
                    ops: trace.unwrap_or_default(),
                });
            }
            (TxnOutcome::Committed(seq), ticket)
        }
        (Err(e), _) | (Ok(()), Some(e)) => {
            undo.reverse();
            inner.strategy.on_abort(&mut token, &undo);
            (TxnOutcome::Aborted(e), None)
        }
    };
    // Record metrics before releasing locks: a later transaction on the
    // same keys must observe this one's commit as counted (tests and the
    // benchmark harness use a synchronous same-key marker as a drain
    // barrier, which is only sound with this ordering).
    match &outcome {
        TxnOutcome::Committed(_) => {
            let latency = req.submitted.elapsed();
            inner.metrics.record_commit(latency);
            inner.load.observe_commit(latency);
        }
        TxnOutcome::Aborted(_) => inner.metrics.record_abort(),
    }
    drop(guard);
    inner.strategy.txn_end(token);
    (outcome, ticket)
}

/// Bridges procedure logic to the strategy's apply hooks, recording undo
/// images for rollback.
struct ExecOps<'a> {
    strategy: &'a dyn CheckpointStrategy,
    token: &'a mut TxnToken,
    undo: Vec<UndoRec>,
    failed: Option<AbortReason>,
    /// Operation trace for the conformance recorder; `Some` only when a
    /// recorder is attached to the engine.
    #[cfg(feature = "conform")]
    trace: Option<Vec<crate::recorder::RecordedOp>>,
}

impl TxnOps for ExecOps<'_> {
    fn get(&mut self, key: Key) -> Option<Value> {
        let observed = self.strategy.get(key);
        #[cfg(feature = "conform")]
        if let Some(trace) = self.trace.as_mut() {
            trace.push(crate::recorder::RecordedOp::Get {
                key,
                observed: observed.clone(),
            });
        }
        observed
    }

    fn put(&mut self, key: Key, value: &[u8]) {
        #[cfg(feature = "conform")]
        if let Some(trace) = self.trace.as_mut() {
            trace.push(crate::recorder::RecordedOp::Put {
                key,
                value: value.into(),
            });
        }
        match self.strategy.apply_write(self.token, key, value) {
            Ok(Some(old)) => self.undo.push(UndoRec {
                key,
                img: UndoImage::Restore(old),
            }),
            Ok(None) => self.undo.push(UndoRec {
                key,
                img: UndoImage::Remove,
            }),
            Err(e) => {
                self.failed
                    .get_or_insert_with(|| AbortReason::Logic(format!("put failed: {e}")));
            }
        }
    }

    fn insert(&mut self, key: Key, value: &[u8]) -> bool {
        let inserted = match self.strategy.apply_insert(self.token, key, value) {
            Ok(true) => {
                self.undo.push(UndoRec {
                    key,
                    img: UndoImage::Remove,
                });
                true
            }
            Ok(false) => false,
            Err(e) => {
                self.failed
                    .get_or_insert_with(|| AbortReason::Logic(format!("insert failed: {e}")));
                false
            }
        };
        #[cfg(feature = "conform")]
        if let Some(trace) = self.trace.as_mut() {
            trace.push(crate::recorder::RecordedOp::Insert {
                key,
                value: value.into(),
                inserted,
            });
        }
        inserted
    }

    fn delete(&mut self, key: Key) -> bool {
        let deleted = match self.strategy.apply_delete(self.token, key) {
            Ok(Some(old)) => {
                self.undo.push(UndoRec {
                    key,
                    img: UndoImage::Reinsert(old),
                });
                true
            }
            Ok(None) | Err(StoreError::KeyNotFound(_)) => false,
            Err(e) => {
                self.failed
                    .get_or_insert_with(|| AbortReason::Logic(format!("delete failed: {e}")));
                false
            }
        };
        #[cfg(feature = "conform")]
        if let Some(trace) = self.trace.as_mut() {
            trace.push(crate::recorder::RecordedOp::Delete { key, deleted });
        }
        deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_txn::proc::{params, LockRequest, Procedure};

    /// Adds `delta` to a u64 counter record; aborts if the result would
    /// exceed `limit`.
    struct AddProc;
    impl Procedure for AddProc {
        fn id(&self) -> ProcId {
            ProcId(1)
        }
        fn name(&self) -> &'static str {
            "add"
        }
        fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
            let mut r = params::Reader::new(p);
            Ok(LockRequest {
                reads: vec![],
                writes: vec![Key(r.u64()?)],
            })
        }
        fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            let mut r = params::Reader::new(p);
            let key = Key(r.u64()?);
            let delta = r.u64()?;
            let limit = r.u64()?;
            let current = ops
                .get(key)
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .unwrap_or(0);
            let next = current + delta;
            // First write, THEN abort-check: exercises rollback.
            if ops.get(key).is_some() {
                ops.put(key, &next.to_le_bytes());
            } else {
                ops.insert(key, &next.to_le_bytes());
            }
            if next > limit {
                return Err(AbortReason::Logic(format!("{next} > {limit}")));
            }
            Ok(())
        }
    }

    /// Moves `delta` from one counter to another — a two-key footprint
    /// that spans owners whenever the keys hash to different workers, so
    /// it exercises the cross-shard fence path under `shard_owned`.
    struct TransferProc;
    impl Procedure for TransferProc {
        fn id(&self) -> ProcId {
            ProcId(2)
        }
        fn name(&self) -> &'static str {
            "transfer"
        }
        fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
            let mut r = params::Reader::new(p);
            Ok(LockRequest {
                reads: vec![],
                writes: vec![Key(r.u64()?), Key(r.u64()?)],
            })
        }
        fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            let mut r = params::Reader::new(p);
            let from = Key(r.u64()?);
            let to = Key(r.u64()?);
            let delta = r.u64()?;
            let read = |ops: &mut dyn TxnOps, k: Key| {
                ops.get(k)
                    .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                    .unwrap_or(0)
            };
            let src = read(ops, from);
            if src < delta {
                return Err(AbortReason::Logic(format!("insufficient: {src} < {delta}")));
            }
            let dst = read(ops, to);
            ops.put(from, &(src - delta).to_le_bytes());
            ops.put(to, &(dst + delta).to_le_bytes());
            Ok(())
        }
    }

    fn db_with_mode(kind: StrategyKind, name: &str, mode: ExecutorMode) -> Database {
        let dir = std::env::temp_dir().join(format!(
            "calc-engine-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(AddProc));
        registry.register(Arc::new(TransferProc));
        let mut config = EngineConfig::new(kind, 1024, 16, dir);
        config.workers = 4;
        config.retain_command_log = true;
        config.executor_mode = mode;
        Database::open(config, registry).unwrap()
    }

    /// Default-mode database: inherits `EXEC_MODE` via `EngineConfig::new`,
    /// so the whole module reruns under either executor from the
    /// environment (scripts/verify.sh does exactly that).
    fn db(kind: StrategyKind, name: &str) -> Database {
        db_with_mode(kind, name, ExecutorMode::from_env())
    }

    fn add_params(key: u64, delta: u64, limit: u64) -> Arc<[u8]> {
        params::Writer::new().u64(key).u64(delta).u64(limit).finish()
    }

    #[test]
    fn execute_commits_and_reads_back() {
        let db = db(StrategyKind::Calc, "exec");
        let out = db.execute(ProcId(1), add_params(7, 5, 100));
        assert!(matches!(out, TxnOutcome::Committed(_)));
        assert_eq!(db.get(Key(7)).unwrap(), 5u64.to_le_bytes().into());
        let out = db.execute(ProcId(1), add_params(7, 10, 100));
        assert!(matches!(out, TxnOutcome::Committed(_)));
        assert_eq!(db.get(Key(7)).unwrap(), 15u64.to_le_bytes().into());
        assert_eq!(db.metrics().committed(), 2);
    }

    #[test]
    fn aborted_transaction_rolls_back() {
        let db = db(StrategyKind::Calc, "abort");
        db.execute(ProcId(1), add_params(1, 50, 100));
        // 50 + 60 = 110 > 100 → abort; value must stay 50.
        let out = db.execute(ProcId(1), add_params(1, 60, 100));
        assert!(matches!(out, TxnOutcome::Aborted(AbortReason::Logic(_))));
        assert_eq!(db.get(Key(1)).unwrap(), 50u64.to_le_bytes().into());
        assert_eq!(db.metrics().aborted(), 1);
        // Aborted insert leaves no record.
        let out = db.execute(ProcId(1), add_params(2, 999, 100));
        assert!(matches!(out, TxnOutcome::Aborted(_)));
        assert!(db.get(Key(2)).is_none());
    }

    #[test]
    fn unknown_procedure_aborts() {
        let db = db(StrategyKind::Calc, "unknown");
        let out = db.execute(ProcId(99), add_params(1, 1, 10));
        assert!(matches!(out, TxnOutcome::Aborted(AbortReason::BadParams(_))));
    }

    #[test]
    fn concurrent_submissions_all_commit() {
        let db = db(StrategyKind::Calc, "concurrent");
        for i in 0..1000u64 {
            db.submit(ProcId(1), add_params(i % 10, 1, u64::MAX));
        }
        for k in 0..10u64 {
            db.execute(ProcId(1), add_params(k, 0, u64::MAX));
        }
        // Drain barrier: shutdown joins the worker pool, so every
        // submitted transaction has completed and been counted. (A
        // synchronous same-key marker is NOT enough — a worker can pop an
        // earlier request and stall before acquiring its lock while the
        // marker overtakes it.)
        let metrics = db.metrics().clone();
        let strategy = db.strategy().clone();
        db.shutdown();
        assert_eq!(metrics.committed(), 1010);
        let total: u64 = (0..10u64)
            .map(|k| {
                u64::from_le_bytes(strategy.get(Key(k)).unwrap()[..8].try_into().unwrap())
            })
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn checkpoint_under_load_every_strategy() {
        for kind in StrategyKind::ALL_CHECKPOINTING {
            let db = Arc::new(db(kind, &format!("underload-{}", kind.name())));
            for k in 0..100u64 {
                db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
            }
            db.finalize_load(kind.is_partial()).unwrap();
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let feeder = {
                let db = db.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        db.submit(ProcId(1), add_params(i % 100, 1, u64::MAX));
                        i += 1;
                    }
                })
            };
            std::thread::sleep(Duration::from_millis(20));
            let stats = db.checkpoint_now().unwrap_or_else(|e| {
                panic!("checkpoint failed for {}: {e}", kind.name())
            });
            assert!(stats.records > 0 || kind.is_partial());
            stop.store(true, Ordering::Relaxed);
            feeder.join().unwrap();
            // Checkpoint file exists and validates.
            let metas = db.checkpoint_dir().scan().unwrap();
            assert!(!metas.is_empty(), "{}: no checkpoint published", kind.name());
        }
    }

    #[test]
    fn shutdown_under_load_drains_and_completes() {
        // Shutdown with a deep backlog must drain every submitted
        // transaction and return promptly — regression test for the
        // bounded join: a wedged worker now panics with a diagnosis
        // instead of hanging the suite forever.
        let db = db(StrategyKind::Calc, "shutdown-load");
        for i in 0..5000u64 {
            db.submit(ProcId(1), add_params(i % 64, 1, u64::MAX));
        }
        let metrics = db.metrics().clone();
        let start = Instant::now();
        db.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "shutdown took {:?} under load",
            start.elapsed()
        );
        assert_eq!(metrics.committed(), 5000, "shutdown dropped queued txns");
    }

    #[test]
    fn merge_batch_triggers_background_collapse() {
        let dir = std::env::temp_dir().join(format!(
            "calc-engine-{}-mergebatch",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(AddProc));
        let mut config = EngineConfig::new(StrategyKind::PCalc, 1024, 16, dir);
        config.workers = 2;
        config.merge_batch = Some(2);
        let db = Database::open(config, registry).unwrap();
        for k in 0..50u64 {
            db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
        }
        db.finalize_load(true).unwrap();
        for round in 0..4 {
            db.execute(ProcId(1), add_params(round, 1, u64::MAX));
            db.checkpoint_now().unwrap();
        }
        // Give the background merger a moment, then verify the chain got
        // shorter than 4 partials.
        std::thread::sleep(Duration::from_millis(300));
        let (full, partials) = db.checkpoint_dir().recovery_chain().unwrap().unwrap();
        assert!(
            full.id > 0,
            "expected a merged full checkpoint, got base full only"
        );
        assert!(partials.len() < 4, "partials not collapsed: {partials:?}");
    }

    #[test]
    fn service_enters_and_exits_degraded_mode_under_io_failure() {
        use calc_common::simfs::{SimVfs, TransientKind, TransientSpec};
        let vfs = SimVfs::new(0x0DE6_0DE6);
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(AddProc));
        let mut config = EngineConfig::new(
            StrategyKind::PCalc,
            1024,
            16,
            std::path::PathBuf::from("/sim/ckpts"),
        );
        config.vfs = Arc::new(vfs.clone());
        config.workers = 2;
        config.checkpoint_interval = Some(Duration::from_millis(2));
        config.checkpoint_tuning.backoff_base = Duration::from_millis(1);
        config.checkpoint_tuning.backoff_cap = Duration::from_millis(5);
        config.checkpoint_tuning.degraded_after = 2;
        let db = Database::open(config, registry).unwrap();
        for k in 0..16u64 {
            db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
        }
        db.finalize_load(true).unwrap();

        // Break the disk: every checkpoint write fails until healed.
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::WriteError,
            from: vfs.counts().data_ops(),
            count: u64::MAX,
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        while !db.health().degraded() {
            assert!(Instant::now() < deadline, "daemon never entered degraded mode");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Degraded, not dead: transactions keep committing.
        let out = db.execute(ProcId(1), add_params(3, 7, u64::MAX));
        assert!(matches!(out, TxnOutcome::Committed(_)));
        assert!(db.health().last_error().is_some());
        assert!(db.strategy().aborted_cycles() > 0, "failed cycles not rolled back");

        // Heal the disk; the daemon self-heals on its next success.
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::WriteError,
            from: 0,
            count: 0,
        });
        while db.health().degraded() || db.health().degraded_exits() == 0 {
            assert!(Instant::now() < deadline, "daemon never self-healed");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(db.health().consecutive_failures(), 0);
        assert!(db.health().time_since_last_success().is_some());
        db.shutdown();
    }

    #[test]
    fn failed_background_merge_is_reported_and_retried() {
        use calc_common::simfs::{SimVfs, TransientKind, TransientSpec};
        let vfs = SimVfs::new(0x4E26_0001);
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(AddProc));
        let mut config = EngineConfig::new(
            StrategyKind::PCalc,
            1024,
            16,
            std::path::PathBuf::from("/sim/ckpts"),
        );
        config.vfs = Arc::new(vfs.clone());
        config.workers = 2;
        config.merge_batch = Some(2);
        let db = Database::open(config, registry).unwrap();
        for k in 0..32u64 {
            db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
        }
        db.finalize_load(true).unwrap();

        // Park the merger behind its serial lock so the ENOSPC window can
        // be armed after the triggering checkpoints' own writes, making
        // the failure deterministic.
        let parked = db.inner.merge_serial.lock();
        for round in 0..2u64 {
            db.execute(ProcId(1), add_params(round, 1, u64::MAX));
            db.checkpoint_now().unwrap();
        }
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::Enospc,
            from: vfs.counts().data_ops(),
            count: u64::MAX,
        });
        drop(parked);
        db.join_mergers();
        assert_eq!(db.health().merge_failures(), 1, "collapse error swallowed");
        let msg = db.health().last_merge_error().expect("merge error recorded");
        assert!(!msg.is_empty());

        // Disk recovers; the next successful checkpoint retries the merge
        // even though it is off the batch boundary.
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::Enospc,
            from: 0,
            count: 0,
        });
        db.execute(ProcId(1), add_params(9, 1, u64::MAX));
        db.checkpoint_now().unwrap();
        db.join_mergers();
        assert_eq!(db.health().merge_failures(), 1, "retry failed again");
        let (full, _) = db.checkpoint_dir().recovery_chain().unwrap().unwrap();
        assert!(full.id > 0, "retried merge did not produce a collapsed full");
    }

    #[test]
    fn shard_owned_single_key_txns_run_lock_free_and_count() {
        let db = db_with_mode(StrategyKind::Calc, "so-single", ExecutorMode::ShardOwned);
        assert_eq!(db.executor_mode(), ExecutorMode::ShardOwned);
        for i in 0..200u64 {
            let out = db.execute(ProcId(1), add_params(i % 16, 1, u64::MAX));
            assert!(matches!(out, TxnOutcome::Committed(_)));
        }
        for k in 0..16u64 {
            let got =
                u64::from_le_bytes(db.get(Key(k)).unwrap()[..8].try_into().unwrap());
            assert_eq!(got, 200 / 16 + u64::from(k < 200 % 16));
        }
        let health = db.health();
        assert_eq!(health.single_shard_txns(), 200);
        assert_eq!(health.cross_shard_txns(), 0);
        assert_eq!(health.routing_fallbacks(), 0);
        assert_eq!(db.metrics().committed(), 200);
    }

    #[test]
    fn shard_owned_cross_shard_transfers_conserve_total() {
        let db = db_with_mode(StrategyKind::Calc, "so-cross", ExecutorMode::ShardOwned);
        let router = db.shard_router().expect("shard-owned router");
        const KEYS: u64 = 16;
        for k in 0..KEYS {
            db.execute(ProcId(1), add_params(k, 1000, u64::MAX));
        }
        // Mix of genuinely cross-owner pairs and same-owner pairs, fired
        // from several submitter threads so fences interleave with
        // single-owner traffic.
        let mut cross = 0u64;
        let mut handles = Vec::new();
        let db = Arc::new(db);
        for t in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..150u64 {
                    let from = (t * 37 + i) % KEYS;
                    let to = (t * 37 + i * 11 + 1) % KEYS;
                    if from != to {
                        let p =
                            params::Writer::new().u64(from).u64(to).u64(1).finish();
                        db.execute(ProcId(2), p);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..KEYS {
            for j in 0..KEYS {
                if i != j && router.owner_of_key(Key(i)) != router.owner_of_key(Key(j)) {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "workload never crossed owners; widen KEYS");
        assert!(db.health().cross_shard_txns() > 0, "no fence path exercised");
        let total: u64 = (0..KEYS)
            .map(|k| u64::from_le_bytes(db.get(Key(k)).unwrap()[..8].try_into().unwrap()))
            .sum();
        assert_eq!(total, KEYS * 1000, "transfers must conserve the total");
    }

    #[test]
    fn shard_owned_concurrent_submissions_all_commit() {
        let db = db_with_mode(StrategyKind::Calc, "so-concurrent", ExecutorMode::ShardOwned);
        for i in 0..1000u64 {
            db.submit(ProcId(1), add_params(i % 10, 1, u64::MAX));
        }
        let metrics = db.metrics().clone();
        let strategy = db.strategy().clone();
        db.shutdown();
        assert_eq!(metrics.committed(), 1000);
        let total: u64 = (0..10u64)
            .map(|k| {
                u64::from_le_bytes(strategy.get(Key(k)).unwrap()[..8].try_into().unwrap())
            })
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn shard_owned_commit_log_stays_in_seq_order() {
        // The commit-token invariant across the refactor: the retained
        // command log must be strictly seq-ordered even when commits come
        // from different owner threads and fenced cross-shard commits.
        let db = db_with_mode(StrategyKind::Calc, "so-order", ExecutorMode::ShardOwned);
        for k in 0..8u64 {
            db.execute(ProcId(1), add_params(k, 100, u64::MAX));
        }
        for i in 0..200u64 {
            let p = params::Writer::new()
                .u64(i % 8)
                .u64((i + 3) % 8)
                .u64(0)
                .finish();
            db.submit(ProcId(2), p);
            db.submit(ProcId(1), add_params(i % 8, 1, u64::MAX));
        }
        let metrics = db.metrics().clone();
        let log = db.commit_log().clone();
        db.shutdown();
        let records = log.commits_after(CommitSeq::ZERO);
        assert_eq!(records.len() as u64, metrics.committed());
        for pair in records.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "commit log out of order: {:?} then {:?}",
                pair[0].seq,
                pair[1].seq
            );
        }
    }

    #[test]
    fn shard_owned_unknown_procedure_aborts_and_counts_fallback() {
        let db = db_with_mode(StrategyKind::Calc, "so-unknown", ExecutorMode::ShardOwned);
        let out = db.execute(ProcId(99), add_params(1, 1, 10));
        assert!(matches!(out, TxnOutcome::Aborted(AbortReason::BadParams(_))));
        assert_eq!(db.health().routing_fallbacks(), 1);
        // Parity with the pool executor: routing-time aborts do not reach
        // the outcome metrics (the pool's early returns never did).
        assert_eq!(db.metrics().aborted(), 0);
    }

    #[test]
    fn shard_owned_checkpoint_quiesces_across_fences() {
        // A checkpoint's quiesce (gate.write) must interleave safely with
        // cross-shard fences: coordinators take gate.read only once every
        // co-owner is parked, so the writer can never wedge between them.
        let db = Arc::new(db_with_mode(
            StrategyKind::Calc,
            "so-quiesce",
            ExecutorMode::ShardOwned,
        ));
        for k in 0..12u64 {
            db.execute(ProcId(1), add_params(k, 1000, u64::MAX));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let feeder = {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let p = params::Writer::new()
                        .u64(i % 12)
                        .u64((i * 7 + 1) % 12)
                        .u64(1)
                        .finish();
                    db.execute(ProcId(2), p);
                    i += 1;
                }
            })
        };
        for _ in 0..5 {
            db.checkpoint_now().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        feeder.join().unwrap();
        let total: u64 = (0..12u64)
            .map(|k| u64::from_le_bytes(db.get(Key(k)).unwrap()[..8].try_into().unwrap()))
            .sum();
        assert_eq!(total, 12 * 1000);
        assert!(!db.checkpoint_dir().scan().unwrap().is_empty());
    }

    #[test]
    fn shard_owned_worker_queue_depths_are_exposed() {
        let db = db_with_mode(StrategyKind::Calc, "so-depths", ExecutorMode::ShardOwned);
        let depths = db.health().worker_queue_depths();
        assert_eq!(depths.len(), 4, "one gauge per worker");
        // After a synchronous round-trip, nothing is left enqueued.
        db.execute(ProcId(1), add_params(1, 1, u64::MAX));
        assert!(db.health().worker_queue_depths().iter().all(|&d| d == 0));
        // Pool mode exposes no per-worker gauges.
        let pool = db_with_mode(StrategyKind::Calc, "so-depths-pool", ExecutorMode::Pool);
        assert!(pool.health().worker_queue_depths().is_empty());
        assert!(pool.shard_router().is_none());
    }

    #[test]
    fn end_to_end_recovery_via_engine() {
        let db = db(StrategyKind::Calc, "e2e-recovery");
        for k in 0..20u64 {
            db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
        }
        db.finalize_load(false).unwrap();
        for k in 0..20u64 {
            db.execute(ProcId(1), add_params(k, k, u64::MAX));
        }
        db.checkpoint_now().unwrap();
        for k in 0..5u64 {
            db.execute(ProcId(1), add_params(k, 100, u64::MAX));
        }

        // "Crash": recover into a fresh strategy.
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(AddProc));
        let recovered = calc_core::calc::CalcStrategy::full(
            calc_storage::dual::StoreConfig::for_records(1024, 16),
            Arc::new(CommitLog::new(false)),
        );
        let commands = db.commit_log().commits_after(CommitSeq::ZERO);
        let outcome =
            calc_recovery::recover(db.checkpoint_dir(), &recovered, &registry, &commands)
                .unwrap();
        assert_eq!(outcome.replayed, 5);
        for k in 0..20u64 {
            assert_eq!(
                recovered.get(Key(k)),
                db.get(Key(k)),
                "key {k} diverged after recovery"
            );
        }
    }
}

#[cfg(test)]
mod cmdlog_tests {
    use super::*;
    use crate::config::{EngineConfig, StrategyKind};
    use calc_txn::proc::{params, AbortReason, LockRequest, Procedure, TxnOps};

    struct SetProc;
    impl Procedure for SetProc {
        fn id(&self) -> ProcId {
            ProcId(1)
        }
        fn name(&self) -> &'static str {
            "set"
        }
        fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
            let mut r = params::Reader::new(p);
            Ok(LockRequest {
                reads: vec![],
                writes: vec![Key(r.u64()?)],
            })
        }
        fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            let mut r = params::Reader::new(p);
            let key = Key(r.u64()?);
            let v = r.u64()?.to_le_bytes();
            if ops.get(key).is_some() {
                ops.put(key, &v);
            } else {
                ops.insert(key, &v);
            }
            Ok(())
        }
    }

    #[test]
    fn dead_command_logger_degrades_to_sync_error() {
        use calc_common::simfs::{SimVfs, TransientKind, TransientSpec};
        // Regression: a logger thread killed by an append I/O error used
        // to abort the whole process via a panic in sync_command_log.
        let vfs = SimVfs::new(0xDEAD_1066);
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let mut config = EngineConfig::new(
            StrategyKind::Calc,
            256,
            16,
            std::path::PathBuf::from("/sim/ckpts"),
        );
        config.command_log_path = Some(std::path::PathBuf::from("/sim/cmd.log"));
        config.vfs = Arc::new(vfs.clone());
        config.workers = 2;
        let db = Database::open(config, registry).unwrap();
        // Fail every write from here on: the logger's next append dies
        // and the thread exits.
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::WriteError,
            from: vfs.counts().data_ops(),
            count: u64::MAX,
        });
        let out = db.execute(ProcId(1), params::Writer::new().u64(1).u64(1).finish());
        assert!(
            matches!(out, TxnOutcome::Committed(_)),
            "commit must survive a dead logger"
        );
        let r = db.sync_command_log();
        assert!(
            matches!(r, Err(SyncError::LoggerExited) | Err(SyncError::LoggerDied)),
            "expected a typed sync error, got {r:?}"
        );
        // The engine is still alive: more commits, clean shutdown.
        let out = db.execute(ProcId(1), params::Writer::new().u64(2).u64(2).finish());
        assert!(matches!(out, TxnOutcome::Committed(_)));
        db.shutdown();
    }

    #[test]
    fn durable_command_log_collects_all_commits_group_committed() {
        let base = std::env::temp_dir().join(format!(
            "calc-cmdlog-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&base).unwrap();
        let log_path = base.join("commands.log");
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let mut config = EngineConfig::new(StrategyKind::Calc, 1024, 16, base.join("ckpts"));
        config.command_log_path = Some(log_path.clone());
        config.workers = 2;
        let db = Database::open(config, registry).unwrap();
        for i in 0..300u64 {
            db.submit(ProcId(1), params::Writer::new().u64(i % 50).u64(i).finish());
        }
        // Aborted transactions must NOT reach the durable log.
        let out = db.execute(ProcId(99), Arc::from(&b""[..]));
        assert!(matches!(out, TxnOutcome::Aborted(_)));
        db.shutdown(); // closes the channel, drains, final fsync

        let records = calc_recovery::CommandLogReader::open(&log_path)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(records.len(), 300, "every commit durably logged");
        // Records are in commit order.
        for pair in records.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn sync_command_log_flush_handshake_is_deterministic() {
        // sync_command_log must make every previously-enqueued record
        // durable before returning — a real flush handshake, not a sleep
        // hoping the idle-timeout sync has happened.
        let base = std::env::temp_dir().join(format!(
            "calc-cmdlog-sync-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&base).unwrap();
        let log_path = base.join("commands.log");
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let mut config = EngineConfig::new(StrategyKind::Calc, 1024, 16, base.join("ckpts"));
        config.command_log_path = Some(log_path.clone());
        config.workers = 2;
        let db = Database::open(config, registry).unwrap();
        for round in 1..=3u64 {
            for i in 0..40u64 {
                db.execute(ProcId(1), params::Writer::new().u64(i).u64(round).finish());
            }
            db.sync_command_log().expect("flush handshake");
            // The database is still live; the synced prefix must already
            // be on disk.
            let records = calc_recovery::CommandLogReader::open(&log_path)
                .unwrap()
                .read_all()
                .unwrap();
            assert_eq!(
                records.len() as u64,
                40 * round,
                "round {round}: flush acknowledged but records not durable"
            );
        }
        db.shutdown();
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use crate::config::{EngineConfig, StrategyKind};
    use calc_recovery::logfile::list_segments;
    use calc_txn::proc::{params, AbortReason, LockRequest, Procedure, TxnOps};

    struct SetProc;
    impl Procedure for SetProc {
        fn id(&self) -> ProcId {
            ProcId(1)
        }
        fn name(&self) -> &'static str {
            "set"
        }
        fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
            let mut r = params::Reader::new(p);
            Ok(LockRequest {
                reads: vec![],
                writes: vec![Key(r.u64()?)],
            })
        }
        fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            let mut r = params::Reader::new(p);
            let key = Key(r.u64()?);
            // Zero-padded payload: representative of fixed-width tuples and
            // gives the RLE codec real redundancy to squeeze.
            let mut v = [0u8; 64];
            v[..8].copy_from_slice(&r.u64()?.to_le_bytes());
            if ops.get(key).is_some() {
                ops.put(key, &v);
            } else {
                ops.insert(key, &v);
            }
            Ok(())
        }
    }

    fn base_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "calc-retention-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// The end-to-end retention loop: compressed checkpoints, segmented
    /// log, pruning and truncation after every cycle — disk use stays
    /// bounded and recovery still reproduces the exact live state.
    #[test]
    fn retention_bounds_disk_and_preserves_recovery() {
        let base = base_dir("bound");
        let log_dir = base.join("cmdlog");
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let mut config = EngineConfig::new(StrategyKind::Calc, 4096, 16, base.join("ckpts"));
        config.workers = 2;
        config.retain_command_log = true;
        config.codec = calc_core::Codec::Rle;
        config.command_log_dir = Some(log_dir.clone());
        config.log_segment_bytes = Some(4 << 10);
        config.keep_checkpoints = Some(2);
        let db = Database::open(config, registry).unwrap();

        for cycle in 0..6u64 {
            for i in 0..120u64 {
                db.execute(
                    ProcId(1),
                    params::Writer::new().u64(i % 64).u64(cycle * 1000 + i).finish(),
                );
            }
            db.sync_command_log().unwrap();
            db.checkpoint_now().unwrap();
        }
        let health = db.health();
        assert!(health.checkpoints_pruned() >= 3, "6 fulls, keep 2");
        assert!(
            health.log_segments_truncated() > 0,
            "covered segments must be truncated"
        );
        assert!(health.log_bytes_truncated() > 0);
        assert_eq!(health.retention_failures(), 0);
        // Compression is live end to end.
        assert!(health.last_checkpoint_bytes() > 0);
        assert!(
            health.last_checkpoint_raw_bytes() > health.last_checkpoint_bytes(),
            "RLE on 8-byte LE values must shrink the stream"
        );

        // Disk is bounded: at most `keep` fulls survive.
        let fulls = db
            .checkpoint_dir()
            .scan()
            .unwrap()
            .iter()
            .filter(|m| m.kind == CheckpointKind::Full)
            .count();
        assert!(fulls <= 2, "{fulls} fulls survived keep_checkpoints=2");

        // Zero lost writes: surviving chain + surviving segments rebuild
        // the exact live state.
        let expected: Vec<(Key, Option<Value>)> =
            (0..64u64).map(|k| (Key(k), db.get(Key(k)))).collect();
        let commands =
            calc_recovery::read_dir_logs(db.checkpoint_dir().vfs().as_ref(), &log_dir).unwrap();
        db.shutdown();

        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let recovered = calc_core::calc::CalcStrategy::full(
            calc_storage::dual::StoreConfig::for_records(4096, 16),
            Arc::new(CommitLog::new(false)),
        );
        let dir = CheckpointDir::open(
            &base.join("ckpts"),
            Arc::new(calc_core::throttle::Throttle::unlimited()),
        )
        .unwrap();
        calc_recovery::recover(&dir, &recovered, &registry, &commands).unwrap();
        for (k, v) in expected {
            assert_eq!(recovered.get(k), v, "key {} diverged", k.0);
        }
    }

    /// Truncation's floor is the oldest *surviving* full's watermark, so
    /// the log never develops a gap against any chain recovery might fall
    /// back to: the first surviving record follows the floor directly.
    #[test]
    fn truncation_leaves_no_replay_gap_for_fallback_chains() {
        let base = base_dir("gap");
        let log_dir = base.join("cmdlog");
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let mut config = EngineConfig::new(StrategyKind::Calc, 4096, 16, base.join("ckpts"));
        config.workers = 2;
        config.command_log_dir = Some(log_dir.clone());
        config.log_segment_bytes = Some(4 << 10);
        config.keep_checkpoints = Some(2);
        let db = Database::open(config, registry).unwrap();
        for cycle in 0..5u64 {
            for i in 0..150u64 {
                db.execute(
                    ProcId(1),
                    params::Writer::new().u64(i % 32).u64(cycle).finish(),
                );
            }
            db.sync_command_log().unwrap();
            db.checkpoint_now().unwrap();
        }
        let metas = db.checkpoint_dir().scan().unwrap();
        let floor = metas
            .iter()
            .filter(|m| m.kind == CheckpointKind::Full)
            .map(|m| m.watermark)
            .min()
            .unwrap();
        let vfs = db.checkpoint_dir().vfs().clone();
        assert!(
            !list_segments(vfs.as_ref(), &log_dir).unwrap().is_empty(),
            "active segment always survives"
        );
        let records = calc_recovery::read_dir_logs(vfs.as_ref(), &log_dir).unwrap();
        if let Some(first) = records.first() {
            assert!(
                first.seq.0 <= floor.0 + 1,
                "gap between oldest surviving full (wm {}) and first log record ({})",
                floor.0,
                first.seq.0
            );
        }
        db.shutdown();
    }
}

#[cfg(test)]
mod recover_tests {
    use super::*;
    use crate::config::{EngineConfig, StrategyKind};
    use calc_txn::proc::{params, AbortReason, LockRequest, Procedure, TxnOps};

    struct SetProc;
    impl Procedure for SetProc {
        fn id(&self) -> ProcId {
            ProcId(1)
        }
        fn name(&self) -> &'static str {
            "set"
        }
        fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
            let mut r = params::Reader::new(p);
            Ok(LockRequest {
                reads: vec![],
                writes: vec![Key(r.u64()?)],
            })
        }
        fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            let mut r = params::Reader::new(p);
            let key = Key(r.u64()?);
            let v = r.u64()?.to_le_bytes();
            if ops.get(key).is_some() {
                ops.put(key, &v);
            } else {
                ops.insert(key, &v);
            }
            Ok(())
        }
    }

    fn set(k: u64, v: u64) -> Arc<[u8]> {
        params::Writer::new().u64(k).u64(v).finish()
    }

    fn registry() -> ProcRegistry {
        let mut r = ProcRegistry::new();
        r.register(Arc::new(SetProc));
        r
    }

    #[test]
    fn database_recover_resumes_ids_and_sequences() {
        for kind in [StrategyKind::PCalc, StrategyKind::PNaive] {
            let dir = std::env::temp_dir().join(format!(
                "calc-recover-resume-{}-{}",
                std::process::id(),
                kind.name()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            // Pre-crash lifetime: base + two partial checkpoints + tail.
            let mut config = EngineConfig::new(kind, 2048, 16, dir.clone());
            config.retain_command_log = true;
            let db = Database::open(config, registry()).unwrap();
            for k in 0..50u64 {
                db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
            }
            db.finalize_load(true).unwrap();
            for round in 1..=2u64 {
                for k in 0..20u64 {
                    db.execute(ProcId(1), set(k, round));
                }
                db.checkpoint_now().unwrap();
            }
            for k in 0..5u64 {
                db.execute(ProcId(1), set(k, 99));
            }
            let commands = db.commit_log().commits_after(CommitSeq::ZERO);
            let expected: Vec<_> = (0..50u64).map(|k| db.get(Key(k))).collect();
            let old_ids: std::collections::BTreeSet<u64> =
                db.checkpoint_dir().scan().unwrap().iter().map(|m| m.id).collect();
            drop(db);

            // Crash + recover into a fresh engine over the same directory.
            let mut config = EngineConfig::new(kind, 2048, 16, dir);
            config.retain_command_log = true;
            let db = Database::open(config, registry()).unwrap();
            let outcome = db.recover(&commands).unwrap();
            assert_eq!(outcome.replayed, 5, "{}", kind.name());
            for (k, exp) in expected.iter().enumerate() {
                assert_eq!(db.get(Key(k as u64)), *exp, "{}: key {k}", kind.name());
            }

            // Post-recovery activity and a new checkpoint: its id must not
            // collide with (overwrite) any pre-crash file, and new commit
            // sequences continue past the old ones.
            let max_old_seq = commands.iter().map(|c| c.seq).max().unwrap();
            let TxnOutcome::Committed(new_seq) = db.execute(ProcId(1), set(1, 123)) else {
                panic!("commit failed");
            };
            assert!(new_seq > max_old_seq, "{}: sequence went backwards", kind.name());
            let stats = db.checkpoint_now().unwrap();
            assert!(
                !old_ids.contains(&stats.id),
                "{}: checkpoint id {} collides with pre-crash files",
                kind.name(),
                stats.id
            );
            // And the new chain recovers to the latest state.
            let metas = db.checkpoint_dir().scan().unwrap();
            assert!(metas.iter().any(|m| m.id == stats.id));
        }
    }

    #[test]
    fn partial_checkpoint_after_recovery_covers_replayed_writes() {
        // A partial checkpoint taken after recovery advances the watermark
        // past the replayed commits, so it MUST also contain their writes:
        // if replay's dirty marks land in a stale interval, the next crash
        // loses those commits even with a complete command log.
        for kind in [StrategyKind::PCalc, StrategyKind::PNaive] {
            let dir = std::env::temp_dir().join(format!(
                "calc-recover-replay-dirty-{}-{}",
                std::process::id(),
                kind.name()
            ));
            let _ = std::fs::remove_dir_all(&dir);

            // Lifetime 1: base checkpoint + one commit that exists only in
            // the command log.
            let mut config = EngineConfig::new(kind, 2048, 16, dir.clone());
            config.retain_command_log = true;
            let db = Database::open(config, registry()).unwrap();
            for k in 0..10u64 {
                db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
            }
            db.finalize_load(true).unwrap();
            db.execute(ProcId(1), set(3, 77));
            let log1 = db.commit_log().commits_after(CommitSeq::ZERO);
            let max_seq = log1.iter().map(|c| c.seq).max().unwrap();
            drop(db);

            // Lifetime 2: recover (replays set(3, 77)), take a partial
            // checkpoint with no new commits, crash again.
            let mut config = EngineConfig::new(kind, 2048, 16, dir.clone());
            config.retain_command_log = true;
            let db = Database::open(config, registry()).unwrap();
            db.recover(&log1).unwrap();
            assert_eq!(db.get(Key(3)), Some(77u64.to_le_bytes().into()));
            let stats = db.checkpoint_now().unwrap();
            assert!(
                stats.watermark >= max_seq,
                "{}: post-recovery checkpoint watermark {} does not cover \
                 the replayed commit {max_seq}",
                kind.name(),
                stats.watermark
            );
            drop(db);

            // Lifetime 3: recover from the new chain plus the complete
            // command log. The replayed commit is at seq <= watermark, so
            // replay skips it — the checkpoint itself must carry it.
            let mut config = EngineConfig::new(kind, 2048, 16, dir);
            config.retain_command_log = true;
            let db = Database::open(config, registry()).unwrap();
            db.recover(&log1).unwrap();
            assert_eq!(
                db.get(Key(3)),
                Some(77u64.to_le_bytes().into()),
                "{}: replayed write lost by the post-recovery partial checkpoint",
                kind.name()
            );
        }
    }
}
