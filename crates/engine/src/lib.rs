//! Execution engine: the paper's evaluation system (§4).
//!
//! "We implemented a memory-resident key-value store with full
//! transactional support. Transactions ... are executed by a pool of
//! worker threads, using a pessimistic concurrency control protocol to
//! ensure serializability [and] a deadlock-free variant of strict
//! two-phase locking."
//!
//! * [`config`] — [`config::EngineConfig`] and [`config::StrategyKind`]
//!   (which of the paper's six algorithms to run, full or partial).
//! * [`db`] — the [`db::Database`] facade: submission queue, worker pool,
//!   admission gate (the quiesce mechanism baselines need for physical
//!   points of consistency), checkpoint triggering, and background
//!   merging of partial checkpoints.
//! * [`metrics`] — commit/abort counters, a submission-to-commit latency
//!   histogram (queueing included, as Figure 5 requires), the
//!   [`metrics::Sampler`] that records throughput/memory timelines for
//!   the figures, and the checkpointer [`metrics::Health`] state.
//! * [`service`] — the supervised checkpoint daemon: cadence, error
//!   classification, backoff retries, and degraded mode.

#![warn(missing_docs)]

pub mod config;
pub mod db;
pub mod metrics;
#[cfg(feature = "conform")]
pub mod recorder;
pub mod service;

pub use config::{EngineConfig, ExecutorMode, StandbyOf, StrategyKind};
pub use db::{Database, SyncError, TxnOutcome};
pub use metrics::{Health, Metrics, Sampler, TimelinePoint};
pub use service::{classify, CheckpointService, ErrorClass, ServiceTuning};
