//! The supervised checkpoint daemon.
//!
//! [`CheckpointService`] runs checkpoint cycles on a configurable cadence
//! ([`crate::EngineConfig::checkpoint_interval`]) and makes checkpoint
//! failure a *survivable* condition rather than a process-level event:
//!
//! * Each cycle error is classified ([`classify`]) as [`ErrorClass::Transient`]
//!   (worth retrying soon), [`ErrorClass::DiskFull`] (ENOSPC — retrying is
//!   only useful once space frees, but it is still not fatal to the
//!   engine), or [`ErrorClass::Fatal`] (misconfiguration; retrying at the
//!   normal cadence documents the condition without hammering the disk).
//! * Transient and disk-full failures retry under capped exponential
//!   backoff with deterministic jitter ([`calc_common::Backoff`]), seeded
//!   from the engine config so simulated-VFS runs replay exactly.
//! * The strategy layer guarantees a failed cycle is *harmless* (see
//!   `CheckpointStrategy::checkpoint`'s contract): the daemon can simply
//!   try again and the next successful cycle covers everything the failed
//!   ones would have.
//! * After `degraded_after` consecutive failures the engine enters
//!   **degraded mode** — transactions keep committing and the command log
//!   keeps growing (recovery still works, just with a longer replay); the
//!   shared [`Health`] struct reports the state and the service exits it
//!   on the first successful cycle (self-healing).

use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use calc_common::Backoff;

use crate::metrics::Health;

/// What kind of failure a checkpoint cycle hit — drives the retry policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Plausibly goes away on its own (interrupted write, timeout,
    /// broken pipe): retry under backoff.
    Transient,
    /// `ENOSPC`. Its own class because it has its own remedy (free disk
    /// space) and its own urgency: every checkpoint will fail until an
    /// operator acts, but the engine itself is unharmed.
    DiskFull,
    /// Misconfiguration or a broken environment (permissions, missing
    /// directory, invalid data): retrying quickly cannot help.
    Fatal,
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorClass::Transient => "transient",
            ErrorClass::DiskFull => "disk-full",
            ErrorClass::Fatal => "fatal",
        })
    }
}

/// Classifies an I/O error from a checkpoint cycle.
///
/// ENOSPC is detected by raw OS errno (28) first: `io::ErrorKind` maps it
/// to the unstable `StorageFull` kind, which `ErrorKind::Other` matching
/// would misfile. Everything not explicitly fatal is treated as
/// transient — the optimistic default is safe because a failed cycle is
/// harmless and capped backoff bounds the retry cost.
pub fn classify(e: &io::Error) -> ErrorClass {
    if e.raw_os_error() == Some(28) {
        return ErrorClass::DiskFull;
    }
    match e.kind() {
        io::ErrorKind::PermissionDenied
        | io::ErrorKind::NotFound
        | io::ErrorKind::InvalidInput
        | io::ErrorKind::InvalidData
        | io::ErrorKind::Unsupported => ErrorClass::Fatal,
        _ => ErrorClass::Transient,
    }
}

/// Retry / degradation tuning for the checkpoint daemon (and for health
/// accounting on manually triggered cycles).
#[derive(Clone, Debug)]
pub struct ServiceTuning {
    /// First retry delay after a failed cycle.
    pub backoff_base: Duration,
    /// Ceiling on the retry delay.
    pub backoff_cap: Duration,
    /// Seed for the backoff's deterministic jitter.
    pub backoff_seed: u64,
    /// Consecutive failed cycles before entering degraded mode. A fatal
    /// error enters degraded mode immediately.
    pub degraded_after: u32,
    /// How long a single cycle may run before [`Health::stalled`] reports
    /// the checkpointer as wedged.
    pub watchdog: Duration,
}

impl Default for ServiceTuning {
    fn default() -> Self {
        ServiceTuning {
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            backoff_seed: 0xca1c_b0ff,
            degraded_after: 3,
            watchdog: Duration::from_secs(30),
        }
    }
}

/// Stop flag + condvar so the daemon's inter-cycle sleep is interruptible:
/// shutdown never waits out a full interval (or a long backoff).
struct StopCell {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// Background daemon running checkpoint cycles. See module docs.
pub struct CheckpointService {
    cell: Arc<StopCell>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CheckpointService {
    /// Starts the daemon: every `interval` it runs `cycle`, recording the
    /// outcome in `health` and applying the retry policy above. `cycle`
    /// is a closure (not a `Database` reference) so the policy can be
    /// tested against scripted failure sequences.
    pub fn start<F>(
        interval: Duration,
        tuning: ServiceTuning,
        health: Arc<Health>,
        mut cycle: F,
    ) -> Self
    where
        F: FnMut() -> io::Result<()> + Send + 'static,
    {
        let cell = Arc::new(StopCell {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        });
        let cell2 = cell.clone();
        let handle = std::thread::Builder::new()
            .name("calc-ckpt-service".into())
            .spawn(move || {
                let mut backoff =
                    Backoff::new(tuning.backoff_base, tuning.backoff_cap, tuning.backoff_seed);
                let mut wait = interval;
                loop {
                    {
                        let mut stopped = cell2.stopped.lock();
                        if !*stopped {
                            cell2.cv.wait_for(&mut stopped, wait);
                        }
                        if *stopped {
                            return;
                        }
                    }
                    health.cycle_started();
                    match cycle() {
                        Ok(()) => {
                            health.cycle_succeeded();
                            backoff.reset();
                            wait = interval;
                        }
                        Err(e) => {
                            let class = classify(&e);
                            health.cycle_failed(class, &e);
                            wait = match class {
                                // Hammering a broken config or a full disk
                                // with millisecond retries helps nobody;
                                // probe at the capped delay so recovery of
                                // the environment is still noticed.
                                ErrorClass::Fatal => interval.max(tuning.backoff_cap),
                                ErrorClass::Transient | ErrorClass::DiskFull => {
                                    backoff.next_delay()
                                }
                            };
                        }
                    }
                }
            })
            .expect("spawn checkpoint service");
        CheckpointService {
            cell,
            handle: Some(handle),
        }
    }

    /// Stops the daemon, interrupting any inter-cycle wait. An in-flight
    /// cycle finishes first (cycles are harmless to fail but not to kill).
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        *self.cell.stopped.lock() = true;
        self.cell.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CheckpointService {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Instant;

    fn tuning() -> ServiceTuning {
        ServiceTuning {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            backoff_seed: 7,
            degraded_after: 3,
            watchdog: Duration::from_secs(30),
        }
    }

    fn wait_until(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    #[test]
    fn classify_taxonomy() {
        assert_eq!(
            classify(&io::Error::from_raw_os_error(28)),
            ErrorClass::DiskFull
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::Interrupted, "x")),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::TimedOut, "x")),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::PermissionDenied, "x")),
            ErrorClass::Fatal
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::InvalidData, "x")),
            ErrorClass::Fatal
        );
    }

    #[test]
    fn degraded_mode_entered_and_exited() {
        // Three transient failures enter degraded mode; the next success
        // exits it. The command-log side of "transactions keep committing"
        // is covered by the engine-level test in `db.rs`.
        let health = Arc::new(Health::new(3, Duration::from_secs(30)));
        let calls = Arc::new(AtomicU32::new(0));
        let calls2 = calls.clone();
        let svc = CheckpointService::start(
            Duration::from_millis(1),
            tuning(),
            health.clone(),
            move || {
                let n = calls2.fetch_add(1, Ordering::Relaxed);
                if n < 3 {
                    Err(io::Error::new(io::ErrorKind::Interrupted, "injected"))
                } else {
                    Ok(())
                }
            },
        );
        assert!(
            wait_until(Duration::from_secs(10), || health.degraded_entries() >= 1),
            "never entered degraded mode"
        );
        assert!(
            wait_until(Duration::from_secs(10), || !health.degraded()
                && health.degraded_exits() >= 1),
            "never self-healed out of degraded mode"
        );
        svc.stop();
        assert_eq!(health.degraded_entries(), 1);
        assert_eq!(health.degraded_exits(), 1);
        assert_eq!(health.consecutive_failures(), 0);
        assert!(health.time_since_last_success().is_some());
        let (class, msg) = health.last_error().expect("error recorded");
        assert_eq!(class, ErrorClass::Transient);
        assert!(msg.contains("injected"));
    }

    #[test]
    fn fatal_error_enters_degraded_immediately() {
        let health = Arc::new(Health::new(100, Duration::from_secs(30)));
        let svc = CheckpointService::start(
            Duration::from_millis(1),
            tuning(),
            health.clone(),
            move || Err(io::Error::new(io::ErrorKind::PermissionDenied, "denied")),
        );
        assert!(
            wait_until(Duration::from_secs(10), || health.degraded()),
            "fatal error did not enter degraded mode"
        );
        svc.stop();
        assert_eq!(health.last_error().unwrap().0, ErrorClass::Fatal);
    }

    #[test]
    fn watchdog_flags_a_stalled_cycle() {
        // A cycle that outlives the watchdog budget is reported as stalled
        // while it runs, and the flag clears once it completes.
        let health = Arc::new(Health::new(3, Duration::from_millis(5)));
        let release = Arc::new(StopCell {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        });
        let release2 = release.clone();
        let svc = CheckpointService::start(
            Duration::from_millis(1),
            tuning(),
            health.clone(),
            move || {
                let mut done = release2.stopped.lock();
                while !*done {
                    release2.cv.wait_for(&mut done, Duration::from_millis(50));
                }
                Ok(())
            },
        );
        assert!(
            wait_until(Duration::from_secs(10), || health.stalled()),
            "watchdog never fired on a wedged cycle"
        );
        *release.stopped.lock() = true;
        release.cv.notify_all();
        assert!(
            wait_until(Duration::from_secs(10), || !health.stalled()),
            "stalled flag did not clear after the cycle completed"
        );
        svc.stop();
    }

    #[test]
    fn stop_interrupts_a_long_interval() {
        let health = Arc::new(Health::new(3, Duration::from_secs(30)));
        let svc = CheckpointService::start(
            Duration::from_secs(3600),
            tuning(),
            health,
            move || Ok(()),
        );
        let start = Instant::now();
        svc.stop();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "stop waited out the interval"
        );
    }
}
