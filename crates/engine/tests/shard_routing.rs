//! Cross-checks the shard-owned executor's routing arithmetic against the
//! rest of the system's partitioning, across crate boundaries:
//!
//! * `ShardRouter::shard_of` must agree with recovery's `key % shards`
//!   bucketing (`calc_core::merge` writes checkpoint part files with the
//!   same modulus), and
//! * `ShardRouter::owner_of_shard` must agree with the contiguous striping
//!   `calc_core::partition::ShardPartition` uses to split capture work
//!   over checkpoint threads.
//!
//! `calc-txn` cannot depend on `calc-core`, so this equivalence can only
//! be asserted here in the engine, which sees both.

use calc_common::types::Key;
use calc_core::partition::ShardPartition;
use calc_txn::route::ShardRouter;

#[test]
fn owner_striping_matches_checkpoint_shard_partition() {
    for workers in 1..=9usize {
        for spw in [1usize, 2, 3, 8, 13] {
            let router = ShardRouter::new(workers, spw);
            let shards = workers * spw;
            let part = ShardPartition::over(shards, workers);
            assert_eq!(part.parts(), workers);
            assert_eq!(part.total(), shards);
            for w in 0..workers {
                for s in part.range(w) {
                    assert_eq!(
                        router.owner_of_shard(s),
                        w,
                        "workers={workers} spw={spw}: shard {s} routed off its \
                         ShardPartition stripe"
                    );
                }
            }
        }
    }
}

#[test]
fn key_bucketing_matches_recovery_shard_modulus() {
    let workers = 4;
    let spw = 8;
    let router = ShardRouter::new(workers, spw);
    let shards = workers * spw;
    for k in 0..10_000u64 {
        assert_eq!(router.shard_of(Key(k)), (k as usize) % shards);
    }
    // Large keys don't overflow or wrap differently.
    for k in [u64::MAX, u64::MAX - 1, 1 << 63] {
        assert_eq!(router.shard_of(Key(k)), (k % shards as u64) as usize);
    }
}

#[test]
fn every_key_routes_to_the_owner_of_its_shard() {
    let router = ShardRouter::new(3, 5);
    let part = ShardPartition::over(15, 3);
    for k in 0..1_000u64 {
        let shard = router.shard_of(Key(k));
        let owner = router.owner_of_key(Key(k));
        assert!(part.range(owner).contains(&shard));
    }
}
