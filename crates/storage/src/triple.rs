//! The triple-copy store used by the Interleaved Ping-Pong baseline
//! (§4.1.3).
//!
//! IPP maintains the application state plus two additional arrays, `odd`
//! and `even`, each with one dirty bit per element. Every update writes
//! **both** the application state and the array designated *current*
//! (setting its dirty bit) — the double write is IPP's ~25% standing
//! overhead on write-intensive workloads (§5.1.1). At each physical point
//! of consistency the current array flips; a background thread then merges
//! the *retired* array's dirty values into the last consistent snapshot —
//! an in-memory full copy of the database, the 4th copy of Figure 6 — and
//! writes the checkpoint.
//!
//! Per §4.1.3, the original IPP stores all three copies of a record
//! contiguously for cache locality; we keep that optimization by placing
//! all three copies in the same slot of the arena (same mutex, same cache
//! lines), while using the same hash-table engine as CALC for an
//! apples-to-apples comparison.
//!
//! **Deletion caveat** (inherent to the algorithm — the original IPP has
//! no deletes at all): a deleted record's slot is retained until the next
//! checkpoint consumes its dirty bit, so workloads with insert/delete
//! churn need `O(deletes per checkpoint interval)` spare slot capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::{Mutex, RwLock};

use calc_common::bitvec::AtomicBitVec;
use calc_common::types::{Key, Value};

use crate::dual::{StoreConfig, StoreError};
use crate::mem::{MemCounter, MemoryStats};
use crate::SlotId;

struct IppSlot {
    key: u64,
    in_use: bool,
    /// Application state — what transactions read.
    state: Option<Value>,
    /// The `even` (0) and `odd` (1) ping-pong copies.
    pingpong: [Option<Value>; 2],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY: IppSlot = IppSlot {
    key: 0,
    in_use: false,
    state: None,
    pingpong: [None, None],
};

/// Per-slot snapshot entries: `(raw key, value)` under a slot mutex.
type SnapshotArray = Box<[Mutex<Option<(u64, Value)>>]>;

/// The IPP store. See module docs.
pub struct TripleStore {
    shards: Box<[RwLock<HashMap<u64, SlotId>>]>,
    shard_mask: usize,
    slots: Box<[Mutex<IppSlot>]>,
    dirty: [AtomicBitVec; 2],
    /// Index (0=even, 1=odd) of the array currently receiving writes.
    current: AtomicBool,
    /// Last consistent snapshot (full-IPP only): the in-memory checkpoint
    /// that retired dirty values merge into.
    snapshot: Option<SnapshotArray>,
    high_water: AtomicUsize,
    free_slots: Mutex<Vec<SlotId>>,
    state_mem: MemCounter,
    pingpong_mem: MemCounter,
    snapshot_mem: MemCounter,
    record_count: AtomicUsize,
}

impl TripleStore {
    /// Creates an empty store. `with_snapshot` enables the in-memory last
    /// consistent snapshot required by full-IPP; pIPP runs without it.
    pub fn new(config: StoreConfig, with_snapshot: bool) -> Self {
        let n_shards = config.shards.max(1).next_power_of_two();
        TripleStore {
            shards: (0..n_shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            shard_mask: n_shards - 1,
            slots: (0..config.capacity).map(|_| Mutex::new(EMPTY)).collect(),
            dirty: [
                AtomicBitVec::new(config.capacity),
                AtomicBitVec::new(config.capacity),
            ],
            // The paper starts with `odd` as current.
            current: AtomicBool::new(true),
            snapshot: with_snapshot
                .then(|| (0..config.capacity).map(|_| Mutex::new(None)).collect()),
            high_water: AtomicUsize::new(0),
            free_slots: Mutex::new(Vec::new()),
            state_mem: MemCounter::new(),
            pingpong_mem: MemCounter::new(),
            snapshot_mem: MemCounter::new(),
            record_count: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> &RwLock<HashMap<u64, SlotId>> {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        &self.shards[h as usize & self.shard_mask]
    }

    /// Index of the array currently receiving writes.
    #[inline]
    pub fn current_array(&self) -> usize {
        self.current.load(Ordering::Acquire) as usize
    }

    /// Current record count.
    pub fn len(&self) -> usize {
        self.record_count.load(Ordering::Relaxed)
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum record count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Highest allocated slot index.
    pub fn slot_high_water(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }

    /// Resolves a key to its slot.
    pub fn slot_of(&self, key: Key) -> Option<SlotId> {
        self.shard_of(key).read().get(&key.0).copied()
    }

    /// Reads the application state by slot (bulk scans; returns the key
    /// alongside).
    pub fn get_by_slot(&self, slot: SlotId) -> Option<(Key, Value)> {
        let g = self.slots[slot as usize].lock();
        if g.in_use {
            g.state.as_ref().map(|v| (Key(g.key), v.clone()))
        } else {
            None
        }
    }

    /// Reads the application state.
    pub fn get(&self, key: Key) -> Option<Value> {
        loop {
            let slot = self.slot_of(key)?;
            let g = self.slots[slot as usize].lock();
            if g.in_use && g.key == key.0 {
                return g.state.clone();
            }
        }
    }

    /// Inserts a record: application state + current-array copy, with the
    /// dirty bit set (the record must appear in the next checkpoint).
    pub fn insert(&self, key: Key, value: &[u8]) -> Result<SlotId, StoreError> {
        {
            let shard = self.shard_of(key).read();
            if shard.contains_key(&key.0) {
                return Err(StoreError::DuplicateKey(key));
            }
        }
        let slot = {
            if let Some(s) = self.free_slots.lock().pop() {
                s
            } else {
                let idx = self.high_water.fetch_add(1, Ordering::AcqRel);
                if idx >= self.slots.len() {
                    self.high_water.fetch_sub(1, Ordering::AcqRel);
                    return Err(StoreError::CapacityExceeded);
                }
                idx as SlotId
            }
        };
        let cur = self.current_array();
        {
            let mut g = self.slots[slot as usize].lock();
            g.key = key.0;
            g.in_use = true;
            g.state = Some(value.to_vec().into_boxed_slice());
            g.pingpong = [None, None];
            g.pingpong[cur] = Some(value.to_vec().into_boxed_slice());
            self.dirty[cur].set(slot as usize, true);
            self.dirty[1 - cur].set(slot as usize, false);
        }
        self.state_mem.add(value.len());
        self.pingpong_mem.add(value.len());
        {
            let mut shard = self.shard_of(key).write();
            if let Some(theirs) = shard.insert(key.0, slot) {
                shard.insert(key.0, theirs);
                drop(shard);
                self.discard_slot(slot);
                return Err(StoreError::DuplicateKey(key));
            }
        }
        self.record_count.fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }

    fn discard_slot(&self, slot: SlotId) {
        let mut g = self.slots[slot as usize].lock();
        if let Some(old) = g.state.take() {
            self.state_mem.sub(old.len());
        }
        for v in g.pingpong.iter_mut() {
            if let Some(old) = v.take() {
                self.pingpong_mem.sub(old.len());
            }
        }
        g.in_use = false;
        g.key = 0;
        self.free_slots.lock().push(slot);
    }

    /// Updates a record: writes application state **and** the current
    /// array, setting the dirty bit — IPP's double-write. Returns the old
    /// state for undo.
    pub fn write(&self, key: Key, value: &[u8]) -> Result<Option<Value>, StoreError> {
        let slot = self.slot_of(key).ok_or(StoreError::KeyNotFound(key))?;
        let cur = self.current_array();
        let mut g = self.slots[slot as usize].lock();
        if !g.in_use || g.key != key.0 {
            return Err(StoreError::KeyNotFound(key));
        }
        let undo = g.state.clone();
        let new_state = value.to_vec().into_boxed_slice();
        self.state_mem.add(new_state.len());
        if let Some(old) = g.state.replace(new_state) {
            self.state_mem.sub(old.len());
        }
        let copy = value.to_vec().into_boxed_slice();
        self.pingpong_mem.add(copy.len());
        if let Some(old) = g.pingpong[cur].replace(copy) {
            self.pingpong_mem.sub(old.len());
        }
        self.dirty[cur].set(slot as usize, true);
        Ok(undo)
    }

    /// Deletes a record: clears the application state and marks the
    /// current array with a `None` copy + dirty bit, so the deletion is
    /// propagated to the next checkpoint as a tombstone.
    pub fn delete(&self, key: Key) -> Result<Option<Value>, StoreError> {
        let slot = {
            let mut shard = self.shard_of(key).write();
            match shard.remove(&key.0) {
                Some(slot) => {
                    self.record_count.fetch_sub(1, Ordering::Relaxed);
                    slot
                }
                None => return Err(StoreError::KeyNotFound(key)),
            }
        };
        let cur = self.current_array();
        let mut g = self.slots[slot as usize].lock();
        let undo = g.state.clone();
        if let Some(old) = g.state.take() {
            self.state_mem.sub(old.len());
        }
        if let Some(old) = g.pingpong[cur].take() {
            self.pingpong_mem.sub(old.len());
        }
        self.dirty[cur].set(slot as usize, true);
        Ok(undo)
    }

    /// Flips the current array at a physical point of consistency (the
    /// caller must have quiesced). Returns the index of the **retired**
    /// array, whose dirty entries the background thread should process.
    pub fn flip_current(&self) -> usize {
        let old = self.current.fetch_xor(true, Ordering::AcqRel);
        old as usize
    }

    /// Dirty bit vector of the given array.
    pub fn dirty_bits(&self, array: usize) -> &AtomicBitVec {
        &self.dirty[array]
    }

    /// Consumes one retired dirty entry: returns `(key, Some(value))` for
    /// an update or `(key, None)` for a deletion as of the point of
    /// consistency, clears the dirty bit, merges into the snapshot (if
    /// enabled), and reclaims fully-dead slots. Returns `None` if the slot
    /// is not dirty in `retired` or is vacant.
    pub fn consume_retired(&self, slot: SlotId, retired: usize) -> Option<(Key, Option<Value>)> {
        if !self.dirty[retired].get(slot as usize) {
            return None;
        }
        let mut g = self.slots[slot as usize].lock();
        self.dirty[retired].set(slot as usize, false);
        if !g.in_use {
            return None;
        }
        let key = Key(g.key);
        let value = g.pingpong[retired].clone();
        // The retired copy has been consumed; release it (the paper keeps
        // the arrays pre-allocated, but releasing keeps byte accounting
        // honest for variable-length values — the *slot* stays).
        if let Some(old) = g.pingpong[retired].take() {
            self.pingpong_mem.sub(old.len());
        }
        if let Some(snapshot) = &self.snapshot {
            let mut snap = snapshot[slot as usize].lock();
            match &value {
                Some(v) => {
                    let entry = (key.0, v.clone());
                    self.snapshot_mem.add(v.len());
                    if let Some((_, old)) = snap.replace(entry) {
                        self.snapshot_mem.sub(old.len());
                    }
                }
                None => {
                    if let Some((_, old)) = snap.take() {
                        self.snapshot_mem.sub(old.len());
                    }
                }
            }
        }
        // Record deleted and both ping-pong copies drained → reclaim.
        if g.state.is_none() && g.pingpong.iter().all(|p| p.is_none()) {
            let other_dirty = self.dirty[1 - retired].get(slot as usize);
            if !other_dirty {
                g.in_use = false;
                g.key = 0;
                self.free_slots.lock().push(slot);
            }
        }
        Some((key, value))
    }

    /// Re-injects a point-of-consistency value consumed by a *failed*
    /// checkpoint capture into the **current** array, so the next capture
    /// covers it. Skipped when the slot was reclaimed/reused or when the
    /// current copy is already dirty — a post-flip write supersedes the
    /// failed capture's older value.
    pub fn restore_to_current(&self, slot: SlotId, key: Key, value: &Value) {
        let cur = self.current_array();
        let mut g = self.slots[slot as usize].lock();
        if !g.in_use || g.key != key.0 {
            return;
        }
        if self.dirty[cur].get(slot as usize) {
            return;
        }
        let copy = value.clone();
        self.pingpong_mem.add(copy.len());
        if let Some(old) = g.pingpong[cur].replace(copy) {
            self.pingpong_mem.sub(old.len());
        }
        self.dirty[cur].set(slot as usize, true);
    }

    /// Iterates the in-memory last consistent snapshot (full-IPP): every
    /// `(key, value)` in slot order. Panics if the store was built without
    /// a snapshot.
    pub fn snapshot_entries(&self) -> Vec<(Key, Value)> {
        let snapshot = self
            .snapshot
            .as_ref()
            .expect("snapshot_entries on a store built without snapshot");
        let mut out = Vec::new();
        for slot in 0..self.slot_high_water() {
            let g = snapshot[slot].lock();
            if let Some((k, v)) = g.as_ref() {
                out.push((Key(*k), v.clone()));
            }
        }
        out
    }

    /// Seeds the snapshot with the current application state — done once
    /// after initial load so the first checkpoint merge has a base.
    pub fn seed_snapshot(&self) {
        let snapshot = self
            .snapshot
            .as_ref()
            .expect("seed_snapshot on a store built without snapshot");
        for slot in 0..self.slot_high_water() {
            let g = self.slots[slot].lock();
            if g.in_use {
                if let Some(v) = &g.state {
                    let mut snap = snapshot[slot].lock();
                    self.snapshot_mem.add(v.len());
                    if let Some((_, old)) = snap.replace((g.key, v.clone())) {
                        self.snapshot_mem.sub(old.len());
                    }
                }
            }
        }
    }

    /// Memory report: state counts as live; ping-pong copies + snapshot as
    /// extra — the up-to-4× line of Figure 6.
    pub fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_bytes: self.state_mem.bytes(),
            live_count: self.state_mem.count(),
            extra_bytes: self.pingpong_mem.bytes() + self.snapshot_mem.bytes(),
            extra_count: self.pingpong_mem.count() + self.snapshot_mem.count(),
            overhead_bytes: self.dirty[0].heap_bytes() * 2,
        }
    }
}

impl std::fmt::Debug for TripleStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TripleStore(len={}, capacity={})", self.len(), self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(with_snapshot: bool) -> TripleStore {
        TripleStore::new(StoreConfig::for_records(256, 32), with_snapshot)
    }

    #[test]
    fn insert_get_write() {
        let s = store(false);
        s.insert(Key(1), b"v0").unwrap();
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"v0"[..]));
        let undo = s.write(Key(1), b"v1").unwrap();
        assert_eq!(undo.as_deref(), Some(&b"v0"[..]));
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"v1"[..]));
    }

    #[test]
    fn retired_array_holds_point_of_consistency_values() {
        let s = store(false);
        let slot = s.insert(Key(1), b"a").unwrap();
        s.write(Key(1), b"b").unwrap();
        // Physical point of consistency: flip. Writes so far are in the
        // retired array.
        let retired = s.flip_current();
        // Post-point writes land in the *new* current array.
        s.write(Key(1), b"c").unwrap();
        let (k, v) = s.consume_retired(slot, retired).unwrap();
        assert_eq!(k, Key(1));
        assert_eq!(v.as_deref(), Some(&b"b"[..]));
        // Reads still see the newest value.
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"c"[..]));
    }

    #[test]
    fn clean_records_are_not_in_retired_set() {
        let s = store(false);
        let slot = s.insert(Key(1), b"a").unwrap();
        let retired = s.flip_current();
        assert!(s.consume_retired(slot, retired).is_some(), "insert marked dirty");
        // Second cycle with no writes: nothing dirty.
        let retired = s.flip_current();
        assert!(s.consume_retired(slot, retired).is_none());
    }

    #[test]
    fn delete_propagates_tombstone() {
        let s = store(false);
        let slot = s.insert(Key(1), b"a").unwrap();
        let retired = s.flip_current();
        s.consume_retired(slot, retired);
        s.delete(Key(1)).unwrap();
        assert!(s.get(Key(1)).is_none());
        let retired = s.flip_current();
        let (k, v) = s.consume_retired(slot, retired).unwrap();
        assert_eq!(k, Key(1));
        assert!(v.is_none(), "tombstone");
    }

    #[test]
    fn snapshot_merge_produces_consistent_full_state() {
        let s = store(true);
        for k in 0..5u64 {
            s.insert(Key(k), format!("init-{k}").as_bytes()).unwrap();
        }
        s.seed_snapshot();
        // Period 0: update keys 1 and 3.
        s.write(Key(1), b"p0-1").unwrap();
        s.write(Key(3), b"p0-3").unwrap();
        let retired = s.flip_current();
        // Post-point write must not leak into this checkpoint.
        s.write(Key(1), b"p1-1").unwrap();
        for slot in 0..s.slot_high_water() {
            s.consume_retired(slot as SlotId, retired);
        }
        let snap: Vec<(u64, String)> = s
            .snapshot_entries()
            .into_iter()
            .map(|(k, v)| (k.0, String::from_utf8(v.to_vec()).unwrap()))
            .collect();
        assert_eq!(
            snap,
            vec![
                (0, "init-0".into()),
                (1, "p0-1".into()),
                (2, "init-2".into()),
                (3, "p0-3".into()),
                (4, "init-4".into()),
            ]
        );
    }

    #[test]
    fn memory_counts_all_copies() {
        let s = store(true);
        for k in 0..10u64 {
            s.insert(Key(k), &[0u8; 50]).unwrap();
        }
        s.seed_snapshot();
        let m = s.memory();
        assert_eq!(m.live_count, 10, "state copies");
        // 10 current-array copies + 10 snapshot copies.
        assert_eq!(m.extra_count, 20);
        // After a full cycle both ping-pong arrays have been populated once
        // and the retired one drained.
        let retired = s.flip_current();
        for k in 0..10u64 {
            s.write(Key(k), &[1u8; 50]).unwrap();
        }
        for slot in 0..s.slot_high_water() {
            s.consume_retired(slot as SlotId, retired);
        }
        let m = s.memory();
        assert_eq!(m.live_count, 10);
        // 10 new current copies + 10 snapshot copies (retired drained).
        assert_eq!(m.extra_count, 20);
    }
}
