//! Pre-allocated buffer pool for stable record versions.
//!
//! §5.1.6 of the paper: *"in order to avoid frequently allocating and
//! erasing stable records, our implementation pre-allocates a pool of space
//! for stable records, so that when a transaction needs to insert a stable
//! record, it simply allocates memory for the stable record from the pool
//! ... When transactions need to erase the stable record, they simply
//! release the space back into the pool."*
//!
//! Buffers have a fixed capacity (sized for the workload's common record
//! size); values that exceed it fall back to an exact heap allocation. The
//! pool tracks outstanding bytes/copies so Figure 6's CALC curve reflects
//! actual stable-version pressure, and it caps its retained free list so a
//! burst does not pin memory forever.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::queue::SegQueue;

use crate::mem::MemCounter;

/// A fixed-capacity, freelist-backed buffer pool.
///
/// The free list is a lock-free queue: during a CALC checkpoint window
/// every worker's first write of a record acquires a stable buffer and
/// the capture thread releases them, all concurrently — a mutex here
/// serializes the entire write path of the system.
pub struct BufferPool {
    buf_capacity: usize,
    max_retained: usize,
    free: SegQueue<Box<[u8]>>,
    retained: AtomicUsize,
    /// Outstanding (acquired, not yet released) values.
    outstanding: MemCounter,
}

/// A value held in a pool buffer: the buffer may be larger than the value,
/// so the logical length is tracked separately.
pub struct PoolValue {
    buf: Box<[u8]>,
    len: usize,
    pooled: bool,
}

impl PoolValue {
    /// The value bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// Logical length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for PoolValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolValue(len={}, pooled={})", self.len, self.pooled)
    }
}

impl BufferPool {
    /// Creates a pool of buffers of `buf_capacity` bytes each, with
    /// `prealloc` buffers allocated eagerly and at most
    /// `max(prealloc, 1024)` retained on the free list.
    pub fn new(buf_capacity: usize, prealloc: usize) -> Self {
        let free = SegQueue::new();
        for _ in 0..prealloc {
            free.push(vec![0u8; buf_capacity].into_boxed_slice());
        }
        BufferPool {
            buf_capacity,
            max_retained: prealloc.max(1024),
            free,
            retained: AtomicUsize::new(prealloc),
            outstanding: MemCounter::new(),
        }
    }

    /// Copies `data` into a pooled buffer (or an exact allocation if it
    /// does not fit) and returns the handle.
    pub fn acquire(&self, data: &[u8]) -> PoolValue {
        self.outstanding.add(data.len());
        if data.len() <= self.buf_capacity {
            let mut buf = match self.free.pop() {
                Some(b) => {
                    self.retained.fetch_sub(1, Ordering::Relaxed);
                    b
                }
                None => vec![0u8; self.buf_capacity].into_boxed_slice(),
            };
            buf[..data.len()].copy_from_slice(data);
            PoolValue {
                buf,
                len: data.len(),
                pooled: true,
            }
        } else {
            PoolValue {
                buf: data.to_vec().into_boxed_slice(),
                len: data.len(),
                pooled: false,
            }
        }
    }

    /// Returns a value's buffer to the pool.
    pub fn release(&self, v: PoolValue) {
        self.outstanding.sub(v.len);
        if v.pooled && self.retained.load(Ordering::Relaxed) < self.max_retained {
            self.retained.fetch_add(1, Ordering::Relaxed);
            self.free.push(v.buf);
        }
    }

    /// Bytes currently held in acquired (outstanding) values.
    pub fn outstanding_bytes(&self) -> usize {
        self.outstanding.bytes()
    }

    /// Number of currently acquired values.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.count()
    }

    /// Number of buffers idle on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Per-buffer capacity.
    pub fn buf_capacity(&self) -> usize {
        self.buf_capacity
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BufferPool(cap={}, outstanding={}, free={})",
            self.buf_capacity,
            self.outstanding.count(),
            self.free_buffers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let pool = BufferPool::new(128, 4);
        assert_eq!(pool.free_buffers(), 4);
        let v = pool.acquire(b"hello");
        assert_eq!(v.as_slice(), b"hello");
        assert_eq!(v.len(), 5);
        assert_eq!(pool.outstanding_count(), 1);
        assert_eq!(pool.outstanding_bytes(), 5);
        assert_eq!(pool.free_buffers(), 3);
        pool.release(v);
        assert_eq!(pool.outstanding_count(), 0);
        assert_eq!(pool.free_buffers(), 4, "buffer returned to pool");
    }

    #[test]
    fn oversized_values_fall_back_to_exact_alloc() {
        let pool = BufferPool::new(8, 2);
        let big = vec![7u8; 100];
        let v = pool.acquire(&big);
        assert_eq!(v.as_slice(), &big[..]);
        assert!(!v.pooled);
        assert_eq!(pool.free_buffers(), 2, "pool untouched");
        pool.release(v);
        assert_eq!(pool.free_buffers(), 2, "oversized buffer not retained");
        assert_eq!(pool.outstanding_bytes(), 0);
    }

    #[test]
    fn pool_grows_on_demand() {
        let pool = BufferPool::new(16, 0);
        let a = pool.acquire(b"a");
        let b = pool.acquire(b"b");
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn reuse_does_not_leak_previous_contents() {
        let pool = BufferPool::new(16, 1);
        let v = pool.acquire(b"secret-data!");
        pool.release(v);
        let v2 = pool.acquire(b"x");
        assert_eq!(v2.as_slice(), b"x");
    }

    #[test]
    fn empty_value() {
        let pool = BufferPool::new(16, 0);
        let v = pool.acquire(b"");
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), b"");
        pool.release(v);
    }

    #[test]
    fn concurrent_acquire_release() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new(64, 8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let data = (t as u64 * 1000 + i).to_le_bytes();
                        let v = pool.acquire(&data);
                        assert_eq!(v.as_slice(), &data);
                        pool.release(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.outstanding_count(), 0);
        assert_eq!(pool.outstanding_bytes(), 0);
    }
}
