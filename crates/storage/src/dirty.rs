//! Dirty-key tracking for partial checkpoints (§2.3).
//!
//! pCALC (and the partial variants of every baseline) must know which
//! records *may* have changed since the most recent checkpoint. The paper
//! evaluates three data structures — a hash table, a bit vector, and a
//! bloom filter — and settles on the bit vector ("the additional work
//! required by the other approaches was slightly more costly than the
//! performance savings from improved cache locality"). All three are
//! implemented here behind [`DirtyTracker`] so the `dirty_trackers` bench
//! can reproduce that ablation; production code uses [`BitVecTracker`].
//!
//! Every tracker keeps **two buffers** so the retired one can be cleared
//! during the checkpoint period, off the critical path, with no blocking
//! synchronization (§2.3: "atomically cleared ... by keeping two copies of
//! the structure, and flipping a bit specifying which is active"). Rather
//! than an *active-side flag* — which would race against the flip at the
//! resolve transition — buffers are addressed by **checkpoint interval
//! number** (`interval & 1`): the commit hook derives the interval from the
//! transaction's atomically-recorded commit stamp (`PhaseStamp::
//! checkpoint_interval`), so a commit that lands just before the virtual
//! point of consistency always marks the checkpoint being captured, and one
//! just after always marks the next, regardless of scheduling.

use std::collections::HashSet;

use parking_lot::Mutex;

use calc_common::bitvec::AtomicBitVec;
use calc_common::bloom::BloomFilter;

use crate::SlotId;

/// A double-buffered tracker of possibly-modified slots, addressed by
/// checkpoint interval. Intervals `i` and `i + 2` share a buffer, so buffer
/// `i & 1` must be cleared (via [`DirtyTracker::clear`]) after checkpoint
/// `i` is captured and before interval `i + 2` begins — pCALC does this
/// during the following checkpoint period.
pub trait DirtyTracker: Send + Sync {
    /// Marks `slot` as modified within `interval`.
    fn mark(&self, slot: SlotId, interval: u64);

    /// Whether `slot` is marked in `interval` (false positives allowed for
    /// the bloom variant; false negatives never).
    fn is_dirty(&self, slot: SlotId, interval: u64) -> bool;

    /// Snapshot of `interval`'s dirty slot ids below `slot_limit` (the
    /// store's high-water mark), sorted ascending.
    fn dirty_slots(&self, interval: u64, slot_limit: usize) -> Vec<SlotId>;

    /// Clears `interval`'s buffer for reuse by `interval + 2`.
    fn clear(&self, interval: u64);

    /// Approximate heap footprint in bytes (for the ablation bench).
    fn heap_bytes(&self) -> usize;
}

/// The paper's chosen design: one bit per record slot, two copies.
pub struct BitVecTracker {
    bufs: [AtomicBitVec; 2],
}

impl BitVecTracker {
    /// Creates a tracker covering `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        BitVecTracker {
            bufs: [AtomicBitVec::new(capacity), AtomicBitVec::new(capacity)],
        }
    }
}

impl DirtyTracker for BitVecTracker {
    fn mark(&self, slot: SlotId, interval: u64) {
        self.bufs[(interval & 1) as usize].set(slot as usize, true);
    }

    fn is_dirty(&self, slot: SlotId, interval: u64) -> bool {
        self.bufs[(interval & 1) as usize].get(slot as usize)
    }

    fn dirty_slots(&self, interval: u64, slot_limit: usize) -> Vec<SlotId> {
        self.bufs[(interval & 1) as usize]
            .iter_ones()
            .take_while(|&s| s < slot_limit)
            .map(|s| s as SlotId)
            .collect()
    }

    fn clear(&self, interval: u64) {
        self.bufs[(interval & 1) as usize].clear_all();
    }

    fn heap_bytes(&self) -> usize {
        self.bufs[0].heap_bytes() * 2
    }
}

/// The hash-table alternative: exact, no space for untouched records, but
/// every mark takes a lock + hash insert.
pub struct HashSetTracker {
    bufs: [Mutex<HashSet<SlotId>>; 2],
}

impl HashSetTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        HashSetTracker {
            bufs: [Mutex::new(HashSet::new()), Mutex::new(HashSet::new())],
        }
    }
}

impl Default for HashSetTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl DirtyTracker for HashSetTracker {
    fn mark(&self, slot: SlotId, interval: u64) {
        self.bufs[(interval & 1) as usize].lock().insert(slot);
    }

    fn is_dirty(&self, slot: SlotId, interval: u64) -> bool {
        self.bufs[(interval & 1) as usize].lock().contains(&slot)
    }

    fn dirty_slots(&self, interval: u64, slot_limit: usize) -> Vec<SlotId> {
        let mut v: Vec<SlotId> = self.bufs[(interval & 1) as usize]
            .lock()
            .iter()
            .copied()
            .filter(|&s| (s as usize) < slot_limit)
            .collect();
        v.sort_unstable();
        v
    }

    fn clear(&self, interval: u64) {
        self.bufs[(interval & 1) as usize].lock().clear();
    }

    fn heap_bytes(&self) -> usize {
        self.bufs
            .iter()
            .map(|b| b.lock().capacity() * std::mem::size_of::<SlotId>() * 2)
            .sum()
    }
}

/// The bloom-filter alternative: smaller than the bit vector when the dirty
/// set is sparse, at the cost of false positives (unchanged records that
/// get needlessly re-checkpointed). Because membership iteration is not
/// possible, `dirty_slots` probes every slot id — the extra work the paper
/// cites against this design.
pub struct BloomTracker {
    bufs: [BloomFilter; 2],
}

impl BloomTracker {
    /// Creates a tracker expecting roughly `expected_dirty` dirty slots per
    /// checkpoint interval.
    pub fn new(expected_dirty: usize) -> Self {
        BloomTracker {
            bufs: [
                BloomFilter::new(expected_dirty, 10),
                BloomFilter::new(expected_dirty, 10),
            ],
        }
    }
}

impl DirtyTracker for BloomTracker {
    fn mark(&self, slot: SlotId, interval: u64) {
        self.bufs[(interval & 1) as usize].insert(slot as u64);
    }

    fn is_dirty(&self, slot: SlotId, interval: u64) -> bool {
        self.bufs[(interval & 1) as usize].may_contain(slot as u64)
    }

    fn dirty_slots(&self, interval: u64, slot_limit: usize) -> Vec<SlotId> {
        let buf = &self.bufs[(interval & 1) as usize];
        (0..slot_limit as SlotId)
            .filter(|&s| buf.may_contain(s as u64))
            .collect()
    }

    fn clear(&self, interval: u64) {
        self.bufs[(interval & 1) as usize].clear();
    }

    fn heap_bytes(&self) -> usize {
        self.bufs.iter().map(|b| b.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(t: &dyn DirtyTracker) {
        // Pre-point commits mark interval 0; post-point commits interval 1.
        t.mark(3, 0);
        t.mark(7, 0);
        t.mark(9, 1);
        assert!(t.is_dirty(3, 0));
        assert!(t.is_dirty(7, 0));
        assert!(!t.is_dirty(9, 0));
        assert!(t.is_dirty(9, 1));
        assert_eq!(t.dirty_slots(0, 100), vec![3, 7]);
        assert_eq!(t.dirty_slots(1, 100), vec![9]);

        // After capturing checkpoint 0, its buffer is cleared for
        // interval 2.
        t.clear(0);
        assert!(!t.is_dirty(3, 0));
        assert!(t.dirty_slots(2, 100).is_empty());
        t.mark(11, 2);
        assert!(t.is_dirty(11, 2));
        // Interval 1's buffer was untouched by the clear.
        assert!(t.is_dirty(9, 1));
    }

    #[test]
    fn bitvec_tracker_lifecycle() {
        exercise(&BitVecTracker::new(128));
    }

    #[test]
    fn hashset_tracker_lifecycle() {
        exercise(&HashSetTracker::new());
    }

    #[test]
    fn bloom_tracker_lifecycle() {
        exercise(&BloomTracker::new(64));
    }

    #[test]
    fn intervals_two_apart_share_a_buffer() {
        let t = BitVecTracker::new(16);
        t.mark(5, 0);
        assert!(t.is_dirty(5, 2), "interval 0 and 2 share buffer 0");
        assert!(!t.is_dirty(5, 1));
    }

    #[test]
    fn dirty_slots_respects_limit() {
        let t = BitVecTracker::new(128);
        t.mark(5, 0);
        t.mark(90, 0);
        assert_eq!(t.dirty_slots(0, 50), vec![5]);
    }

    #[test]
    fn bloom_never_misses() {
        let t = BloomTracker::new(1000);
        for s in (0..1000).step_by(3) {
            t.mark(s, 4);
        }
        for s in (0..1000).step_by(3) {
            assert!(t.is_dirty(s, 4));
        }
        let listed = t.dirty_slots(4, 1000);
        for s in (0..1000).step_by(3) {
            assert!(listed.contains(&s));
        }
    }

    #[test]
    fn concurrent_marks_from_many_threads() {
        use std::sync::Arc;
        let t = Arc::new(BitVecTracker::new(100_000));
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for s in (i * 10_000)..(i * 10_000 + 10_000) {
                        t.mark(s, (i % 2) as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            t.dirty_slots(0, 100_000).len() + t.dirty_slots(1, 100_000).len(),
            80_000
        );
    }
}
