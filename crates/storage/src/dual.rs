//! The dual-version record store used by CALC and pCALC (§2.2).
//!
//! Each record key is associated with **two record versions — one live and
//! one stable** — plus one bit in the `stable_status` vector. Initially the
//! stable version is empty; the first post-point-of-consistency write
//! copies live→stable so the background capture thread can still read the
//! value as of the virtual point of consistency.
//!
//! Physical layout: a sharded hash map resolves keys to dense *slot*
//! indices; slot data (live + stable versions) lives in a pre-sized arena
//! with one `parking_lot::Mutex` per slot. Dense slot indices are what make
//! the paper's per-record bit vectors (`stable_status`, dirty vectors,
//! add/delete status) meaningful on top of a hash-table keyspace. The
//! paper's add/delete bit vectors are represented structurally here: a slot
//! with `live=None, stable=Some` is a record deleted after the point of
//! consistency; `live=Some, stable=None` with an *available* status bit is
//! a record inserted after it.
//!
//! The Naive and Fuzzy baselines reuse this store, touching only the live
//! version.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::{Mutex, MutexGuard, RwLock};

use calc_common::bitvec::PolarityBitVec;
use calc_common::types::{Key, Value};

use crate::mem::{MemCounter, MemoryStats};
use crate::pool::{BufferPool, PoolValue};
use crate::SlotId;

/// Sizing parameters for a store.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Maximum number of records (slot arena size; bit vectors are sized to
    /// this). Pre-sized like the paper's implementation.
    pub capacity: usize,
    /// Number of hash shards (rounded up to a power of two).
    pub shards: usize,
    /// Buffer size of the stable-version pool (≥ common record size).
    pub pool_buf_capacity: usize,
    /// Buffers pre-allocated in the stable-version pool.
    pub pool_prealloc: usize,
}

impl StoreConfig {
    /// A config sized for `capacity` records of roughly `record_size`
    /// bytes.
    pub fn for_records(capacity: usize, record_size: usize) -> Self {
        StoreConfig {
            capacity,
            shards: 64,
            pool_buf_capacity: record_size.max(16),
            pool_prealloc: (capacity / 64).clamp(16, 65_536),
        }
    }
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig::for_records(1 << 16, 128)
    }
}

/// Errors from store mutation.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The slot arena is full; the store was created too small.
    CapacityExceeded,
    /// `insert` on a key that already exists.
    DuplicateKey(Key),
    /// Mutation of a key that does not exist.
    KeyNotFound(Key),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::CapacityExceeded => write!(f, "store capacity exceeded"),
            StoreError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            StoreError::KeyNotFound(k) => write!(f, "key not found: {k}"),
        }
    }
}

impl std::error::Error for StoreError {}

struct SlotInner {
    key: u64,
    in_use: bool,
    live: Option<Value>,
    stable: Option<PoolValue>,
}

const EMPTY_SLOT: SlotInner = SlotInner {
    key: 0,
    in_use: false,
    live: None,
    stable: None,
};

/// The dual-version store. See module docs.
pub struct DualVersionStore {
    shards: Box<[RwLock<HashMap<u64, SlotId>>]>,
    shard_mask: usize,
    slots: Box<[Mutex<SlotInner>]>,
    high_water: AtomicUsize,
    free_slots: Mutex<Vec<SlotId>>,
    stable_status: PolarityBitVec,
    pool: BufferPool,
    live_mem: MemCounter,
    record_count: AtomicUsize,
}

impl DualVersionStore {
    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> Self {
        let n_shards = config.shards.max(1).next_power_of_two();
        DualVersionStore {
            shards: (0..n_shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            shard_mask: n_shards - 1,
            slots: (0..config.capacity).map(|_| Mutex::new(EMPTY_SLOT)).collect(),
            high_water: AtomicUsize::new(0),
            free_slots: Mutex::new(Vec::new()),
            stable_status: PolarityBitVec::new(config.capacity),
            pool: BufferPool::new(config.pool_buf_capacity, config.pool_prealloc),
            live_mem: MemCounter::new(),
            record_count: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> &RwLock<HashMap<u64, SlotId>> {
        // splitmix-style mix so sequential keys spread across shards.
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        &self.shards[h as usize & self.shard_mask]
    }

    /// Maximum record count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current record count (linked keys).
    pub fn len(&self) -> usize {
        self.record_count.load(Ordering::Relaxed)
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest slot index ever allocated; scans cover `0..slot_high_water()`.
    pub fn slot_high_water(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }

    /// The `stable_status` polarity bit vector (§2.2 / §2.2.5).
    pub fn stable_status(&self) -> &PolarityBitVec {
        &self.stable_status
    }

    /// Resolves a key to its slot, if linked.
    pub fn slot_of(&self, key: Key) -> Option<SlotId> {
        self.shard_of(key).read().get(&key.0).copied()
    }

    /// Reads the live version of `key`.
    pub fn get(&self, key: Key) -> Option<Value> {
        loop {
            let slot = self.slot_of(key)?;
            let g = self.slots[slot as usize].lock();
            if g.in_use && g.key == key.0 {
                #[cfg(feature = "mutation-hooks")]
                if calc_common::mutation::armed(
                    calc_common::mutation::Mutation::StaleStableRead,
                ) {
                    // Seeded bug: prefer the stable (checkpoint pre-image)
                    // version when one exists — readers see stale values
                    // for the duration of a checkpoint window.
                    if let Some(stable) = g.stable.as_ref() {
                        return Some(stable.as_slice().into());
                    }
                }
                return g.live.as_ref().cloned();
            }
            // The slot was freed and reused between lookup and lock — the
            // map no longer points here; retry the lookup.
        }
    }

    fn alloc_slot(&self) -> Result<SlotId, StoreError> {
        if let Some(s) = self.free_slots.lock().pop() {
            return Ok(s);
        }
        let idx = self.high_water.fetch_add(1, Ordering::AcqRel);
        if idx >= self.slots.len() {
            self.high_water.fetch_sub(1, Ordering::AcqRel);
            return Err(StoreError::CapacityExceeded);
        }
        Ok(idx as SlotId)
    }

    /// Inserts a new record, returning its slot. Fails on duplicates.
    /// The slot's `stable_status` bit is left **unmarked** — appropriate
    /// outside a checkpoint window; use
    /// [`DualVersionStore::insert_with_status`] during one.
    pub fn insert(&self, key: Key, value: &[u8]) -> Result<SlotId, StoreError> {
        self.insert_with_status(key, value, false)
    }

    /// Inserts a new record, initializing its `stable_status` bit to
    /// `marked` **while holding the slot mutex**. Explicit initialization
    /// at insert is what keeps bit hygiene across slot reuse: a freed
    /// slot's stale bit (left over from a previous record's checkpoint
    /// cycle) must never leak into the new record's protocol state.
    /// Records inserted after the virtual point of consistency pass
    /// `marked = true` so the capture scan skips them (§2.2's add-status
    /// handling).
    pub fn insert_with_status(
        &self,
        key: Key,
        value: &[u8],
        marked: bool,
    ) -> Result<SlotId, StoreError> {
        // Reserve the map entry first so concurrent inserts of the same key
        // cannot double-allocate (transaction locks normally prevent this,
        // but the store stays safe without them).
        {
            let shard = self.shard_of(key).read();
            if shard.contains_key(&key.0) {
                return Err(StoreError::DuplicateKey(key));
            }
        }
        let slot = self.alloc_slot()?;
        {
            let mut g = self.slots[slot as usize].lock();
            debug_assert!(!g.in_use, "allocated slot still in use");
            g.key = key.0;
            g.in_use = true;
            g.live = Some(value.to_vec().into_boxed_slice());
            debug_assert!(g.stable.is_none());
            if marked {
                self.stable_status.mark(slot as usize);
            } else {
                self.stable_status.unmark(slot as usize);
            }
        }
        self.live_mem.add(value.len());
        {
            let mut shard = self.shard_of(key).write();
            if let Some(theirs) = shard.insert(key.0, slot) {
                // Lost a race with a concurrent insert of the same key
                // (callers normally prevent this with transaction locks).
                // Restore their mapping and roll back our slot.
                shard.insert(key.0, theirs);
                drop(shard);
                let mut g = self.lock_slot(slot);
                g.clear_live();
                g.release_if_vacant();
                return Err(StoreError::DuplicateKey(key));
            }
        }
        self.record_count.fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }

    /// Removes the key→slot mapping so no new transaction can reach the
    /// slot. The slot itself lives on until [`DualSlotGuard::release_if_vacant`]
    /// reclaims it (a post-point-of-consistency delete must keep its stable
    /// version around for the capture thread).
    pub fn unlink(&self, key: Key) -> Result<SlotId, StoreError> {
        let mut shard = self.shard_of(key).write();
        match shard.remove(&key.0) {
            Some(slot) => {
                self.record_count.fetch_sub(1, Ordering::Relaxed);
                Ok(slot)
            }
            None => Err(StoreError::KeyNotFound(key)),
        }
    }

    /// Restores a key→slot mapping removed by [`DualVersionStore::unlink`]
    /// — used when rolling back an aborted delete. The caller must hold
    /// the record's logical lock and the slot must still carry the key.
    pub fn relink(&self, key: Key, slot: SlotId) {
        let mut shard = self.shard_of(key).write();
        let prev = shard.insert(key.0, slot);
        debug_assert!(prev.is_none(), "relink over an existing mapping");
        drop(shard);
        self.record_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolves `key` and locks its slot, retrying if the slot is freed
    /// and reused between lookup and lock. Returns `None` if the key is
    /// not linked.
    pub fn locked_slot_of(&self, key: Key) -> Option<DualSlotGuard<'_>> {
        loop {
            let slot = self.slot_of(key)?;
            let g = self.lock_slot(slot);
            if g.in_use() && g.key() == key {
                return Some(g);
            }
        }
    }

    /// Locks a slot for version manipulation.
    pub fn lock_slot(&self, slot: SlotId) -> DualSlotGuard<'_> {
        DualSlotGuard {
            store: self,
            slot,
            inner: self.slots[slot as usize].lock(),
        }
    }

    /// Iterates every allocated slot index (including currently-vacant
    /// ones — callers check [`DualSlotGuard::in_use`]).
    pub fn slot_ids(&self) -> impl Iterator<Item = SlotId> {
        0..self.slot_high_water() as SlotId
    }

    /// Collects all `(key, live)` pairs — test/diagnostic helper; not used
    /// on hot paths.
    pub fn dump_live(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::with_capacity(self.len());
        for slot in self.slot_ids() {
            let g = self.lock_slot(slot);
            if g.in_use() {
                if let Some(v) = g.live() {
                    out.push((g.key(), v.to_vec().into_boxed_slice()));
                }
            }
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Memory report for Figure 6.
    pub fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_bytes: self.live_mem.bytes(),
            live_count: self.live_mem.count(),
            extra_bytes: self.pool.outstanding_bytes(),
            extra_count: self.pool.outstanding_count(),
            overhead_bytes: self.stable_status.heap_bytes(),
        }
    }

    /// The stable-version buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

impl std::fmt::Debug for DualVersionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DualVersionStore(len={}, capacity={}, stables={})",
            self.len(),
            self.capacity(),
            self.pool.outstanding_count()
        )
    }
}

/// Exclusive access to one slot's live/stable versions. All mutation keeps
/// the store's memory counters exact.
pub struct DualSlotGuard<'a> {
    store: &'a DualVersionStore,
    slot: SlotId,
    inner: MutexGuard<'a, SlotInner>,
}

impl<'a> DualSlotGuard<'a> {
    /// Slot index.
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// Whether the slot currently holds a record.
    pub fn in_use(&self) -> bool {
        self.inner.in_use
    }

    /// The record's key. Meaningless if `!in_use()`.
    pub fn key(&self) -> Key {
        Key(self.inner.key)
    }

    /// The live version.
    pub fn live(&self) -> Option<&[u8]> {
        self.inner.live.as_deref()
    }

    /// The stable version.
    pub fn stable(&self) -> Option<&[u8]> {
        self.inner.stable.as_ref().map(|p| p.as_slice())
    }

    /// Whether a stable version exists.
    pub fn has_stable(&self) -> bool {
        self.inner.stable.is_some()
    }

    /// Overwrites the live version, returning the previous one (for
    /// transaction undo).
    pub fn set_live(&mut self, value: &[u8]) -> Option<Value> {
        let new = value.to_vec().into_boxed_slice();
        self.store.live_mem.add(new.len());
        let old = self.inner.live.replace(new);
        if let Some(ref o) = old {
            self.store.live_mem.sub(o.len());
        }
        old
    }

    /// Removes the live version (logical delete), returning it.
    pub fn clear_live(&mut self) -> Option<Value> {
        let old = self.inner.live.take();
        if let Some(ref o) = old {
            self.store.live_mem.sub(o.len());
        }
        old
    }

    /// Copies the live version into the stable version (pool-allocated).
    /// No-op if there is no live version or a stable version already
    /// exists — ApplyWrite only ever creates the *first* stable copy.
    pub fn copy_live_to_stable(&mut self) {
        if self.inner.stable.is_some() {
            return;
        }
        calc_common::perturb::point(calc_common::perturb::Site::StableInstall);
        if let Some(ref live) = self.inner.live {
            self.inner.stable = Some(self.store.pool.acquire(live));
        }
    }

    /// Erases the stable version, returning its buffer to the pool.
    pub fn erase_stable(&mut self) {
        if let Some(s) = self.inner.stable.take() {
            self.store.pool.release(s);
        }
    }

    /// If the slot holds neither a live nor a stable version, unlinks it
    /// from the arena (the caller must already have removed the key→slot
    /// mapping via [`DualVersionStore::unlink`]) and returns it to the free
    /// list. Returns whether the slot was reclaimed.
    pub fn release_if_vacant(mut self) -> bool {
        if self.inner.live.is_none() && self.inner.stable.is_none() && self.inner.in_use {
            self.inner.in_use = false;
            self.inner.key = 0;
            let slot = self.slot;
            // Push to the free list while still holding the slot mutex; an
            // allocator that pops it will block on the mutex until we drop.
            self.store.free_slots.lock().push(slot);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DualVersionStore {
        DualVersionStore::new(StoreConfig::for_records(1024, 64))
    }

    #[test]
    fn insert_get_roundtrip() {
        let s = store();
        let slot = s.insert(Key(1), b"alpha").unwrap();
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(s.slot_of(Key(1)), Some(slot));
        assert_eq!(s.len(), 1);
        assert!(s.get(Key(2)).is_none());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let s = store();
        s.insert(Key(1), b"a").unwrap();
        assert_eq!(s.insert(Key(1), b"b"), Err(StoreError::DuplicateKey(Key(1))));
    }

    #[test]
    fn capacity_enforced() {
        let s = DualVersionStore::new(StoreConfig {
            capacity: 2,
            shards: 1,
            pool_buf_capacity: 16,
            pool_prealloc: 0,
        });
        s.insert(Key(1), b"a").unwrap();
        s.insert(Key(2), b"b").unwrap();
        assert_eq!(s.insert(Key(3), b"c"), Err(StoreError::CapacityExceeded));
    }

    #[test]
    fn set_live_returns_old_value_for_undo() {
        let s = store();
        let slot = s.insert(Key(5), b"v1").unwrap();
        let mut g = s.lock_slot(slot);
        let old = g.set_live(b"v2");
        assert_eq!(old.as_deref(), Some(&b"v1"[..]));
        assert_eq!(g.live(), Some(&b"v2"[..]));
    }

    #[test]
    fn stable_version_lifecycle() {
        let s = store();
        let slot = s.insert(Key(9), b"point-value").unwrap();
        {
            let mut g = s.lock_slot(slot);
            assert!(!g.has_stable());
            g.copy_live_to_stable();
            assert_eq!(g.stable(), Some(&b"point-value"[..]));
            // Subsequent writes must not clobber the first stable copy.
            g.set_live(b"newer");
            g.copy_live_to_stable();
            assert_eq!(g.stable(), Some(&b"point-value"[..]));
            g.erase_stable();
            assert!(!g.has_stable());
        }
        assert_eq!(s.pool().outstanding_count(), 0);
    }

    #[test]
    fn delete_then_reclaim_slot() {
        let s = store();
        let slot = s.insert(Key(7), b"x").unwrap();
        s.unlink(Key(7)).unwrap();
        assert!(s.get(Key(7)).is_none());
        assert_eq!(s.len(), 0);
        {
            let mut g = s.lock_slot(slot);
            g.clear_live();
            assert!(g.release_if_vacant());
        }
        // The freed slot is reused before the arena grows.
        let slot2 = s.insert(Key(8), b"y").unwrap();
        assert_eq!(slot2, slot);
        assert_eq!(s.slot_high_water(), 1);
    }

    #[test]
    fn slot_with_stable_version_is_not_reclaimed() {
        let s = store();
        let slot = s.insert(Key(7), b"x").unwrap();
        {
            let mut g = s.lock_slot(slot);
            g.copy_live_to_stable();
            g.clear_live();
            assert!(!g.release_if_vacant());
        }
        // Still holds the stable version for the capture thread.
        let g = s.lock_slot(slot);
        assert_eq!(g.stable(), Some(&b"x"[..]));
    }

    #[test]
    fn memory_accounting_tracks_live_and_stable() {
        let s = store();
        s.insert(Key(1), b"aaaa").unwrap();
        s.insert(Key(2), b"bbbbbb").unwrap();
        let m = s.memory();
        assert_eq!(m.live_count, 2);
        assert_eq!(m.live_bytes, 10);
        assert_eq!(m.extra_count, 0);

        let slot = s.slot_of(Key(1)).unwrap();
        {
            let mut g = s.lock_slot(slot);
            g.copy_live_to_stable();
        }
        let m = s.memory();
        assert_eq!(m.extra_count, 1);
        assert_eq!(m.extra_bytes, 4);

        {
            let mut g = s.lock_slot(slot);
            g.erase_stable();
        }
        assert_eq!(s.memory().extra_count, 0);
    }

    #[test]
    fn dump_live_sorted() {
        let s = store();
        for k in [3u64, 1, 2] {
            s.insert(Key(k), &k.to_le_bytes()).unwrap();
        }
        let dump = s.dump_live();
        let keys: Vec<u64> = dump.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn insert_with_status_initializes_bit_under_slot_mutex() {
        let s = store();
        let marked = s.insert_with_status(Key(1), b"post-point", true).unwrap();
        assert!(s.stable_status().is_marked(marked as usize));
        let unmarked = s.insert_with_status(Key(2), b"normal", false).unwrap();
        assert!(!s.stable_status().is_marked(unmarked as usize));

        // Bit hygiene across slot reuse: free slot 1 with its bit marked,
        // reuse it for a rest-phase insert — the stale bit must be reset.
        s.unlink(Key(1)).unwrap();
        {
            let mut g = s.lock_slot(marked);
            g.clear_live();
            assert!(g.release_if_vacant());
        }
        let reused = s.insert(Key(3), b"fresh").unwrap();
        assert_eq!(reused, marked, "slot reused");
        assert!(
            !s.stable_status().is_marked(reused as usize),
            "stale available bit leaked across reuse"
        );
    }

    #[test]
    fn relink_restores_mapping_after_aborted_delete() {
        let s = store();
        let slot = s.insert(Key(9), b"keep").unwrap();
        s.unlink(Key(9)).unwrap();
        assert!(s.get(Key(9)).is_none());
        assert_eq!(s.len(), 0);
        s.relink(Key(9), slot);
        assert_eq!(s.get(Key(9)).as_deref(), Some(&b"keep"[..]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.slot_of(Key(9)), Some(slot));
    }

    #[test]
    fn locked_slot_of_verifies_key_identity() {
        let s = store();
        s.insert(Key(5), b"five").unwrap();
        let g = s.locked_slot_of(Key(5)).unwrap();
        assert_eq!(g.key(), Key(5));
        assert_eq!(g.live(), Some(&b"five"[..]));
        drop(g);
        assert!(s.locked_slot_of(Key(6)).is_none());
    }

    #[test]
    fn concurrent_disjoint_inserts_and_reads() {
        use std::sync::Arc;
        let s = Arc::new(DualVersionStore::new(StoreConfig::for_records(8192, 64)));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = Key(t * 1000 + i);
                        s.insert(k, &k.0.to_le_bytes()).unwrap();
                        assert_eq!(s.get(k).as_deref(), Some(&k.0.to_le_bytes()[..]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 4000);
        let m = s.memory();
        assert_eq!(m.live_count, 4000);
        assert_eq!(m.live_bytes, 4000 * 8);
    }
}
