//! Storage engines for the CALC checkpointing database.
//!
//! The paper's evaluation system is a memory-resident key-value store. Each
//! checkpointing strategy imposes its own physical record layout, so this
//! crate provides one store per layout plus the shared machinery:
//!
//! * [`dual`] — the **dual-version store** used by CALC/pCALC (one live
//!   version, one optional stable version per record, plus the
//!   polarity-swapping `stable_status` bit vector of §2.2) and by the Naive
//!   and Fuzzy baselines (which only use the live version).
//! * [`triple`] — the **triple-copy store** used by Interleaved Ping-Pong
//!   (application state + `odd` + `even` arrays with per-copy dirty bits,
//!   stored contiguously per record for cache locality, §4.1.3), plus the
//!   in-memory "last consistent snapshot" that full-IPP merges into (the
//!   4th copy of Figure 6).
//! * [`zigzag`] — the **dual-copy store** used by Zig-Zag (`AS[k]0/1` plus
//!   the `MR`/`MW` bit vectors, §4.1.4).
//! * [`pool`] — the pre-allocated buffer pool for stable record versions
//!   (§5.1.6: avoids alloc/free churn during checkpoint periods).
//! * [`dirty`] — the three dirty-key tracker designs evaluated in §2.3
//!   (bit vector, hash set, bloom filter), double-buffered so the inactive
//!   side can be cleared off the critical path.
//! * [`mem`] — atomic memory accounting, feeding Figure 6.
//!
//! Synchronization model: each record slot's version data sits behind its
//! own `parking_lot::Mutex` (1 byte of overhead). The checkpointer thread
//! accesses slots without acquiring *logical* (transaction) locks — that
//! asynchrony is the point of the paper — and the per-slot mutex makes the
//! paper's benign races sound in Rust. Critical sections are a few dozen
//! instructions. Every strategy pays the identical cost, so the *relative*
//! overheads the paper measures are preserved.

#![warn(missing_docs)]

pub mod dirty;
pub mod dual;
pub mod mem;
pub mod pool;
pub mod triple;
pub mod zigzag;

pub use dirty::{BitVecTracker, BloomTracker, DirtyTracker, HashSetTracker};
pub use dual::{DualSlotGuard, DualVersionStore, StoreConfig};
pub use mem::MemoryStats;
pub use pool::BufferPool;
pub use triple::TripleStore;
pub use zigzag::ZigzagStore;

/// Index of a record slot within a store. Slot indices are dense (0..capacity),
/// which is what lets the per-record bit vectors of the paper work on top of
/// a hash-table keyspace.
pub type SlotId = u32;
