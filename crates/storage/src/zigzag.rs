//! The dual-copy store used by the Zig-Zag baseline (§4.1.4).
//!
//! Zig-Zag keeps two versions of every record, `AS[k]₀` and `AS[k]₁`, plus
//! two bit vectors: `MR[k]` selects the version to *read*, `MW[k]` the
//! version to *overwrite*. Every update writes `AS[k][MW[k]]` and then sets
//! `MR[k] = MW[k]`. A checkpoint begins at a physical point of consistency
//! by setting `MW[k] = ¬MR[k]` for all `k`; from then on the first update
//! of a record is redirected away from the copy the asynchronous
//! checkpointer reads (`AS[k][¬MW[k]]`).
//!
//! Per the paper's §4.1.4 we keep the algorithm's semantics but back it
//! with the same hash-table/slot-arena engine as CALC rather than the
//! original fixed-width array storage, so the comparison is
//! apples-to-apples. Both copies are materialized at insert time — the 2×
//! standing memory cost of Figure 6 and the bit-vector bookkeeping on every
//! write (the ~4% rest overhead of §5.1.1) follow from that.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::{Mutex, MutexGuard, RwLock};

use calc_common::bitvec::AtomicBitVec;
use calc_common::types::{Key, Value};

use crate::dual::{StoreConfig, StoreError};
use crate::mem::{MemCounter, MemoryStats};
use crate::SlotId;

struct ZzSlot {
    key: u64,
    in_use: bool,
    versions: [Option<Value>; 2],
}

const EMPTY: ZzSlot = ZzSlot {
    key: 0,
    in_use: false,
    versions: [None, None],
};

/// The Zig-Zag store. See module docs.
pub struct ZigzagStore {
    shards: Box<[RwLock<HashMap<u64, SlotId>>]>,
    shard_mask: usize,
    slots: Box<[Mutex<ZzSlot>]>,
    mr: AtomicBitVec,
    mw: AtomicBitVec,
    high_water: AtomicUsize,
    free_slots: Mutex<Vec<SlotId>>,
    primary_mem: MemCounter,
    secondary_mem: MemCounter,
    record_count: AtomicUsize,
}

impl ZigzagStore {
    /// Creates an empty store. `MR` is initialized to zeros and `MW` to
    /// ones, as in the paper.
    pub fn new(config: StoreConfig) -> Self {
        let n_shards = config.shards.max(1).next_power_of_two();
        let mw = AtomicBitVec::new(config.capacity);
        mw.set_all();
        ZigzagStore {
            shards: (0..n_shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            shard_mask: n_shards - 1,
            slots: (0..config.capacity).map(|_| Mutex::new(EMPTY)).collect(),
            mr: AtomicBitVec::new(config.capacity),
            mw,
            high_water: AtomicUsize::new(0),
            free_slots: Mutex::new(Vec::new()),
            primary_mem: MemCounter::new(),
            secondary_mem: MemCounter::new(),
            record_count: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> &RwLock<HashMap<u64, SlotId>> {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        &self.shards[h as usize & self.shard_mask]
    }

    /// Current record count.
    pub fn len(&self) -> usize {
        self.record_count.load(Ordering::Relaxed)
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum record count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Highest allocated slot index (scan bound).
    pub fn slot_high_water(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }

    /// Resolves a key to its slot.
    pub fn slot_of(&self, key: Key) -> Option<SlotId> {
        self.shard_of(key).read().get(&key.0).copied()
    }

    /// Reads `AS[key][MR[key]]` — the latest committed version.
    pub fn get(&self, key: Key) -> Option<Value> {
        loop {
            let slot = self.slot_of(key)?;
            let g = self.slots[slot as usize].lock();
            if g.in_use && g.key == key.0 {
                let r = self.mr.get(slot as usize) as usize;
                return g.versions[r].clone();
            }
        }
    }

    /// Inserts a record, materializing **both** copies (the 2× standing
    /// cost of Zig-Zag).
    pub fn insert(&self, key: Key, value: &[u8]) -> Result<SlotId, StoreError> {
        self.insert_opts(key, value, false)
    }

    /// Insert with slot-allocation control: `fresh_only` skips the free
    /// list, forcing a slot above the current high-water mark. Used while
    /// an asynchronous capture scan is in flight — a reused slot below the
    /// sealed scan bound would leak a post-point insert into the
    /// checkpoint.
    pub fn insert_opts(
        &self,
        key: Key,
        value: &[u8],
        fresh_only: bool,
    ) -> Result<SlotId, StoreError> {
        {
            let shard = self.shard_of(key).read();
            if shard.contains_key(&key.0) {
                return Err(StoreError::DuplicateKey(key));
            }
        }
        let slot = {
            let reused = if fresh_only {
                None
            } else {
                self.free_slots.lock().pop()
            };
            if let Some(s) = reused {
                s
            } else {
                let idx = self.high_water.fetch_add(1, Ordering::AcqRel);
                if idx >= self.slots.len() {
                    self.high_water.fetch_sub(1, Ordering::AcqRel);
                    return Err(StoreError::CapacityExceeded);
                }
                idx as SlotId
            }
        };
        {
            let mut g = self.slots[slot as usize].lock();
            g.key = key.0;
            g.in_use = true;
            g.versions[0] = Some(value.to_vec().into_boxed_slice());
            g.versions[1] = Some(value.to_vec().into_boxed_slice());
            // Reset the bits for a reused slot: read copy 0, write copy 1.
            self.mr.set(slot as usize, false);
            self.mw.set(slot as usize, true);
        }
        self.primary_mem.add(value.len());
        self.secondary_mem.add(value.len());
        {
            let mut shard = self.shard_of(key).write();
            if let Some(theirs) = shard.insert(key.0, slot) {
                shard.insert(key.0, theirs);
                drop(shard);
                self.discard_slot(slot);
                return Err(StoreError::DuplicateKey(key));
            }
        }
        self.record_count.fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }

    fn discard_slot(&self, slot: SlotId) {
        let mut g = self.slots[slot as usize].lock();
        for v in g.versions.iter_mut() {
            if let Some(old) = v.take() {
                // Which counter it came from is ambiguous here; both copies
                // are same-sized so split evenly.
                self.primary_mem.sub(old.len() / 2 + old.len() % 2);
                self.secondary_mem.sub(old.len() / 2);
            }
        }
        g.in_use = false;
        g.key = 0;
        self.free_slots.lock().push(slot);
    }

    /// Updates a record: writes `AS[key][MW[key]]`, then sets
    /// `MR[key] = MW[key]`. Returns the previous read-version for undo.
    pub fn write(&self, key: Key, value: &[u8]) -> Result<Option<Value>, StoreError> {
        let slot = self.slot_of(key).ok_or(StoreError::KeyNotFound(key))?;
        let mut g = self.slots[slot as usize].lock();
        if !g.in_use || g.key != key.0 {
            return Err(StoreError::KeyNotFound(key));
        }
        let r = self.mr.get(slot as usize) as usize;
        let w = self.mw.get(slot as usize) as usize;
        let undo = g.versions[r].clone();
        let new = value.to_vec().into_boxed_slice();
        let counter = if w == 0 { &self.primary_mem } else { &self.secondary_mem };
        counter.add(new.len());
        if let Some(old) = g.versions[w].replace(new) {
            counter.sub(old.len());
        }
        self.mr.set(slot as usize, w == 1);
        Ok(undo)
    }

    /// Deletes a record. `checkpoint_active` preserves the checkpointer's
    /// copy (`AS[¬MW]`): only the writable copy is cleared, and the slot is
    /// left for [`ZigzagStore::reclaim_after_capture`]. At rest both copies
    /// are cleared and the slot is reclaimed immediately.
    pub fn delete(&self, key: Key, checkpoint_active: bool) -> Result<Option<Value>, StoreError> {
        let slot = self.unlink(key)?;
        let mut g = self.slots[slot as usize].lock();
        let r = self.mr.get(slot as usize) as usize;
        let w = self.mw.get(slot as usize) as usize;
        let undo = g.versions[r].clone();
        let counter = |i: usize| if i == 0 { &self.primary_mem } else { &self.secondary_mem };
        if let Some(old) = g.versions[w].take() {
            counter(w).sub(old.len());
        }
        self.mr.set(slot as usize, w == 1);
        if !checkpoint_active {
            if let Some(old) = g.versions[1 - w].take() {
                counter(1 - w).sub(old.len());
            }
            g.in_use = false;
            g.key = 0;
            self.free_slots.lock().push(slot);
        }
        Ok(undo)
    }

    fn unlink(&self, key: Key) -> Result<SlotId, StoreError> {
        let mut shard = self.shard_of(key).write();
        match shard.remove(&key.0) {
            Some(slot) => {
                self.record_count.fetch_sub(1, Ordering::Relaxed);
                Ok(slot)
            }
            None => Err(StoreError::KeyNotFound(key)),
        }
    }

    /// Begins a checkpoint at a physical point of consistency (the caller
    /// must have quiesced the system): sets `MW[k] = ¬MR[k]` for all keys.
    pub fn begin_checkpoint(&self) {
        self.mw.store_inverted_from(&self.mr);
    }

    /// Reads the checkpointer's copy of a slot: `(key, AS[¬MW])`, or `None`
    /// if the slot is vacant or the record did not exist at the point of
    /// consistency.
    pub fn checkpoint_copy(&self, slot: SlotId) -> Option<(Key, Value)> {
        let g = self.slots[slot as usize].lock();
        if !g.in_use {
            return None;
        }
        let w = self.mw.get(slot as usize) as usize;
        g.versions[1 - w].clone().map(|v| (Key(g.key), v))
    }

    /// Reclaims a slot whose record was deleted during the checkpoint
    /// window, once the checkpointer has consumed its copy. No-op if the
    /// slot has a live read copy.
    pub fn reclaim_after_capture(&self, slot: SlotId) {
        let mut g = self.slots[slot as usize].lock();
        if !g.in_use {
            return;
        }
        let r = self.mr.get(slot as usize) as usize;
        if g.versions[r].is_none() {
            let counter = |i: usize| {
                if i == 0 {
                    &self.primary_mem
                } else {
                    &self.secondary_mem
                }
            };
            for i in 0..2 {
                if let Some(old) = g.versions[i].take() {
                    counter(i).sub(old.len());
                }
            }
            g.in_use = false;
            g.key = 0;
            self.free_slots.lock().push(slot);
        }
    }

    /// Locks a slot (tests and diagnostics).
    pub fn lock_slot(&self, slot: SlotId) -> MutexGuard<'_, impl Sized> {
        self.slots[slot as usize].lock()
    }

    /// Memory report: one copy counts as live, the other as extra — the 2×
    /// line of Figure 6.
    pub fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_bytes: self.primary_mem.bytes(),
            live_count: self.primary_mem.count(),
            extra_bytes: self.secondary_mem.bytes(),
            extra_count: self.secondary_mem.count(),
            overhead_bytes: self.mr.heap_bytes() + self.mw.heap_bytes(),
        }
    }
}

impl std::fmt::Debug for ZigzagStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ZigzagStore(len={}, capacity={})", self.len(), self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ZigzagStore {
        ZigzagStore::new(StoreConfig::for_records(256, 32))
    }

    #[test]
    fn insert_read_write_read() {
        let s = store();
        s.insert(Key(1), b"v0").unwrap();
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"v0"[..]));
        let undo = s.write(Key(1), b"v1").unwrap();
        assert_eq!(undo.as_deref(), Some(&b"v0"[..]));
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"v1"[..]));
        // Repeated writes keep reading back the latest value.
        s.write(Key(1), b"v2").unwrap();
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn checkpoint_copy_is_isolated_from_writes() {
        let s = store();
        let slot = s.insert(Key(1), b"before").unwrap();
        s.write(Key(1), b"at-point").unwrap();
        // Physical point of consistency.
        s.begin_checkpoint();
        // Post-point writes go to the other copy…
        s.write(Key(1), b"after-1").unwrap();
        s.write(Key(1), b"after-2").unwrap();
        // …so the checkpointer still sees the point-of-consistency value.
        let (k, v) = s.checkpoint_copy(slot).unwrap();
        assert_eq!(k, Key(1));
        assert_eq!(&v[..], b"at-point");
        // And reads see the latest.
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"after-2"[..]));
    }

    #[test]
    fn unwritten_record_checkpoint_copy_is_current_value() {
        let s = store();
        let slot = s.insert(Key(2), b"stable").unwrap();
        s.begin_checkpoint();
        let (_, v) = s.checkpoint_copy(slot).unwrap();
        assert_eq!(&v[..], b"stable");
    }

    #[test]
    fn consecutive_checkpoints_alternate_copies() {
        let s = store();
        let slot = s.insert(Key(3), b"a").unwrap();
        for round in 0..4 {
            s.begin_checkpoint();
            let val = format!("round-{round}");
            s.write(Key(3), val.as_bytes()).unwrap();
            // Checkpoint copy = value at this round's start.
            let (_, v) = s.checkpoint_copy(slot).unwrap();
            let expected = if round == 0 {
                "a".to_string()
            } else {
                format!("round-{}", round - 1)
            };
            assert_eq!(std::str::from_utf8(&v).unwrap(), expected);
        }
    }

    #[test]
    fn delete_at_rest_reclaims_slot() {
        let s = store();
        let slot = s.insert(Key(4), b"x").unwrap();
        s.delete(Key(4), false).unwrap();
        assert!(s.get(Key(4)).is_none());
        assert_eq!(s.len(), 0);
        let slot2 = s.insert(Key(5), b"y").unwrap();
        assert_eq!(slot2, slot, "slot reused");
        let m = s.memory();
        assert_eq!(m.live_count + m.extra_count, 2);
    }

    #[test]
    fn delete_during_checkpoint_preserves_checkpoint_copy() {
        let s = store();
        let slot = s.insert(Key(6), b"keep-me").unwrap();
        s.begin_checkpoint();
        s.delete(Key(6), true).unwrap();
        assert!(s.get(Key(6)).is_none());
        let (_, v) = s.checkpoint_copy(slot).unwrap();
        assert_eq!(&v[..], b"keep-me");
        s.reclaim_after_capture(slot);
        assert!(s.checkpoint_copy(slot).is_none());
        let m = s.memory();
        assert_eq!(m.live_count + m.extra_count, 0);
    }

    #[test]
    fn insert_after_point_excluded_from_checkpoint() {
        let s = store();
        s.insert(Key(1), b"old").unwrap();
        s.begin_checkpoint();
        let new_slot = s.insert(Key(2), b"new").unwrap();
        // The new record's checkpoint copy exists (both copies materialized
        // at insert) — Zig-Zag handles inserts-after-point at the strategy
        // level by bounding the scan, but the store-level copy is the
        // inserted value.
        assert!(s.checkpoint_copy(new_slot).is_some());
    }

    #[test]
    fn memory_is_two_copies() {
        let s = store();
        for k in 0..10u64 {
            s.insert(Key(k), &[0u8; 50]).unwrap();
        }
        let m = s.memory();
        assert_eq!(m.live_count, 10);
        assert_eq!(m.extra_count, 10);
        assert_eq!(m.total_bytes(), 1000);
        assert!((m.copy_ratio() - 2.0).abs() < 1e-9);
    }
}
