//! Atomic memory accounting for record storage.
//!
//! Figure 6 of the paper plots "memory used for record storage" over time
//! for each checkpointing scheme (Naive/Fuzzy ≈ 1×, Zig-Zag 2×, IPP 4×,
//! CALC 1×–1.2× with a bump only during the checkpoint window). Each store
//! maintains a [`MemCounter`] per copy class so the harness can sample the
//! exact number of record copies and bytes held at any instant, without
//! stopping the world.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A pair of atomic counters: live byte total and value-copy count.
#[derive(Debug, Default)]
pub struct MemCounter {
    bytes: AtomicUsize,
    count: AtomicUsize,
}

impl MemCounter {
    /// New zeroed counter.
    pub const fn new() -> Self {
        MemCounter {
            bytes: AtomicUsize::new(0),
            count: AtomicUsize::new(0),
        }
    }

    /// Records an allocation of `n` bytes.
    #[inline]
    pub fn add(&self, n: usize) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a release of `n` bytes.
    #[inline]
    pub fn sub(&self, n: usize) {
        self.bytes.fetch_sub(n, Ordering::Relaxed);
        self.count.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current byte total.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Current copy count.
    #[inline]
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

/// A point-in-time memory report from a store.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemoryStats {
    /// Bytes held by primary (live / application-state) record values.
    pub live_bytes: usize,
    /// Number of primary record values.
    pub live_count: usize,
    /// Bytes held by *extra* record copies (stable versions, ping-pong
    /// arrays, zig-zag second copies, in-memory snapshots).
    pub extra_bytes: usize,
    /// Number of extra record copies.
    pub extra_count: usize,
    /// Bytes of fixed metadata overhead (bit vectors, dirty trackers).
    pub overhead_bytes: usize,
}

impl MemoryStats {
    /// Total record copies (live + extra) — the y-axis of Figure 6.
    pub fn total_copies(&self) -> usize {
        self.live_count + self.extra_count
    }

    /// Total record bytes.
    pub fn total_bytes(&self) -> usize {
        self.live_bytes + self.extra_bytes
    }

    /// Extra copies expressed as a multiple of live copies (e.g. IPP→3.0
    /// on top of state, CALC at rest→0.0).
    pub fn copy_ratio(&self) -> f64 {
        if self.live_count == 0 {
            0.0
        } else {
            self.total_copies() as f64 / self.live_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_sub() {
        let c = MemCounter::new();
        c.add(100);
        c.add(50);
        assert_eq!(c.bytes(), 150);
        assert_eq!(c.count(), 2);
        c.sub(100);
        assert_eq!(c.bytes(), 50);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn stats_ratios() {
        let s = MemoryStats {
            live_bytes: 1000,
            live_count: 10,
            extra_bytes: 3000,
            extra_count: 30,
            overhead_bytes: 8,
        };
        assert_eq!(s.total_copies(), 40);
        assert_eq!(s.total_bytes(), 4000);
        assert!((s.copy_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_store_ratio_is_zero() {
        assert_eq!(MemoryStats::default().copy_ratio(), 0.0);
    }
}
