//! Randomized model checking of the three storage engines: seeded
//! insert/update/delete sequences must match a `BTreeMap` model, and
//! CALC's dual-version store must additionally keep its memory accounting
//! exact (no leaked live bytes or stable copies).
//!
//! The offline build has no proptest, so cases are generated from
//! `calc_common::rng::SplitMix` — fully deterministic per seed, with the
//! failing seed printed on assertion failure.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use calc_common::rng::SplitMix;
use calc_common::types::Key;
use calc_storage::dual::{DualVersionStore, StoreConfig};
use calc_storage::triple::TripleStore;
use calc_storage::zigzag::ZigzagStore;

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, Vec<u8>),
    Update(u8, Vec<u8>),
    Delete(u8),
}

fn gen_value(rng: &mut SplitMix) -> Vec<u8> {
    let len = 1 + rng.next_below(23) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn gen_ops(rng: &mut SplitMix) -> Vec<Op> {
    let n = rng.next_below(120) as usize;
    (0..n)
        .map(|_| {
            let k = (rng.next_below(32)) as u8;
            match rng.next_below(3) {
                0 => Op::Insert(k, gen_value(rng)),
                1 => Op::Update(k, gen_value(rng)),
                _ => Op::Delete(k),
            }
        })
        .collect()
}

fn config() -> StoreConfig {
    StoreConfig::for_records(4096, 32)
}

const CASES: u64 = 64;

const fn seed_base() -> u64 {
    0x5704_26e5_0000_0000
}

#[test]
fn dual_store_matches_model() {
    for case in 0..CASES {
        let seed = seed_base() ^ case;
        let mut rng = SplitMix::new(seed);
        let ops = gen_ops(&mut rng);
        let store = DualVersionStore::new(config());
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let r = store.insert(Key(k as u64), &v);
                    match model.entry(k as u64) {
                        Entry::Occupied(_) => {
                            assert!(r.is_err(), "seed {seed:#x}: duplicate insert accepted")
                        }
                        Entry::Vacant(e) => {
                            assert!(r.is_ok(), "seed {seed:#x}: fresh insert rejected");
                            e.insert(v);
                        }
                    }
                }
                Op::Update(k, v) => {
                    if let Some(mut g) = store.locked_slot_of(Key(k as u64)) {
                        g.set_live(&v);
                        model.insert(k as u64, v);
                    } else {
                        assert!(!model.contains_key(&(k as u64)), "seed {seed:#x}");
                    }
                }
                Op::Delete(k) => {
                    if model.remove(&(k as u64)).is_some() {
                        let slot = store.slot_of(Key(k as u64)).unwrap();
                        store.unlink(Key(k as u64)).unwrap();
                        let mut g = store.lock_slot(slot);
                        g.clear_live();
                        assert!(g.release_if_vacant(), "seed {seed:#x}");
                    } else {
                        assert!(store.slot_of(Key(k as u64)).is_none(), "seed {seed:#x}");
                    }
                }
            }
        }
        assert_eq!(store.len(), model.len(), "seed {seed:#x}");
        for (k, v) in &model {
            assert_eq!(
                store.get(Key(*k)).as_deref(),
                Some(v.as_slice()),
                "seed {seed:#x} key {k}"
            );
        }
        // Memory accounting exactness.
        let mem = store.memory();
        assert_eq!(mem.live_count, model.len(), "seed {seed:#x}");
        assert_eq!(
            mem.live_bytes,
            model.values().map(|v| v.len()).sum::<usize>(),
            "seed {seed:#x}"
        );
        assert_eq!(
            mem.extra_count, 0,
            "seed {seed:#x}: no stable copies outside checkpoints"
        );
        let dump = store.dump_live();
        assert_eq!(dump.len(), model.len(), "seed {seed:#x}");
    }
}

#[test]
fn zigzag_store_matches_model() {
    for case in 0..CASES {
        let seed = seed_base() ^ (0x100 + case);
        let mut rng = SplitMix::new(seed);
        let ops = gen_ops(&mut rng);
        let store = ZigzagStore::new(config());
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    if store.insert(Key(k as u64), &v).is_ok() {
                        assert!(!model.contains_key(&(k as u64)), "seed {seed:#x}");
                        model.insert(k as u64, v);
                    } else {
                        assert!(model.contains_key(&(k as u64)), "seed {seed:#x}");
                    }
                }
                Op::Update(k, v) => {
                    if store.write(Key(k as u64), &v).is_ok() {
                        assert!(model.contains_key(&(k as u64)), "seed {seed:#x}");
                        model.insert(k as u64, v);
                    } else {
                        assert!(!model.contains_key(&(k as u64)), "seed {seed:#x}");
                    }
                }
                Op::Delete(k) => {
                    if store.delete(Key(k as u64), false).is_ok() {
                        assert!(model.remove(&(k as u64)).is_some(), "seed {seed:#x}");
                    } else {
                        assert!(!model.contains_key(&(k as u64)), "seed {seed:#x}");
                    }
                }
            }
        }
        assert_eq!(store.len(), model.len(), "seed {seed:#x}");
        for (k, v) in &model {
            assert_eq!(
                store.get(Key(*k)).as_deref(),
                Some(v.as_slice()),
                "seed {seed:#x} key {k}"
            );
        }
        // Two copies of everything at rest.
        let mem = store.memory();
        assert_eq!(mem.live_count, model.len(), "seed {seed:#x}");
        assert_eq!(mem.extra_count, model.len(), "seed {seed:#x}");
    }
}

#[test]
fn triple_store_matches_model() {
    for case in 0..CASES {
        let seed = seed_base() ^ (0x200 + case);
        let mut rng = SplitMix::new(seed);
        let ops = gen_ops(&mut rng);
        let store = TripleStore::new(config(), false);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    if store.insert(Key(k as u64), &v).is_ok() {
                        assert!(!model.contains_key(&(k as u64)), "seed {seed:#x}");
                        model.insert(k as u64, v);
                    } else {
                        assert!(model.contains_key(&(k as u64)), "seed {seed:#x}");
                    }
                }
                Op::Update(k, v) => {
                    if store.write(Key(k as u64), &v).is_ok() {
                        model.insert(k as u64, v);
                    } else {
                        assert!(!model.contains_key(&(k as u64)), "seed {seed:#x}");
                    }
                }
                Op::Delete(k) => {
                    if store.delete(Key(k as u64)).is_ok() {
                        assert!(model.remove(&(k as u64)).is_some(), "seed {seed:#x}");
                    } else {
                        assert!(!model.contains_key(&(k as u64)), "seed {seed:#x}");
                    }
                }
            }
        }
        assert_eq!(store.len(), model.len(), "seed {seed:#x}");
        for (k, v) in &model {
            assert_eq!(
                store.get(Key(*k)).as_deref(),
                Some(v.as_slice()),
                "seed {seed:#x} key {k}"
            );
        }
    }
}

/// A full checkpoint cycle at any point in an op sequence leaves the
/// dual store's live state untouched.
#[test]
fn dual_store_checkpoint_cycle_preserves_live_state() {
    for case in 0..CASES {
        let seed = seed_base() ^ (0x300 + case);
        let mut rng = SplitMix::new(seed);
        let ops = gen_ops(&mut rng);
        // (This test intentionally uses only the storage API: simulate the
        // capture scan's slot walk with stable erasure + bit
        // normalization, then polarity swap, and verify live data is
        // untouched.)
        let store = DualVersionStore::new(config());
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            if let Op::Insert(k, v) = op {
                if store.insert(Key(*k as u64), v).is_ok() {
                    model.entry(*k as u64).or_insert_with(|| v.clone());
                }
            }
        }
        // Create stable copies for half the records (as post-point writers
        // would), then run a capture-like walk.
        for (i, k) in model.keys().enumerate() {
            if i % 2 == 0 {
                let mut g = store.locked_slot_of(Key(*k)).unwrap();
                g.copy_live_to_stable();
                store.stable_status().mark(g.slot() as usize);
            }
        }
        capture_walk(&store);
        store.stable_status().swap_polarity();
        for (k, v) in &model {
            assert_eq!(
                store.get(Key(*k)).as_deref(),
                Some(v.as_slice()),
                "seed {seed:#x} key {k}"
            );
            let g = store.locked_slot_of(Key(*k)).unwrap();
            assert!(!g.has_stable(), "seed {seed:#x}");
            assert!(
                !store.stable_status().is_marked(g.slot() as usize),
                "seed {seed:#x}"
            );
        }
        assert_eq!(store.memory().extra_count, 0, "seed {seed:#x}");
    }
}

/// Minimal stand-in for the capture scan, storage-API-only.
fn capture_walk(store: &DualVersionStore) {
    let status = store.stable_status();
    for slot in store.slot_ids() {
        let mut g = store.lock_slot(slot);
        if !g.in_use() {
            status.mark(slot as usize);
            continue;
        }
        if status.is_marked(slot as usize) {
            g.erase_stable();
        } else {
            status.mark(slot as usize);
            g.erase_stable();
        }
    }
}
