//! Property-based model checking of the three storage engines: arbitrary
//! insert/update/delete sequences must match a `BTreeMap` model, and
//! CALC's dual-version store must additionally keep its memory accounting
//! exact (no leaked live bytes or stable copies).

use std::collections::BTreeMap;

use proptest::prelude::*;

use calc_common::types::Key;
use calc_storage::dual::{DualVersionStore, StoreConfig};
use calc_storage::triple::TripleStore;
use calc_storage::zigzag::ZigzagStore;

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, Vec<u8>),
    Update(u8, Vec<u8>),
    Delete(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..24))
                .prop_map(|(k, v)| Op::Insert(k % 32, v)),
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..24))
                .prop_map(|(k, v)| Op::Update(k % 32, v)),
            any::<u8>().prop_map(|k| Op::Delete(k % 32)),
        ],
        0..120,
    )
}

fn config() -> StoreConfig {
    StoreConfig::for_records(4096, 32)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dual_store_matches_model(ops in ops()) {
        let store = DualVersionStore::new(config());
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let r = store.insert(Key(k as u64), &v);
                    if model.contains_key(&(k as u64)) {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        model.insert(k as u64, v);
                    }
                }
                Op::Update(k, v) => {
                    if let Some(mut g) = store.locked_slot_of(Key(k as u64)) {
                        g.set_live(&v);
                        model.insert(k as u64, v);
                    } else {
                        prop_assert!(!model.contains_key(&(k as u64)));
                    }
                }
                Op::Delete(k) => {
                    if model.remove(&(k as u64)).is_some() {
                        let slot = store.slot_of(Key(k as u64)).unwrap();
                        store.unlink(Key(k as u64)).unwrap();
                        let mut g = store.lock_slot(slot);
                        g.clear_live();
                        prop_assert!(g.release_if_vacant());
                    } else {
                        prop_assert!(store.slot_of(Key(k as u64)).is_none());
                    }
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(store.get(Key(*k)).as_deref(), Some(v.as_slice()));
        }
        // Memory accounting exactness.
        let mem = store.memory();
        prop_assert_eq!(mem.live_count, model.len());
        prop_assert_eq!(mem.live_bytes, model.values().map(|v| v.len()).sum::<usize>());
        prop_assert_eq!(mem.extra_count, 0, "no stable copies outside checkpoints");
        let dump = store.dump_live();
        prop_assert_eq!(dump.len(), model.len());
    }

    #[test]
    fn zigzag_store_matches_model(ops in ops()) {
        let store = ZigzagStore::new(config());
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    if store.insert(Key(k as u64), &v).is_ok() {
                        prop_assert!(!model.contains_key(&(k as u64)));
                        model.insert(k as u64, v);
                    } else {
                        prop_assert!(model.contains_key(&(k as u64)));
                    }
                }
                Op::Update(k, v) => {
                    if store.write(Key(k as u64), &v).is_ok() {
                        prop_assert!(model.contains_key(&(k as u64)));
                        model.insert(k as u64, v);
                    } else {
                        prop_assert!(!model.contains_key(&(k as u64)));
                    }
                }
                Op::Delete(k) => {
                    if store.delete(Key(k as u64), false).is_ok() {
                        prop_assert!(model.remove(&(k as u64)).is_some());
                    } else {
                        prop_assert!(!model.contains_key(&(k as u64)));
                    }
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(store.get(Key(*k)).as_deref(), Some(v.as_slice()));
        }
        // Two copies of everything at rest.
        let mem = store.memory();
        prop_assert_eq!(mem.live_count, model.len());
        prop_assert_eq!(mem.extra_count, model.len());
    }

    #[test]
    fn triple_store_matches_model(ops in ops()) {
        let store = TripleStore::new(config(), false);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    if store.insert(Key(k as u64), &v).is_ok() {
                        prop_assert!(!model.contains_key(&(k as u64)));
                        model.insert(k as u64, v);
                    } else {
                        prop_assert!(model.contains_key(&(k as u64)));
                    }
                }
                Op::Update(k, v) => {
                    if store.write(Key(k as u64), &v).is_ok() {
                        model.insert(k as u64, v);
                    } else {
                        prop_assert!(!model.contains_key(&(k as u64)));
                    }
                }
                Op::Delete(k) => {
                    if store.delete(Key(k as u64)).is_ok() {
                        prop_assert!(model.remove(&(k as u64)).is_some());
                    } else {
                        prop_assert!(!model.contains_key(&(k as u64)));
                    }
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(store.get(Key(*k)).as_deref(), Some(v.as_slice()));
        }
    }

    /// A full checkpoint cycle at any point in an op sequence leaves the
    /// dual store's live state untouched.
    #[test]
    fn dual_store_checkpoint_cycle_preserves_live_state(
        ops in ops(),
        _cycle_at in 0usize..120,
    ) {
        use calc_core_shim::*;
        // (This test intentionally uses only the storage API: simulate the
        // capture scan's slot walk with stable erasure + bit
        // normalization, then polarity swap, and verify live data is
        // untouched.)
        let store = DualVersionStore::new(config());
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            if let Op::Insert(k, v) = op {
                if store.insert(Key(*k as u64), v).is_ok() {
                    model.entry(*k as u64).or_insert_with(|| v.clone());
                }
            }
        }
        // Create stable copies for half the records (as post-point writers
        // would), then run a capture-like walk.
        for (i, k) in model.keys().enumerate() {
            if i % 2 == 0 {
                let mut g = store.locked_slot_of(Key(*k)).unwrap();
                g.copy_live_to_stable();
                store.stable_status().mark(g.slot() as usize);
            }
        }
        capture_walk(&store);
        store.stable_status().swap_polarity();
        for (k, v) in &model {
            prop_assert_eq!(store.get(Key(*k)).as_deref(), Some(v.as_slice()));
            let g = store.locked_slot_of(Key(*k)).unwrap();
            prop_assert!(!g.has_stable());
            prop_assert!(!store.stable_status().is_marked(g.slot() as usize));
        }
        prop_assert_eq!(store.memory().extra_count, 0);
    }
}

/// Minimal stand-in for the capture scan, storage-API-only.
mod calc_core_shim {
    use super::*;

    pub fn capture_walk(store: &DualVersionStore) {
        let status = store.stable_status();
        for slot in store.slot_ids() {
            let mut g = store.lock_slot(slot);
            if !g.in_use() {
                status.mark(slot as usize);
                continue;
            }
            if status.is_marked(slot as usize) {
                g.erase_stable();
            } else {
                status.mark(slot as usize);
                g.erase_stable();
            }
        }
    }
}
