//! Seeded multi-threaded stress scenarios feeding the conformance
//! checker.
//!
//! A run opens a real [`Database`] with the history recorder attached,
//! enables [`calc_common::perturb`] schedule jitter with the spec's seed,
//! hammers it from several feeder threads while the driver thread takes
//! checkpoints, then shuts down and hands the recorded history plus every
//! published checkpoint file to [`check`].
//!
//! Runs are serialized process-wide (perturbation and mutation state are
//! process-global), so stress tests in one binary queue behind each
//! other; separate integration-test binaries are separate processes and
//! parallelize freely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use calc_common::mutation::{self, Mutation};
use calc_common::perturb;
use calc_common::rng::SplitMix;
use calc_common::types::Key;
use calc_engine::recorder::HistoryRecorder;
use calc_engine::{Database, EngineConfig, StrategyKind};
use calc_txn::proc::{ProcId, ProcRegistry};
use calc_workload::tpcc::procs::STOCK_LEVEL_PROC;
use calc_workload::tpcc::{TpccConfig, TpccWorkload};

use crate::checker::{check, ConformInput, ConformReport, Violation};
use crate::procs::{blind_params, register_all, rmw_add_params, transfer_params, BLIND, RMW_ADD, TRANSFER};

/// A stress scenario shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Read-modify-write chains concentrated on 8 hot keys (70%), plus
    /// hot-key transfers and a thin spread over 64 keys. Maximum lock
    /// contention; the canonical lost-update detector.
    HotKeyRmw,
    /// Blind puts/inserts/deletes over 256 keys, no reads — exercises
    /// insert/delete outcome validation and tombstones in partial
    /// checkpoints.
    BlindWrites,
    /// Mixed RMW/transfer/blind traffic with the driver thread taking
    /// back-to-back checkpoints the whole time — maximizes commits landing
    /// inside PREPARE/RESOLVE/CAPTURE windows and stable-version reads.
    CheckpointContention,
    /// The full five-transaction TPC-C mix on `TpccConfig::small()`, one
    /// workload generator per feeder (history-partitioned). StockLevel
    /// reads run at TPC-C's permitted relaxed isolation and are exempted
    /// from read checking.
    TpccMix,
}

impl Scenario {
    fn tag(self) -> &'static str {
        match self {
            Scenario::HotKeyRmw => "hotkey",
            Scenario::BlindWrites => "blind",
            Scenario::CheckpointContention => "ckcontend",
            Scenario::TpccMix => "tpcc",
        }
    }

    /// Delay between driver-thread checkpoints while feeders run.
    fn checkpoint_pace(self) -> Duration {
        match self {
            Scenario::CheckpointContention => Duration::from_millis(1),
            Scenario::TpccMix => Duration::from_millis(5),
            _ => Duration::from_millis(10),
        }
    }
}

/// Parameters of one stress run.
#[derive(Clone, Copy, Debug)]
pub struct StressSpec {
    /// Checkpointing strategy under test.
    pub kind: StrategyKind,
    /// Traffic shape.
    pub scenario: Scenario,
    /// Seed for schedule perturbation and all request generators.
    pub seed: u64,
    /// Concurrent feeder threads submitting transactions.
    pub feeders: usize,
    /// Transactions each feeder executes (synchronously, back-to-back).
    pub txns_per_feeder: usize,
}

impl StressSpec {
    /// A spec with the default scale: 4 feeders × 250 transactions.
    pub fn new(kind: StrategyKind, scenario: Scenario, seed: u64) -> Self {
        StressSpec {
            kind,
            scenario,
            seed,
            feeders: 4,
            txns_per_feeder: 250,
        }
    }
}

/// Serializes stress runs: perturbation seeds and mutation flags are
/// process-global, so two concurrent runs would contaminate each other.
static RUN_LOCK: Mutex<()> = Mutex::new(());
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Holds the run lock and guarantees global perturb/mutation state is
/// reset even when a run panics.
struct RunGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl Drop for RunGuard<'_> {
    fn drop(&mut self) {
        perturb::disable();
        mutation::disarm_all();
    }
}

/// Runs the scenario and checks the history; panics (with the seed in
/// the message for `CONFORM_SEED` replay) on any violation.
pub fn run_stress(spec: &StressSpec) -> ConformReport {
    match run_inner(spec, None) {
        Ok(report) => report,
        Err(v) => panic!(
            "conformance violation on a clean run of {} / {:?} — replay with \
             CONFORM_SEED={:#x} cargo test -p calc-conform: {v}",
            spec.kind, spec.scenario, spec.seed,
        ),
    }
}

/// Runs the scenario with `mutation` armed (a seeded bug switched on) and
/// returns the checker's verdict instead of panicking — the mutation
/// smoke test asserts `Err`.
pub fn run_stress_mutated(spec: &StressSpec, mutation: Mutation) -> Result<ConformReport, Violation> {
    run_inner(spec, Some(mutation))
}

fn run_inner(spec: &StressSpec, armed: Option<Mutation>) -> Result<ConformReport, Violation> {
    let _guard = RunGuard(RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner()));
    perturb::enable(spec.seed);
    if let Some(m) = armed {
        mutation::arm(m);
    }

    let dir = std::env::temp_dir().join(format!(
        "calc-conform-{}-{}-{}-{}-{:x}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed),
        spec.kind.name(),
        spec.scenario.tag(),
        spec.seed,
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let recorder = Arc::new(HistoryRecorder::new());
    let mut registry = ProcRegistry::new();
    let tpcc_config = TpccConfig::small();
    let mut config = match spec.scenario {
        Scenario::TpccMix => {
            TpccWorkload::register_full_mix(&mut registry);
            EngineConfig::new(
                spec.kind,
                tpcc_config.capacity_hint(4 * spec.feeders * spec.txns_per_feeder),
                140,
                dir.clone(),
            )
        }
        _ => {
            register_all(&mut registry);
            EngineConfig::new(spec.kind, 512, 16, dir.clone())
        }
    };
    config.workers = 4;
    let base_checkpoint = config.base_checkpoint;
    config.recorder = Some(recorder.clone());
    let db = Database::open(config, registry).expect("open database");

    match spec.scenario {
        Scenario::TpccMix => {
            TpccWorkload::new(tpcc_config.clone(), spec.seed).populate(&db);
        }
        Scenario::HotKeyRmw => {
            for k in 0..64u64 {
                db.load_initial(Key(k), &k.to_le_bytes()).expect("capacity");
            }
        }
        Scenario::BlindWrites => {
            // Half the keyspace present, so deletes and inserts both hit
            // present and absent keys.
            for k in (0..256u64).step_by(2) {
                db.load_initial(Key(k), &k.to_le_bytes()).expect("capacity");
            }
        }
        Scenario::CheckpointContention => {
            for k in 0..128u64 {
                db.load_initial(Key(k), &k.to_le_bytes()).expect("capacity");
            }
        }
    }
    db.finalize_load(base_checkpoint).expect("base checkpoint");

    std::thread::scope(|s| {
        let mut feeders = Vec::with_capacity(spec.feeders);
        for f in 0..spec.feeders {
            let db = &db;
            let spec = *spec;
            feeders.push(s.spawn(move || match spec.scenario {
                Scenario::TpccMix => {
                    let mut wl =
                        TpccWorkload::new(TpccConfig::small(), spec.seed ^ (f as u64 + 1));
                    wl.set_history_partition(f as u64);
                    for _ in 0..spec.txns_per_feeder {
                        let (proc, params) = wl.next_request_full_mix(db);
                        db.execute(proc, params);
                    }
                }
                _ => {
                    let mut rng = SplitMix::new(
                        spec.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(f as u64 + 1),
                    );
                    for _ in 0..spec.txns_per_feeder {
                        let (proc, params) = next_op(spec.scenario, &mut rng);
                        db.execute(proc, params);
                    }
                }
            }));
        }
        // Driver doubles as the checkpointer while feeders run.
        while !feeders.iter().all(|h| h.is_finished()) {
            db.checkpoint_now().expect("checkpoint under load");
            std::thread::sleep(spec.scenario.checkpoint_pace());
        }
    });

    db.checkpoint_now().expect("final checkpoint");
    db.join_mergers();
    let checkpoints = db.checkpoint_dir().scan().expect("scan checkpoint dir");
    let consistent = db.strategy().transaction_consistent();
    let committed = db.metrics().committed();
    db.shutdown();

    let history = recorder.take_history();
    assert_eq!(
        history.txns.len() as u64,
        committed,
        "recorder lost commits ({} recorded vs {} counted)",
        history.txns.len(),
        committed,
    );
    assert!(committed > 0, "stress run committed nothing");
    assert!(!checkpoints.is_empty(), "stress run published no checkpoints");

    let relaxed_procs: Vec<ProcId> = match spec.scenario {
        Scenario::TpccMix => vec![STOCK_LEVEL_PROC],
        _ => vec![],
    };
    // `CONFORM_DUMP_KEY=<u64>`: on a violation, dump every recorded
    // transaction touching that key (with start/commit phase stamps) and
    // the checkpoint metadata — the fastest way to reconstruct the
    // interleaving behind a checkpoint divergence.
    let dump_key = std::env::var("CONFORM_DUMP_KEY")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok());
    let debug_txns = dump_key.map(|k| {
        history
            .txns
            .iter()
            .filter(|t| {
                t.ops.iter().any(|op| {
                    let key = match op {
                        calc_engine::recorder::RecordedOp::Get { key, .. }
                        | calc_engine::recorder::RecordedOp::Put { key, .. }
                        | calc_engine::recorder::RecordedOp::Insert { key, .. }
                        | calc_engine::recorder::RecordedOp::Delete { key, .. } => *key,
                    };
                    key.0 == k
                })
            })
            .cloned()
            .collect::<Vec<_>>()
    });
    let debug_cks = dump_key.map(|_| checkpoints.clone());
    let result = check(ConformInput {
        history,
        checkpoints,
        check_checkpoint_state: consistent,
        relaxed_procs,
    });
    if result.is_err() {
        if let (Some(k), Some(txns), Some(cks)) = (dump_key, debug_txns, debug_cks) {
            eprintln!("== CONFORM_DUMP_KEY={k}: checkpoints ==");
            for c in &cks {
                eprintln!("  id={} kind={:?} watermark={:?}", c.id, c.kind, c.watermark);
            }
            eprintln!("== CONFORM_DUMP_KEY={k}: {} touching txns ==", txns.len());
            for t in &txns {
                eprintln!(
                    "  seq={:?} proc={:?} start={:?} commit={:?} ops={:?}",
                    t.seq, t.proc, t.start, t.commit, t.ops
                );
            }
        }
    }
    if result.is_ok() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn next_op(scenario: Scenario, rng: &mut SplitMix) -> (ProcId, std::sync::Arc<[u8]>) {
    match scenario {
        Scenario::HotKeyRmw => {
            let roll = rng.next_below(10);
            if roll < 7 {
                (RMW_ADD, rmw_add_params(rng.next_below(8), 1 + rng.next_below(100)))
            } else if roll < 9 {
                (
                    TRANSFER,
                    transfer_params(rng.next_below(8), rng.next_below(8), rng.next_below(50)),
                )
            } else {
                (RMW_ADD, rmw_add_params(8 + rng.next_below(56), 1))
            }
        }
        Scenario::BlindWrites => {
            let roll = rng.next_below(10);
            let op = if roll < 4 {
                0 // put
            } else if roll < 7 {
                1 // insert
            } else {
                2 // delete
            };
            (BLIND, blind_params(op, rng.next_below(256), rng.next_u64()))
        }
        Scenario::CheckpointContention => {
            let roll = rng.next_below(10);
            if roll < 4 {
                (RMW_ADD, rmw_add_params(rng.next_below(8), 1 + rng.next_below(100)))
            } else if roll < 6 {
                (
                    TRANSFER,
                    transfer_params(rng.next_below(128), rng.next_below(128), rng.next_below(50)),
                )
            } else if roll < 8 {
                (BLIND, blind_params(0, rng.next_below(128), rng.next_u64()))
            } else if roll < 9 {
                (BLIND, blind_params(1, rng.next_below(128), rng.next_u64()))
            } else {
                (BLIND, blind_params(2, rng.next_below(128), 0))
            }
        }
        Scenario::TpccMix => unreachable!("TPC-C feeders use the workload generator"),
    }
}
