//! Minimal stored procedures for the stress scenarios.
//!
//! Values are 8-byte little-endian counters — small enough that millions
//! of them fit in a recorded history, rich enough that a lost update or a
//! stale read changes the bytes and trips the checker.

use std::sync::Arc;

use calc_common::types::Key;
use calc_txn::proc::params::{Reader, Writer};
use calc_txn::proc::{AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps};

/// Read-modify-write increment: `v[key] += delta` (insert on absent).
/// The bread-and-butter lost-update detector — two of these racing on one
/// key under broken locking both read the same pre-image.
pub const RMW_ADD: ProcId = ProcId(1);
/// Blind single-key put / insert / delete (no reads at all); exercises
/// the checker's insert/delete outcome validation.
pub const BLIND: ProcId = ProcId(2);
/// Two-key read-modify-write transfer (`from -= amount, to += amount`,
/// wrapping); exercises multi-key lock sets under contention.
pub const TRANSFER: ProcId = ProcId(3);

fn val_u64(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = v.len().min(8);
    b[..n].copy_from_slice(&v[..n]);
    u64::from_le_bytes(b)
}

fn enc(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Builds [`RMW_ADD`] parameters.
pub fn rmw_add_params(key: u64, delta: u64) -> Arc<[u8]> {
    Writer::new().u64(key).u64(delta).finish()
}

/// Builds [`BLIND`] parameters: `op` 0 = put, 1 = insert, 2 = delete.
pub fn blind_params(op: u32, key: u64, value: u64) -> Arc<[u8]> {
    Writer::new().u32(op).u64(key).u64(value).finish()
}

/// Builds [`TRANSFER`] parameters.
pub fn transfer_params(from: u64, to: u64, amount: u64) -> Arc<[u8]> {
    Writer::new().u64(from).u64(to).u64(amount).finish()
}

struct RmwAddProc;

impl Procedure for RmwAddProc {
    fn id(&self) -> ProcId {
        RMW_ADD
    }
    fn name(&self) -> &'static str {
        "conform-rmw-add"
    }
    fn locks(&self, params: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(params);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, params: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(params);
        let key = Key(r.u64()?);
        let delta = r.u64()?;
        match ops.get(key) {
            Some(v) => ops.put(key, &enc(val_u64(&v).wrapping_add(delta))),
            None => {
                ops.insert(key, &enc(delta));
            }
        }
        Ok(())
    }
}

struct BlindProc;

impl Procedure for BlindProc {
    fn id(&self) -> ProcId {
        BLIND
    }
    fn name(&self) -> &'static str {
        "conform-blind"
    }
    fn locks(&self, params: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(params);
        let op = r.u32()?;
        if op > 2 {
            return Err(AbortReason::BadParams(format!("blind op {op}")));
        }
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, params: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(params);
        let op = r.u32()?;
        let key = Key(r.u64()?);
        let value = r.u64()?;
        match op {
            // Upsert without reading: `put` requires the key to exist, so
            // probe with `insert` (which observes presence, not the value)
            // and overwrite on duplicate. Still blind — no value is read.
            0 => {
                if !ops.insert(key, &enc(value)) {
                    ops.put(key, &enc(value));
                }
            }
            1 => {
                ops.insert(key, &enc(value));
            }
            2 => {
                ops.delete(key);
            }
            _ => return Err(AbortReason::BadParams(format!("blind op {op}"))),
        }
        Ok(())
    }
}

struct TransferProc;

impl Procedure for TransferProc {
    fn id(&self) -> ProcId {
        TRANSFER
    }
    fn name(&self) -> &'static str {
        "conform-transfer"
    }
    fn locks(&self, params: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(params);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?), Key(r.u64()?)],
        })
    }
    fn run(&self, params: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(params);
        let from = Key(r.u64()?);
        let to = Key(r.u64()?);
        let amount = r.u64()?;
        let upsert = |ops: &mut dyn TxnOps, key: Key, v: u64| {
            if !ops.insert(key, &enc(v)) {
                ops.put(key, &enc(v));
            }
        };
        let f = ops.get(from).map(|v| val_u64(&v)).unwrap_or(0);
        upsert(ops, from, f.wrapping_sub(amount));
        // Re-read `to` *after* the `from` write so self-transfers
        // (from == to) stay deterministic.
        let t = ops.get(to).map(|v| val_u64(&v)).unwrap_or(0);
        upsert(ops, to, t.wrapping_add(amount));
        Ok(())
    }
}

/// Registers all three conform procedures.
pub fn register_all(registry: &mut ProcRegistry) {
    registry.register(Arc::new(RmwAddProc));
    registry.register(Arc::new(BlindProc));
    registry.register(Arc::new(TransferProc));
}
