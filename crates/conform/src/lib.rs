//! Concurrency conformance harness for the CALC database.
//!
//! `calc-sim` proves crash-durability for *serial* executions; this crate
//! closes the concurrency gap. The engine's worker pool runs strict 2PL
//! (deadlock-free, Calvin-style up-front lock sets), so the commit-token
//! order produced by the commit log must be a *valid serial order*: an
//! offline replay of every committed transaction's recorded operations,
//! in commit-sequence order against a plain `BTreeMap`, must reproduce
//! every read each transaction actually observed. And the paper's central
//! claim — a checkpoint is a *consistent virtual point* of that order —
//! becomes operational: materializing a checkpoint file must yield
//! exactly the replayed state at the checkpoint's watermark.
//!
//! Ingredients:
//!
//! * `calc-engine`'s feature-gated history recorder
//!   ([`calc_engine::recorder`]) captures per-transaction read sets
//!   (key + observed value), write sets, and phase stamps.
//! * [`checker`] — the offline serial-model replay plus checkpoint
//!   materialization (full files replace the model image; partial files
//!   apply values and tombstones on top of their base chain).
//! * [`stress`] — multi-threaded scenarios (hot-key RMW chains, blind
//!   writes, checkpoint-under-contention, TPC-C mix) run with
//!   [`calc_common::perturb`] seeded schedule jitter at lock
//!   grant/release, stable-version install, and phase transitions.
//! * the mutation smoke test (`tests/mutation_smoke.rs`) arms each
//!   seeded bug in [`calc_common::mutation`] and asserts the checker
//!   reports a violation — the oracle has teeth.
//!
//! Reproduce any reported failure with `CONFORM_SEED=<seed> cargo test
//! -p calc-conform` (aliased as `cargo verify-conform`).

#![warn(missing_docs)]

pub mod checker;
pub mod procs;
pub mod stress;

pub use checker::{check, ConformInput, ConformReport, Violation};
pub use stress::{run_stress, run_stress_mutated, Scenario, StressSpec};

/// Base seed for the stress suite, overridable for replay with
/// `CONFORM_SEED=<u64>` (decimal or `0x`-hex).
pub fn base_seed() -> u64 {
    match std::env::var("CONFORM_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("CONFORM_SEED not a u64: {s:?}"))
        }
        Err(_) => 0xC0F0_2026_0000_0000,
    }
}
