//! The offline conformance checker: serial-model replay of a recorded
//! history plus checkpoint materialization.
//!
//! Strict 2PL makes the commit-sequence order a valid serial order, so:
//!
//! 1. Replaying every committed transaction's operations in commit order
//!    against a `BTreeMap` must reproduce each observed read exactly
//!    (operations replay in intra-transaction order, so
//!    read-your-own-writes falls out naturally).
//! 2. A checkpoint whose strategy claims transaction consistency must
//!    materialize to *exactly* the model state after all commits with
//!    `seq <= watermark` and none after — the paper's "consistent
//!    virtual point". Full files replace the materialized image; partial
//!    files apply values and tombstones on top of their base chain, in
//!    file order.

use std::collections::BTreeMap;
use std::fmt;

use calc_common::types::{CommitSeq, Value};
use calc_core::file::{CheckpointKind, RecordEntry};
use calc_core::manifest::CheckpointMeta;
use calc_engine::recorder::{RecordedHistory, RecordedOp, RecordedTxn};
use calc_txn::proc::ProcId;

/// Everything the checker consumes from one engine run.
pub struct ConformInput {
    /// Initial state + committed transactions from the history recorder.
    pub history: RecordedHistory,
    /// Every checkpoint the run published, from `CheckpointDir::scan()`.
    pub checkpoints: Vec<CheckpointMeta>,
    /// Whether to assert checkpoint state equals the model at the
    /// watermark. `false` for strategies that are *not* transaction-
    /// consistent (Fuzzy): their files interleave mid-transaction states
    /// by design and only become consistent after log replay.
    pub check_checkpoint_state: bool,
    /// Procedures whose reads are exempt from serial-order checking.
    /// TPC-C's StockLevel reads stock rows under only a district lock —
    /// the spec explicitly permits relaxed isolation there, and the
    /// workload exploits that.
    pub relaxed_procs: Vec<ProcId>,
}

/// A conformance violation: the history is not serializable in commit
/// order, or a checkpoint is not a consistent virtual point of it.
#[derive(Clone, Debug)]
pub struct Violation(pub String);

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Violation {}

fn violation(msg: impl Into<String>) -> Violation {
    Violation(msg.into())
}

/// What a passing check actually covered.
#[derive(Clone, Debug, Default)]
pub struct ConformReport {
    /// Committed transactions replayed.
    pub txns: usize,
    /// Reads compared against the serial model.
    pub reads_checked: usize,
    /// Writes (put/insert/delete) applied to the model.
    pub writes_applied: usize,
    /// Checkpoints materialized and (when applicable) state-compared.
    pub checkpoints_verified: usize,
    /// Records compared during checkpoint state equality checks.
    pub checkpoint_records_compared: usize,
}

fn fmt_value(v: Option<&Value>) -> String {
    match v {
        None => "<absent>".into(),
        Some(v) if v.len() <= 16 => format!("0x{}", hex(v)),
        Some(v) => format!("0x{}..(len {})", hex(&v[..16]), v.len()),
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Runs the full conformance check. Returns what was covered, or the
/// first violation found.
pub fn check(input: ConformInput) -> Result<ConformReport, Violation> {
    let ConformInput {
        history,
        checkpoints,
        check_checkpoint_state,
        relaxed_procs,
    } = input;
    let mut report = ConformReport::default();
    let mut model: BTreeMap<u64, Value> = history.initial;

    // Materialization must walk checkpoints in id order; the commit-order
    // walk needs watermark order. They must agree, or the run itself is
    // broken (a later checkpoint claiming an earlier virtual point).
    let mut cks = checkpoints;
    cks.sort_by_key(|m| (m.id, matches!(m.kind, CheckpointKind::Partial)));
    for pair in cks.windows(2) {
        if pair[1].watermark < pair[0].watermark {
            return Err(violation(format!(
                "checkpoint id {} (watermark {}) precedes id {} (watermark {}): \
                 watermarks regress in id order",
                pair[0].id, pair[0].watermark, pair[1].id, pair[1].watermark,
            )));
        }
    }

    let mut materialized: Option<BTreeMap<u64, Value>> = None;
    let mut ck_idx = 0usize;
    let mut last_seq = CommitSeq::ZERO;

    for txn in &history.txns {
        if txn.seq <= last_seq {
            return Err(violation(format!(
                "commit sequences not strictly increasing: {} after {last_seq} \
                 ({} recorded twice or log corrupted)",
                txn.seq, txn.txn,
            )));
        }
        last_seq = txn.seq;
        // A commit with seq <= watermark is inside the checkpoint, so a
        // checkpoint is verified once the next commit passes its
        // watermark (and any leftovers after the last commit).
        while ck_idx < cks.len() && cks[ck_idx].watermark < txn.seq {
            verify_checkpoint(
                &cks[ck_idx],
                &model,
                &mut materialized,
                check_checkpoint_state,
                &mut report,
            )?;
            ck_idx += 1;
        }
        apply_txn(txn, &mut model, &relaxed_procs, &mut report)?;
        report.txns += 1;
    }
    while ck_idx < cks.len() {
        verify_checkpoint(
            &cks[ck_idx],
            &model,
            &mut materialized,
            check_checkpoint_state,
            &mut report,
        )?;
        ck_idx += 1;
    }
    Ok(report)
}

fn apply_txn(
    txn: &RecordedTxn,
    model: &mut BTreeMap<u64, Value>,
    relaxed_procs: &[ProcId],
    report: &mut ConformReport,
) -> Result<(), Violation> {
    let relaxed = relaxed_procs.contains(&txn.proc);
    for (i, op) in txn.ops.iter().enumerate() {
        match op {
            RecordedOp::Get { key, observed } => {
                if relaxed {
                    continue;
                }
                let expected = model.get(&key.0);
                if expected != observed.as_ref() {
                    return Err(violation(format!(
                        "serializability violation: {} (seq {}, proc {:?}, op {i}) read \
                         key {} = {} but the serial model (commit order) says {} — \
                         started {}, committed {}",
                        txn.txn,
                        txn.seq,
                        txn.proc,
                        key,
                        fmt_value(observed.as_ref()),
                        fmt_value(expected),
                        txn.start,
                        txn.commit,
                    )));
                }
                report.reads_checked += 1;
            }
            RecordedOp::Put { key, value } => {
                model.insert(key.0, value.clone());
                report.writes_applied += 1;
            }
            RecordedOp::Insert {
                key,
                value,
                inserted,
            } => {
                let present = model.contains_key(&key.0);
                if *inserted == present {
                    return Err(violation(format!(
                        "serializability violation: {} (seq {}, op {i}) insert of key {} \
                         reported {} but the key is {} in the serial model",
                        txn.txn,
                        txn.seq,
                        key,
                        if *inserted { "success" } else { "duplicate" },
                        if present { "present" } else { "absent" },
                    )));
                }
                if *inserted {
                    model.insert(key.0, value.clone());
                }
                report.writes_applied += 1;
            }
            RecordedOp::Delete { key, deleted } => {
                let present = model.contains_key(&key.0);
                if *deleted != present {
                    return Err(violation(format!(
                        "serializability violation: {} (seq {}, op {i}) delete of key {} \
                         reported {} but the key is {} in the serial model",
                        txn.txn,
                        txn.seq,
                        key,
                        if *deleted { "removed" } else { "not found" },
                        if present { "present" } else { "absent" },
                    )));
                }
                if *deleted {
                    model.remove(&key.0);
                }
                report.writes_applied += 1;
            }
        }
    }
    Ok(())
}

fn verify_checkpoint(
    meta: &CheckpointMeta,
    model: &BTreeMap<u64, Value>,
    materialized: &mut Option<BTreeMap<u64, Value>>,
    check_state: bool,
    report: &mut ConformReport,
) -> Result<(), Violation> {
    let entries = meta
        .read_all()
        .map_err(|e| violation(format!("checkpoint id {} unreadable: {e}", meta.id)))?;
    match meta.kind {
        CheckpointKind::Full => {
            let mut image = BTreeMap::new();
            for e in entries {
                match e {
                    RecordEntry::Value(k, v) => {
                        image.insert(k.0, v);
                    }
                    RecordEntry::Tombstone(k) => {
                        return Err(violation(format!(
                            "full checkpoint id {} contains a tombstone for key {k}",
                            meta.id
                        )));
                    }
                }
            }
            *materialized = Some(image);
        }
        CheckpointKind::Partial => {
            let Some(image) = materialized.as_mut() else {
                return Err(violation(format!(
                    "partial checkpoint id {} has no full ancestor to apply onto",
                    meta.id
                )));
            };
            for e in entries {
                match e {
                    RecordEntry::Value(k, v) => {
                        image.insert(k.0, v);
                    }
                    RecordEntry::Tombstone(k) => {
                        image.remove(&k.0);
                    }
                }
            }
        }
    }
    if check_state {
        let image = materialized.as_ref().expect("set above");
        compare_states(meta, image, model, report)?;
    }
    report.checkpoints_verified += 1;
    Ok(())
}

/// Asserts the materialized checkpoint image equals the serial model at
/// the watermark, reporting up to three sample divergences.
fn compare_states(
    meta: &CheckpointMeta,
    image: &BTreeMap<u64, Value>,
    model: &BTreeMap<u64, Value>,
    report: &mut ConformReport,
) -> Result<(), Violation> {
    let mut diffs: Vec<String> = Vec::new();
    for (k, img_v) in image {
        match model.get(k) {
            Some(m) if m == img_v => {}
            other => diffs.push(format!(
                "key {k}: checkpoint has {}, model has {}",
                fmt_value(Some(img_v)),
                fmt_value(other),
            )),
        }
        if diffs.len() >= 3 {
            break;
        }
    }
    if diffs.len() < 3 {
        for (k, m_v) in model {
            if !image.contains_key(k) {
                diffs.push(format!(
                    "key {k}: model has {}, checkpoint omits it",
                    fmt_value(Some(m_v)),
                ));
                if diffs.len() >= 3 {
                    break;
                }
            }
        }
    }
    if !diffs.is_empty() {
        return Err(violation(format!(
            "checkpoint id {} ({:?}) is not a consistent virtual point at watermark {}: \
             {} records in file image vs {} in model; e.g. {}",
            meta.id,
            meta.kind,
            meta.watermark,
            image.len(),
            model.len(),
            diffs.join("; "),
        )));
    }
    report.checkpoint_records_compared += image.len();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_common::types::{Key, TxnId};
    use calc_txn::commitlog::PhaseStamp;

    fn stamp() -> PhaseStamp {
        PhaseStamp {
            cycle: 0,
            phase: calc_common::Phase::Rest,
        }
    }

    fn txn(seq: u64, ops: Vec<RecordedOp>) -> RecordedTxn {
        RecordedTxn {
            seq: CommitSeq(seq),
            txn: TxnId(seq),
            proc: ProcId(1),
            start: stamp(),
            commit: stamp(),
            ops,
        }
    }

    fn val(x: u64) -> Value {
        x.to_le_bytes().into()
    }

    #[test]
    fn clean_history_passes() {
        let history = RecordedHistory {
            initial: BTreeMap::from([(1, val(10))]),
            txns: vec![
                txn(
                    1,
                    vec![
                        RecordedOp::Get {
                            key: Key(1),
                            observed: Some(val(10)),
                        },
                        RecordedOp::Put {
                            key: Key(1),
                            value: val(11),
                        },
                    ],
                ),
                txn(
                    2,
                    vec![RecordedOp::Get {
                        key: Key(1),
                        observed: Some(val(11)),
                    }],
                ),
            ],
        };
        let report = check(ConformInput {
            history,
            checkpoints: vec![],
            check_checkpoint_state: true,
            relaxed_procs: vec![],
        })
        .unwrap();
        assert_eq!(report.txns, 2);
        assert_eq!(report.reads_checked, 2);
        assert_eq!(report.writes_applied, 1);
    }

    #[test]
    fn stale_read_is_flagged() {
        let history = RecordedHistory {
            initial: BTreeMap::from([(1, val(10))]),
            txns: vec![
                txn(
                    1,
                    vec![RecordedOp::Put {
                        key: Key(1),
                        value: val(11),
                    }],
                ),
                // Reads the pre-image after txn 1 committed: lost-update
                // shape, must be flagged.
                txn(
                    2,
                    vec![RecordedOp::Get {
                        key: Key(1),
                        observed: Some(val(10)),
                    }],
                ),
            ],
        };
        let err = check(ConformInput {
            history,
            checkpoints: vec![],
            check_checkpoint_state: true,
            relaxed_procs: vec![],
        })
        .unwrap_err();
        assert!(err.0.contains("serializability violation"), "{err}");
    }

    #[test]
    fn read_your_own_writes_is_not_a_violation() {
        let history = RecordedHistory {
            initial: BTreeMap::new(),
            txns: vec![txn(
                1,
                vec![
                    RecordedOp::Insert {
                        key: Key(5),
                        value: val(1),
                        inserted: true,
                    },
                    RecordedOp::Get {
                        key: Key(5),
                        observed: Some(val(1)),
                    },
                    RecordedOp::Delete {
                        key: Key(5),
                        deleted: true,
                    },
                    RecordedOp::Get {
                        key: Key(5),
                        observed: None,
                    },
                ],
            )],
        };
        check(ConformInput {
            history,
            checkpoints: vec![],
            check_checkpoint_state: true,
            relaxed_procs: vec![],
        })
        .unwrap();
    }

    #[test]
    fn relaxed_proc_reads_are_exempt() {
        let mut t = txn(
            1,
            vec![RecordedOp::Get {
                key: Key(1),
                observed: Some(val(999)), // wildly stale
            }],
        );
        t.proc = ProcId(42);
        let history = RecordedHistory {
            initial: BTreeMap::from([(1, val(10))]),
            txns: vec![t],
        };
        check(ConformInput {
            history,
            checkpoints: vec![],
            check_checkpoint_state: true,
            relaxed_procs: vec![ProcId(42)],
        })
        .unwrap();
    }

    #[test]
    fn duplicate_sequence_is_flagged() {
        let history = RecordedHistory {
            initial: BTreeMap::new(),
            txns: vec![txn(3, vec![]), txn(3, vec![])],
        };
        let err = check(ConformInput {
            history,
            checkpoints: vec![],
            check_checkpoint_state: true,
            relaxed_procs: vec![],
        })
        .unwrap_err();
        assert!(err.0.contains("strictly increasing"), "{err}");
    }
}
