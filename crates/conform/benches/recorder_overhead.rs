//! Spot-check of the history recorder's overhead.
//!
//! Default release builds compile the recorder out entirely (the
//! `conform` feature is off outside this crate), so the interesting
//! question is the residual cost *within* a conform build: detached
//! (`recorder: None`, one `Option` check per operation) vs attached
//! (clone every observed value + one mutex push per commit). Run with
//! `cargo bench -p calc-conform` and compare the two lines.

use std::sync::Arc;

use calc_engine::recorder::HistoryRecorder;
use calc_engine::{Database, EngineConfig, StrategyKind};
use calc_txn::proc::ProcRegistry;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn open(attach_recorder: bool, name: &str) -> (Database, Option<Arc<HistoryRecorder>>) {
    let dir = std::env::temp_dir().join(format!(
        "calc-conform-bench-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut registry = ProcRegistry::new();
    calc_conform::procs::register_all(&mut registry);
    let mut config = EngineConfig::new(StrategyKind::Calc, 2048, 16, dir);
    config.workers = 2;
    let recorder = attach_recorder.then(|| Arc::new(HistoryRecorder::new()));
    config.recorder = recorder.clone();
    let db = Database::open(config, registry).unwrap();
    for k in 0..1024u64 {
        db.load_initial(k.into(), &k.to_le_bytes()).unwrap();
    }
    db.finalize_load(false).unwrap();
    (db, recorder)
}

fn bench_recorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder_overhead");
    g.throughput(Throughput::Elements(1));
    for (label, attach) in [("detached", false), ("attached", true)] {
        let (db, _recorder) = open(attach, label);
        let mut k = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                k = (k + 7919) % 1024;
                db.execute(
                    calc_conform::procs::RMW_ADD,
                    calc_conform::procs::rmw_add_params(k, 1),
                )
            })
        });
        db.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_recorder);
criterion_main!(benches);
