//! Scenario coverage beyond the strategy matrix: hot-key RMW chains,
//! blind writes, and the full TPC-C mix, each on a representative
//! strategy subset.

use calc_conform::{base_seed, run_stress, Scenario, StressSpec};
use calc_engine::StrategyKind;

#[test]
fn hot_key_rmw_chains() {
    let base = base_seed();
    for (i, kind) in [StrategyKind::Calc, StrategyKind::PIpp, StrategyKind::Fuzzy]
        .into_iter()
        .enumerate()
    {
        let seed = base ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let report = run_stress(&StressSpec::new(kind, Scenario::HotKeyRmw, seed));
        // 70% of traffic reads before writing — the read-check must have
        // real coverage.
        assert!(report.reads_checked > 500, "{report:?}");
    }
}

#[test]
fn blind_writes() {
    let base = base_seed();
    for (i, kind) in [
        StrategyKind::PCalc,
        StrategyKind::Zigzag,
        StrategyKind::PFuzzy,
    ]
    .into_iter()
    .enumerate()
    {
        let seed = base ^ (i as u64 + 11).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let report = run_stress(&StressSpec::new(kind, Scenario::BlindWrites, seed));
        assert!(report.writes_applied > 900, "{report:?}");
    }
}

#[test]
fn tpcc_full_mix_under_checkpointing() {
    let base = base_seed();
    for (i, kind) in [StrategyKind::Calc, StrategyKind::PCalc]
        .into_iter()
        .enumerate()
    {
        let seed = base ^ (i as u64 + 23).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut spec = StressSpec::new(kind, Scenario::TpccMix, seed);
        spec.txns_per_feeder = 150;
        let report = run_stress(&spec);
        assert!(report.txns > 400, "{report:?}");
        assert!(report.reads_checked > 1000, "{report:?}");
    }
}
