//! The acceptance matrix: every checkpointing strategy, full and partial,
//! survives the checkpoint-under-contention scenario at three seeds.
//!
//! Each run hammers the engine from 4 feeder threads under seeded
//! schedule perturbation while the driver takes back-to-back checkpoints,
//! then replays the recorded history through the serial-model checker and
//! materializes every published checkpoint file.
//!
//! Reproduce a failure with `CONFORM_SEED=<seed from the panic message>
//! cargo test -p calc-conform` (the three seeds are derived from the base
//! seed, so overriding the base replays all of them shifted).

use calc_conform::{base_seed, run_stress, Scenario, StressSpec};
use calc_engine::StrategyKind;

fn seeds() -> [u64; 3] {
    let base = base_seed();
    [base, base ^ 0x9E37_79B9_7F4A_7C15, base ^ 0x6A09_E667_F3BC_C909]
}

fn matrix(kind: StrategyKind) {
    for seed in seeds() {
        let report = run_stress(&StressSpec::new(kind, Scenario::CheckpointContention, seed));
        assert!(report.txns > 0);
        assert!(report.checkpoints_verified > 1, "{report:?}");
    }
}

#[test]
fn calc_full() {
    matrix(StrategyKind::Calc);
}

#[test]
fn calc_partial() {
    matrix(StrategyKind::PCalc);
}

#[test]
fn naive_full() {
    matrix(StrategyKind::Naive);
}

#[test]
fn naive_partial() {
    matrix(StrategyKind::PNaive);
}

#[test]
fn fuzzy_full() {
    matrix(StrategyKind::Fuzzy);
}

#[test]
fn fuzzy_partial() {
    matrix(StrategyKind::PFuzzy);
}

#[test]
fn ipp_full() {
    matrix(StrategyKind::Ipp);
}

#[test]
fn ipp_partial() {
    matrix(StrategyKind::PIpp);
}

#[test]
fn zigzag_full() {
    matrix(StrategyKind::Zigzag);
}

#[test]
fn zigzag_partial() {
    matrix(StrategyKind::PZigzag);
}
