//! Mutation smoke test: arm each seeded bug and assert the checker
//! catches it — an oracle that cannot fail has no value.
//!
//! Three bugs ship behind the `mutation-hooks` feature (runtime-armed,
//! default off):
//!
//! * `SkipLock` — the lock manager grants every lock in shared mode, so
//!   exclusive owners race. Hot-key RMW chains then lose updates, which
//!   the serial-model read check flags.
//! * `StaleStableRead` — reads return the checkpoint-stable version when
//!   one is installed instead of the live version. Under back-to-back
//!   CALC checkpoints an RMW chain reads its own pre-image.
//! * `LatePhaseStamp` — a commit racing the PREPARE→RESOLVE transition
//!   is stamped on the wrong side of the virtual point of consistency,
//!   so CALC keeps a provisional pre-image it should discard and the
//!   checkpoint diverges from the serial model at its watermark.
//!
//! Detection of a schedule-dependent bug on one fixed seed is not
//! guaranteed, so each mutation gets a handful of derived seeds and must
//! be caught on at least one (in practice: the first). A clean control
//! run on the same spec asserts zero false positives.

use calc_common::mutation::Mutation;
use calc_conform::{base_seed, run_stress, run_stress_mutated, Scenario, StressSpec};
use calc_engine::StrategyKind;

const TRIES: u64 = 5;

fn spec_for(mutation: Mutation, seed: u64) -> StressSpec {
    match mutation {
        // Pure lock-contention bug: the hottest scenario finds it fastest.
        Mutation::SkipLock => StressSpec::new(StrategyKind::Calc, Scenario::HotKeyRmw, seed),
        // Needs stable versions installed (CALC dual store) and reads
        // landing inside checkpoint windows.
        Mutation::StaleStableRead => {
            StressSpec::new(StrategyKind::Calc, Scenario::CheckpointContention, seed)
        }
        // Needs commits racing the PREPARE→RESOLVE transition.
        Mutation::LatePhaseStamp => {
            StressSpec::new(StrategyKind::Calc, Scenario::CheckpointContention, seed)
        }
    }
}

fn assert_detected(mutation: Mutation) {
    let base = base_seed();
    let mut caught = None;
    for i in 0..TRIES {
        let seed = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let spec = spec_for(mutation, seed);
        match run_stress_mutated(&spec, mutation) {
            Err(v) => {
                caught = Some((seed, v));
                break;
            }
            Ok(report) => {
                eprintln!(
                    "{} escaped seed {seed:#x} ({} txns, {} reads checked, {} checkpoints)",
                    mutation.name(),
                    report.txns,
                    report.reads_checked,
                    report.checkpoints_verified,
                );
            }
        }
    }
    let (seed, violation) = caught.unwrap_or_else(|| {
        panic!(
            "false negative: mutation {} escaped the checker on all {TRIES} seeds",
            mutation.name()
        )
    });
    eprintln!("{} caught at seed {seed:#x}: {violation}", mutation.name());

    // Zero false positives: the identical spec without the mutation is
    // clean (panics inside run_stress otherwise).
    run_stress(&spec_for(mutation, seed));
}

#[test]
fn skip_lock_is_detected() {
    // Under the shard-owned executor the lock manager is off the
    // execution path entirely — owner serialism and cross-shard fences
    // isolate transactions — so sabotaging lock grants must change
    // nothing. Assert exactly that: every seed stays clean. (A caught
    // violation here would mean the owned path started consulting the
    // lock manager it claims not to need.) The detection assertion runs
    // in pool mode, where locks are the isolation mechanism.
    if calc_engine::ExecutorMode::from_env() == calc_engine::ExecutorMode::ShardOwned {
        let base = base_seed();
        for i in 0..TRIES {
            let seed = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let spec = spec_for(Mutation::SkipLock, seed);
            if let Err(v) = run_stress_mutated(&spec, Mutation::SkipLock) {
                panic!(
                    "shard-owned execution must not depend on the lock \
                     manager, but sabotaged lock grants produced {v} at \
                     seed {seed:#x}"
                );
            }
        }
        return;
    }
    assert_detected(Mutation::SkipLock);
}

#[test]
fn stale_stable_read_is_detected() {
    assert_detected(Mutation::StaleStableRead);
}

#[test]
fn late_phase_stamp_is_detected() {
    assert_detected(Mutation::LatePhaseStamp);
}
