//! End-to-end standby tests over the real filesystem: a mini primary
//! (direct strategy calls + a segmented log writer, the sim driver's
//! serial idiom) feeds durable state to a [`Standby`] tailing the same
//! directories.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use calc_common::types::{Key, TxnId};
use calc_common::vfs::{OsVfs, Vfs};
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::{CheckpointStrategy, NoopEnv};
use calc_core::throttle::Throttle;
use calc_engine::{Database, EngineConfig, StandbyOf, StrategyKind, TxnOutcome};
use calc_recovery::{truncate_segments_below, SegmentedLogWriter};
use calc_replica::{Standby, StandbyConfig, StandbyRunner};
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::{CommitLog, CommitRecord};
use calc_txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};

const SET: ProcId = ProcId(7);
const DELETE: ProcId = ProcId(8);

struct SetProc;
impl Procedure for SetProc {
    fn id(&self) -> ProcId {
        SET
    }
    fn name(&self) -> &'static str {
        "standby-set"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let val = r.bytes()?;
        if ops.get(key).is_some() {
            ops.put(key, val);
        } else {
            ops.insert(key, val);
        }
        Ok(())
    }
}

struct DeleteProc;
impl Procedure for DeleteProc {
    fn id(&self) -> ProcId {
        DELETE
    }
    fn name(&self) -> &'static str {
        "standby-delete"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        ops.delete(Key(r.u64()?));
        Ok(())
    }
}

fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(SetProc));
    r.register(Arc::new(DeleteProc));
    r
}

fn store_config() -> StoreConfig {
    StoreConfig::for_records(1024, 64)
}

fn tmp(name: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!(
        "calc-standby-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    (base.join("ckpts"), base.join("cmdlog"))
}

/// A serial mini-primary: same durable footprint as the engine
/// (checkpoint dir + segmented command log), driven directly.
struct Primary {
    dir: CheckpointDir,
    strategy: Arc<dyn CheckpointStrategy>,
    log: Arc<CommitLog>,
    writer: SegmentedLogWriter,
    next_txn: u64,
}

impl Primary {
    fn open(
        vfs: Arc<dyn Vfs>,
        ckpt_dir: &Path,
        log_dir: &Path,
        segment_bytes: u64,
    ) -> Self {
        let dir =
            CheckpointDir::open_with_vfs(ckpt_dir, Arc::new(Throttle::unlimited()), vfs.clone())
                .unwrap();
        let log = Arc::new(CommitLog::new(false));
        let strategy = StrategyKind::Calc.build(store_config(), log.clone());
        let writer = SegmentedLogWriter::create(vfs, log_dir, segment_bytes).unwrap();
        Primary {
            dir,
            strategy,
            log,
            writer,
            next_txn: 0,
        }
    }

    fn commit(&mut self, proc: ProcId, p: Arc<[u8]>) -> u64 {
        let reg = registry();
        let procedure = reg.get(proc).unwrap();
        struct Bridge<'a> {
            strategy: &'a dyn CheckpointStrategy,
            token: calc_core::strategy::TxnToken,
        }
        impl TxnOps for Bridge<'_> {
            fn get(&mut self, key: Key) -> Option<calc_common::types::Value> {
                self.strategy.get(key)
            }
            fn put(&mut self, key: Key, value: &[u8]) {
                self.strategy.apply_write(&mut self.token, key, value).unwrap();
            }
            fn insert(&mut self, key: Key, value: &[u8]) -> bool {
                self.strategy.apply_insert(&mut self.token, key, value).unwrap()
            }
            fn delete(&mut self, key: Key) -> bool {
                self.strategy.apply_delete(&mut self.token, key).is_ok()
            }
        }
        let mut bridge = Bridge {
            strategy: self.strategy.as_ref(),
            token: self.strategy.txn_begin(),
        };
        procedure.run(&p, &mut bridge).unwrap();
        let mut token = bridge.token;
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let (seq, stamp) = self.log.append_commit(txn, proc, p.clone());
        self.writer
            .append(&CommitRecord {
                seq,
                txn,
                proc,
                params: p,
            })
            .unwrap();
        self.strategy.on_commit(&mut token, seq, stamp);
        self.strategy.txn_end(token);
        seq.0
    }

    fn set(&mut self, key: u64, val: &[u8]) -> u64 {
        self.commit(SET, params::Writer::new().u64(key).bytes(val).finish())
    }

    fn delete(&mut self, key: u64) -> u64 {
        self.commit(DELETE, params::Writer::new().u64(key).finish())
    }

    fn sync(&mut self) {
        self.writer.sync().unwrap();
    }

    fn checkpoint(&self) -> u64 {
        self.strategy.checkpoint(&NoopEnv, &self.dir).unwrap().watermark.0
    }
}

fn standby_config(ckpt_dir: &Path, log_dir: &Path) -> StandbyConfig {
    StandbyConfig::new(
        StrategyKind::Calc,
        store_config(),
        ckpt_dir.to_path_buf(),
        log_dir.to_path_buf(),
    )
}

#[test]
fn bootstraps_from_chain_then_tails_new_commits() {
    let (ckpt_dir, log_dir) = tmp("bootstrap-tail");
    let mut primary = Primary::open(Arc::new(OsVfs), &ckpt_dir, &log_dir, 1 << 20);
    for k in 0..10u64 {
        primary.set(k, format!("v{k}").as_bytes());
    }
    primary.sync();
    let watermark = primary.checkpoint();

    let mut standby = Standby::open(standby_config(&ckpt_dir, &log_dir), registry()).unwrap();
    // Bootstrapped straight from the checkpoint chain, before any poll.
    assert_eq!(standby.applied_seq(), watermark);
    assert_eq!(standby.record_count(), 10);

    // New commits stream in; polls apply exactly the new suffix (the log
    // still holds the pre-checkpoint prefix, which must be skipped, not
    // re-applied).
    for k in 0..5u64 {
        primary.set(k, b"updated");
    }
    let deleted_at = primary.delete(9);
    primary.sync();
    let poll = standby.poll().unwrap();
    assert_eq!(poll.applied, 6, "only the post-checkpoint suffix applies");
    assert_eq!(poll.applied_seq, deleted_at);
    assert!(!poll.wedged && !poll.rebootstrapped);
    assert_eq!(standby.get(Key(3)).unwrap().as_ref(), b"updated");
    assert_eq!(standby.get(Key(7)).unwrap().as_ref(), b"v7");
    assert!(standby.get(Key(9)).is_none(), "delete must replicate");
    assert_eq!(standby.record_count(), 9);

    // Idle poll: no progress, no noise.
    let idle = standby.poll().unwrap();
    assert_eq!(idle.applied, 0);
    assert_eq!(idle.pending_bytes, 0);

    let health = standby.health();
    assert_eq!(health.standby_applied_seq(), deleted_at);
    assert!(!health.tail_exited());
}

#[test]
fn promote_seals_prefix_and_serves_through_engine() {
    let (ckpt_dir, log_dir) = tmp("promote");
    let mut primary = Primary::open(Arc::new(OsVfs), &ckpt_dir, &log_dir, 1 << 20);
    for k in 0..8u64 {
        primary.set(k, format!("p{k}").as_bytes());
    }
    primary.sync();
    primary.checkpoint();
    let last = {
        let mut last = 0;
        for k in 8..12u64 {
            last = primary.set(k, b"tail");
        }
        primary.sync();
        last
    };
    drop(primary); // primary is dead; its durable state remains

    let mut standby = Standby::open(standby_config(&ckpt_dir, &log_dir), registry()).unwrap();
    standby.poll().unwrap();
    let promoted = standby.promote().unwrap();
    assert_eq!(promoted.watermark(), last);
    assert_eq!(promoted.record_count(), 12);
    assert!(promoted.health().promoted());

    // The promoted node serves through a full engine: new commits land
    // above the sealed watermark, in a fresh log segment.
    let mut config = EngineConfig::new(StrategyKind::Calc, 1024, 64, ckpt_dir.clone());
    config.store = store_config();
    config.workers = 1;
    config.retain_command_log = true;
    config.log_segment_bytes = Some(1 << 20);
    let db = promoted.into_database(config).unwrap();
    let outcome = db.execute(SET, params::Writer::new().u64(100).bytes(b"post").finish());
    match outcome {
        TxnOutcome::Committed(seq) => assert!(
            seq.0 > last,
            "post-promotion commit seq {} must exceed sealed watermark {last}",
            seq.0
        ),
        TxnOutcome::Aborted(r) => panic!("post-promotion txn aborted: {r:?}"),
    }
    assert_eq!(db.get(Key(100)).unwrap().as_ref(), b"post");
    assert_eq!(db.get(Key(3)).unwrap().as_ref(), b"p3");
    assert_eq!(db.record_count(), 13);
    // The promoted engine can checkpoint its inherited state.
    let stats = db.checkpoint_now().unwrap();
    assert!(stats.watermark.0 > last);
    db.shutdown();
}

#[test]
fn promote_opens_fresh_log_segment_above_survivors() {
    let (ckpt_dir, log_dir) = tmp("promote-segment");
    // Tiny segments force rotation so survivors span several indices.
    let mut primary = Primary::open(Arc::new(OsVfs), &ckpt_dir, &log_dir, 512);
    for k in 0..20u64 {
        primary.set(k, &[k as u8; 48]);
    }
    primary.sync();
    primary.checkpoint();
    drop(primary);

    let vfs = OsVfs;
    let before = calc_recovery::logfile::list_segments(&vfs, &log_dir).unwrap();
    let highest = before.last().unwrap().0;

    let mut standby = Standby::open(standby_config(&ckpt_dir, &log_dir), registry()).unwrap();
    standby.poll().unwrap();
    let promoted = standby.promote().unwrap();
    let writer = promoted.open_log(512).unwrap();
    assert!(
        writer.active_index() > highest,
        "fresh segment {} must seal above survivor {highest}",
        writer.active_index()
    );
}

#[test]
fn refuses_non_transaction_consistent_strategies() {
    let (ckpt_dir, log_dir) = tmp("refuse-fuzzy");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let mut cfg = standby_config(&ckpt_dir, &log_dir);
    cfg.kind = StrategyKind::Fuzzy;
    let err = match Standby::open(cfg, registry()) {
        Ok(_) => panic!("fuzzy standby must be refused"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("transaction-consistent"), "{err}");
}

#[test]
fn retention_truncation_behind_cursor_rebootstraps_without_loss() {
    let (ckpt_dir, log_dir) = tmp("retention-rebootstrap");
    let vfs: Arc<dyn Vfs> = Arc::new(OsVfs);
    let mut primary = Primary::open(vfs.clone(), &ckpt_dir, &log_dir, 512);
    // Anchor the standby early, at segment 0.
    for k in 0..4u64 {
        primary.set(k, &[1u8; 48]);
    }
    primary.sync();
    let mut standby = Standby::open(standby_config(&ckpt_dir, &log_dir), registry()).unwrap();
    let first = standby.poll().unwrap();
    assert_eq!(first.applied, 4);

    // The primary races ahead: rotations, a covering checkpoint, then
    // retention deletes every sealed segment below the watermark —
    // including the standby's cursor segment.
    let mut last = 0;
    for k in 4..24u64 {
        last = primary.set(k, &[2u8; 48]);
    }
    primary.sync();
    let watermark = primary.checkpoint();
    // The checkpoint watermark is the Resolve-transition seq — above the
    // last commit (phase markers consume seqs too).
    assert!(watermark > last);
    let stats =
        truncate_segments_below(vfs.as_ref(), &log_dir, calc_common::types::CommitSeq(watermark))
            .unwrap();
    assert!(stats.removed > 0, "retention must actually delete segments");

    // The standby must neither error nor skip: the chain covers
    // everything the deleted segments held, so it re-bootstraps.
    let poll = standby.poll().unwrap();
    assert!(poll.rebootstrapped, "{poll:?}");
    assert_eq!(standby.applied_seq(), watermark);
    assert_eq!(standby.rebootstraps(), 1);
    assert_eq!(standby.record_count(), 24);
    assert_eq!(standby.health().standby_rebootstraps(), 1);
    for k in 0..4u64 {
        assert_eq!(standby.get(Key(k)).unwrap().as_ref(), &[1u8; 48]);
    }

    // And tailing continues normally past the rebuild.
    primary.set(99, b"after");
    primary.sync();
    let next = standby.poll().unwrap();
    assert_eq!(next.applied, 1);
    assert_eq!(standby.get(Key(99)).unwrap().as_ref(), b"after");
}

#[test]
fn retention_truncation_below_applied_leaves_cursor_undisturbed() {
    let (ckpt_dir, log_dir) = tmp("retention-keep");
    let vfs: Arc<dyn Vfs> = Arc::new(OsVfs);
    let mut primary = Primary::open(vfs.clone(), &ckpt_dir, &log_dir, 512);
    let mut last = 0;
    for k in 0..20u64 {
        last = primary.set(k, &[3u8; 48]);
    }
    primary.sync();
    let mut standby = Standby::open(standby_config(&ckpt_dir, &log_dir), registry()).unwrap();
    standby.poll().unwrap();
    assert_eq!(standby.applied_seq(), last);

    // Checkpoint + retention now remove segments the standby has already
    // applied past. A caught-up tailer's cursor sits in the newest
    // segment, which legitimate truncation (strictly below the covering
    // watermark) never deletes: the standby must not even notice.
    let watermark = primary.checkpoint();
    let stats =
        truncate_segments_below(vfs.as_ref(), &log_dir, calc_common::types::CommitSeq(watermark))
            .unwrap();
    assert!(stats.removed > 0, "retention must actually delete segments");
    let poll = standby.poll().unwrap();
    assert!(!poll.rebootstrapped && !poll.wedged, "{poll:?}");
    assert_eq!(standby.rebootstraps(), 0);
    assert_eq!(standby.lost_prefix_events(), 0);
    assert_eq!(standby.record_count(), 20);

    // Tailing continues seamlessly across the retention event.
    primary.set(7, b"fresh");
    primary.sync();
    standby.poll().unwrap();
    assert_eq!(standby.get(Key(7)).unwrap().as_ref(), b"fresh");
}

#[test]
fn abnormal_log_loss_without_covering_checkpoint_keeps_applied_state() {
    // Defensive branch: the cursor's segments vanish but no checkpoint
    // chain covers more than the standby already applied (operator error,
    // or a crash quarantined the covering chain after truncation ran).
    // Rebuilding would LOSE applied commits — the standby must keep its
    // in-memory state and re-anchor, never error.
    let (ckpt_dir, log_dir) = tmp("abnormal-loss");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let mut primary = Primary::open(Arc::new(OsVfs), &ckpt_dir, &log_dir, 512);
    let mut last = 0;
    for k in 0..12u64 {
        last = primary.set(k, &[4u8; 48]);
    }
    primary.sync();
    let mut standby = Standby::open(standby_config(&ckpt_dir, &log_dir), registry()).unwrap();
    standby.poll().unwrap();
    assert_eq!(standby.applied_seq(), last);
    drop(primary);

    // Every segment disappears; no checkpoint was ever written.
    for entry in std::fs::read_dir(&log_dir).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).unwrap();
    }
    let poll = standby.poll().unwrap();
    assert!(!poll.rebootstrapped && !poll.wedged, "{poll:?}");
    assert_eq!(standby.lost_prefix_events(), 1);
    assert_eq!(standby.rebootstraps(), 0);
    assert_eq!(standby.applied_seq(), last, "applied commits must survive");
    assert_eq!(standby.record_count(), 12);
    for k in 0..12u64 {
        assert_eq!(standby.get(Key(k)).unwrap().as_ref(), &[4u8; 48]);
    }
}

#[test]
fn runner_tails_in_background_and_hands_back_for_promotion() {
    let (ckpt_dir, log_dir) = tmp("runner");
    let mut primary = Primary::open(Arc::new(OsVfs), &ckpt_dir, &log_dir, 1 << 20);
    primary.set(1, b"one");
    primary.sync();

    let mut cfg = standby_config(&ckpt_dir, &log_dir);
    cfg.poll_interval = std::time::Duration::from_millis(1);
    let standby = Standby::open(cfg, registry()).unwrap();
    let runner = StandbyRunner::spawn(standby);
    let health = runner.health();

    let last = primary.set(2, b"two");
    primary.sync();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while health.standby_applied_seq() < last {
        assert!(std::time::Instant::now() < deadline, "runner never caught up");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(!health.tail_stalled(), "live heartbeat must disarm watchdog");

    let standby = runner.stop().unwrap();
    let promoted = standby.promote().unwrap();
    assert_eq!(promoted.watermark(), last);
    assert_eq!(promoted.get(Key(2)).unwrap().as_ref(), b"two");
}

#[test]
fn from_engine_requires_and_consumes_standby_of() {
    let (ckpt_dir, log_dir) = tmp("from-engine");
    let own_dir = ckpt_dir.join("own");
    let mut config = EngineConfig::new(StrategyKind::Calc, 128, 64, own_dir);
    assert!(StandbyConfig::from_engine(&config).is_err());
    config.standby_of = Some(StandbyOf::new(ckpt_dir.clone(), log_dir.clone()));
    let cfg = StandbyConfig::from_engine(&config).unwrap();
    assert_eq!(cfg.checkpoint_dir, ckpt_dir);
    assert_eq!(cfg.log_dir, log_dir);
    // And the engine itself refuses to serve over the primary's state.
    let err = Database::open(config, registry()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
