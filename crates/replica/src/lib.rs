//! Warm standby replication: near-instant failover instead of cold
//! recovery.
//!
//! Cold recovery of a 500k-record store costs seconds (checkpoint part
//! load + full log replay) — the availability floor on every crash. A
//! [`Standby`] removes that floor by doing the same work *continuously*,
//! ahead of the failure: it bootstraps from the primary's newest durable
//! checkpoint chain, then tails the segmented command log through a
//! [`LogTailer`], applying each commit deterministically with the exact
//! replay semantics of [`calc_recovery::recover_streamed`]
//! (via [`calc_recovery::apply_commit`]). At failover, [`Standby::promote`]
//! drains whatever trusted bytes remain — typically a handful — seals the
//! applied prefix, and hands back state ready to serve.
//!
//! Everything flows through the [`Vfs`] trait, so the two-node
//! crash-simulation driver (`calc-sim`) runs a primary and a standby over
//! one shared fault-injecting filesystem and proves the consistent-prefix
//! guarantee for the *promotion* path, not just the restart path.
//!
//! ## What the standby tolerates
//!
//! * **In-flight checkpoints.** Parts are fully written and fsynced
//!   before the manifest rename publishes a cycle, and
//!   `CheckpointDir::scan` ignores part files with no manifest — so
//!   scanning a live primary's directory never trips over (or damages)
//!   in-flight captures.
//! * **Torn log tails.** An append in flight looks like a torn record at
//!   the end of the newest segment; the tailer holds its cursor and
//!   re-polls rather than failing (see [`TailStatus::CaughtUp`] with
//!   pending bytes).
//! * **Retention truncation.** When the primary deletes sealed segments
//!   below a checkpoint watermark the standby had not reached, the tailer
//!   reports [`TailStatus::LostPrefix`] and the standby re-bootstraps
//!   from the covering checkpoint — truncation only ever removes commits
//!   a durable *full* checkpoint covers, so nothing is skipped. If the
//!   standby had already applied past the truncation point, it keeps its
//!   (newer) in-memory state and simply re-anchors.
//!
//! Standby lag is surfaced through the engine's [`Health`]: applied
//! watermark, commits/bytes behind, re-bootstrap count, and a classified
//! last tail error backed by a heartbeat watchdog (a dead or wedged tail
//! thread must never look like a healthy, silently frozen standby).

#![warn(missing_docs)]

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use calc_common::types::{CommitSeq, Key, Value};
use calc_common::vfs::{OsVfs, Vfs};
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::CheckpointStrategy;
use calc_core::throttle::Throttle;
use calc_engine::{classify, Database, EngineConfig, ErrorClass, Health, StrategyKind};
use calc_recovery::replay::recover_checkpoint_only;
use calc_recovery::{apply_commit, LogTailer, RecoveryError, TailStatus};
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::CommitLog;
use calc_txn::proc::ProcRegistry;

/// Configuration for a warm standby.
#[derive(Clone)]
pub struct StandbyConfig {
    /// Checkpointing strategy the primary runs (the standby rebuilds the
    /// same strategy so its state survives promotion). Must be
    /// transaction-consistent — fuzzy checkpoints cannot seed
    /// deterministic replay.
    pub kind: StrategyKind,
    /// Store sizing, matching the primary's.
    pub store: StoreConfig,
    /// The primary's checkpoint directory.
    pub checkpoint_dir: PathBuf,
    /// The primary's segmented command-log directory.
    pub log_dir: PathBuf,
    /// Filesystem both nodes share (the real one, or a `SimVfs`).
    pub vfs: Arc<dyn Vfs>,
    /// Parallelism for checkpoint part loading at (re-)bootstrap.
    pub checkpoint_threads: usize,
    /// Poll cadence of the background runner ([`StandbyRunner`]).
    pub poll_interval: Duration,
    /// Consecutive-failure threshold for [`Health`] accounting.
    pub degraded_after: u32,
    /// Tail-heartbeat watchdog budget for [`Health::tail_stalled`].
    pub watchdog: Duration,
}

impl StandbyConfig {
    /// A standby of the primary whose durable state lives at
    /// `checkpoint_dir` + `log_dir`, on the real filesystem.
    pub fn new(
        kind: StrategyKind,
        store: StoreConfig,
        checkpoint_dir: PathBuf,
        log_dir: PathBuf,
    ) -> Self {
        StandbyConfig {
            kind,
            store,
            checkpoint_dir,
            log_dir,
            vfs: Arc::new(OsVfs),
            checkpoint_threads: 1,
            poll_interval: Duration::from_millis(10),
            degraded_after: 3,
            watchdog: Duration::from_secs(30),
        }
    }

    /// Derives a standby config from an [`EngineConfig`] whose
    /// [`EngineConfig::standby_of`] names the primary. Errors if the
    /// field is unset.
    pub fn from_engine(config: &EngineConfig) -> io::Result<Self> {
        let of = config.standby_of.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "EngineConfig::standby_of is not set",
            )
        })?;
        Ok(StandbyConfig {
            kind: config.strategy,
            store: config.store.clone(),
            checkpoint_dir: of.checkpoint_dir.clone(),
            log_dir: of.log_dir.clone(),
            vfs: config.vfs.clone(),
            checkpoint_threads: config.checkpoint_threads,
            poll_interval: of.poll_interval,
            degraded_after: config.checkpoint_tuning.degraded_after,
            watchdog: config.checkpoint_tuning.watchdog,
        })
    }
}

/// Outcome of one [`Standby::poll`].
#[derive(Debug, Clone, Copy)]
pub struct StandbyPoll {
    /// Commits applied by this poll (across any internal re-bootstrap).
    pub applied: u64,
    /// The applied commit-seq watermark after the poll.
    pub applied_seq: u64,
    /// Log bytes beyond the trusted tail (an in-flight append the next
    /// poll will re-read).
    pub pending_bytes: u64,
    /// This poll rebuilt state from the covering checkpoint because
    /// retention truncated below the cursor.
    pub rebootstrapped: bool,
    /// The tail hit a torn record in a *sealed* segment — permanent
    /// trust boundary; the watermark will never advance again.
    pub wedged: bool,
}

/// A warm standby: live, continuously-replaying state tailing a
/// primary's durable checkpoint + command-log directories.
pub struct Standby {
    cfg: StandbyConfig,
    registry: ProcRegistry,
    dir: CheckpointDir,
    strategy: Arc<dyn CheckpointStrategy>,
    log: Arc<CommitLog>,
    tailer: LogTailer,
    health: Arc<Health>,
    /// Highest commit seq applied (checkpoint watermark ∪ replayed tail).
    applied: u64,
    /// Commit watermark of the bootstrap/re-bootstrap checkpoint chain.
    bootstrap_watermark: u64,
    /// Times `LostPrefix` forced a full state rebuild.
    rebootstraps: u64,
    /// Times the tailer reported `LostPrefix` at all (including the
    /// applied-past-truncation case that keeps state).
    lost_prefix_events: u64,
    commits_applied: u64,
    wedged: bool,
}

impl Standby {
    /// Opens a standby: bootstraps state from the newest durable
    /// checkpoint chain (an empty directory is legal — the standby starts
    /// empty and applies the log from the beginning) and positions the
    /// tailer. Refuses non-transaction-consistent strategies, whose
    /// checkpoints cannot seed deterministic replay.
    pub fn open(cfg: StandbyConfig, registry: ProcRegistry) -> io::Result<Self> {
        let dir = CheckpointDir::open_with_vfs(
            &cfg.checkpoint_dir,
            Arc::new(Throttle::unlimited()),
            cfg.vfs.clone(),
        )?;
        dir.set_checkpoint_threads(cfg.checkpoint_threads.max(1));
        let (strategy, log, watermark) = bootstrap(&cfg, &dir)?;
        if !strategy.transaction_consistent() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} checkpoints are not transaction-consistent and cannot \
                     seed a replaying standby",
                    strategy.name()
                ),
            ));
        }
        let health = Arc::new(Health::new(cfg.degraded_after, cfg.watchdog));
        health.record_standby_lag(watermark, 0, 0);
        let tailer = LogTailer::new(cfg.vfs.clone(), &cfg.log_dir);
        Ok(Standby {
            registry,
            dir,
            strategy,
            log,
            tailer,
            health,
            applied: watermark,
            bootstrap_watermark: watermark,
            rebootstraps: 0,
            lost_prefix_events: 0,
            commits_applied: 0,
            wedged: false,
            cfg,
        })
    }

    /// Applies every trusted log byte currently on disk, re-bootstrapping
    /// internally if retention truncated below the cursor. Returns when
    /// caught up (possibly with pending torn-tail bytes) or wedged.
    ///
    /// Errors are recorded in [`Health`] before being returned; a
    /// transient error leaves the cursor wherever the last fully-applied
    /// record put it, so the next poll resumes exactly there.
    pub fn poll(&mut self) -> io::Result<StandbyPoll> {
        let mut total_applied = 0u64;
        let mut rebootstrapped = false;
        loop {
            self.health.tail_heartbeat();
            if self.wedged {
                return Ok(StandbyPoll {
                    applied: total_applied,
                    applied_seq: self.applied,
                    pending_bytes: self.tailer.lag_bytes().unwrap_or(0),
                    rebootstrapped,
                    wedged: true,
                });
            }
            let tailer = &mut self.tailer;
            let strategy = self.strategy.clone();
            let registry = &self.registry;
            let mut applied_seq = self.applied;
            let mut applied_now = 0u64;
            let result = tailer.poll(&mut |rec| {
                if rec.seq.0 <= applied_seq {
                    // Already covered by the bootstrap checkpoint (or by a
                    // pre-LostPrefix apply after a re-anchor).
                    return Ok(());
                }
                apply_commit(strategy.as_ref(), registry, rec)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                applied_seq = rec.seq.0;
                applied_now += 1;
                Ok(())
            });
            self.applied = applied_seq;
            self.commits_applied += applied_now;
            total_applied += applied_now;
            let poll = match result {
                Ok(p) => p,
                Err(e) => {
                    self.health.record_tail_error(classify(&e), &e);
                    return Err(e);
                }
            };
            // `commits_behind` is the lag this poll observed and drained:
            // commits that were waiting in the durable log beyond the
            // applied watermark when the poll started.
            self.health
                .record_standby_lag(self.applied, applied_now, poll.pending_bytes);
            match poll.status {
                TailStatus::CaughtUp => {
                    return Ok(StandbyPoll {
                        applied: total_applied,
                        applied_seq: self.applied,
                        pending_bytes: poll.pending_bytes,
                        rebootstrapped,
                        wedged: false,
                    });
                }
                TailStatus::Wedged => {
                    self.wedged = true;
                    let err = io::Error::new(
                        io::ErrorKind::InvalidData,
                        "torn record in a sealed log segment: tail wedged at the \
                         permanent trust boundary",
                    );
                    self.health.record_tail_exit(ErrorClass::Fatal, &err);
                    return Ok(StandbyPoll {
                        applied: total_applied,
                        applied_seq: self.applied,
                        pending_bytes: poll.pending_bytes,
                        rebootstrapped,
                        wedged: true,
                    });
                }
                TailStatus::LostPrefix => {
                    self.lost_prefix_events += 1;
                    rebootstrapped |= self.handle_lost_prefix()?;
                    // The tailer re-anchors to the smallest surviving
                    // segment on the next loop iteration.
                }
            }
        }
    }

    /// Retention deleted the cursor's segment. Two legal shapes:
    ///
    /// * The covering checkpoint chain is *ahead* of the applied
    ///   watermark — the truncated segments held commits the standby
    ///   never applied, all of them (by the truncation invariant) covered
    ///   by that chain. Rebuild state from the chain.
    /// * The applied watermark is at or past the chain watermark —
    ///   truncation only removed commits the standby already applied
    ///   (segments are deleted strictly below a durable full
    ///   checkpoint's watermark). Keep the newer in-memory state.
    ///
    /// Either way no commit is skipped and no error surfaces.
    fn handle_lost_prefix(&mut self) -> io::Result<bool> {
        let fresh_log = Arc::new(CommitLog::new(false));
        let fresh = self.cfg.kind.build(self.cfg.store.clone(), fresh_log.clone());
        match recover_checkpoint_only(&self.dir, fresh.as_ref()) {
            Ok(outcome) if outcome.watermark.0 > self.applied => {
                self.strategy = fresh;
                self.log = fresh_log;
                self.applied = outcome.watermark.0;
                self.bootstrap_watermark = outcome.watermark.0;
                self.rebootstraps += 1;
                self.health.record_standby_rebootstrap();
                self.health.record_standby_lag(self.applied, 0, 0);
                Ok(true)
            }
            Ok(_) | Err(RecoveryError::NoFullCheckpoint) => Ok(false),
            Err(RecoveryError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Point-reads the standby's live state (for lag probes and tests).
    pub fn get(&self, key: Key) -> Option<Value> {
        self.strategy.get(key)
    }

    /// Records currently in the standby's store.
    pub fn record_count(&self) -> usize {
        self.strategy.record_count()
    }

    /// Health handle: applied watermark, commits/bytes behind,
    /// re-bootstraps, classified tail errors, heartbeat watchdog.
    pub fn health(&self) -> Arc<Health> {
        self.health.clone()
    }

    /// Highest commit seq applied so far.
    pub fn applied_seq(&self) -> u64 {
        self.applied
    }

    /// Times `LostPrefix` forced a full rebuild from the covering
    /// checkpoint.
    pub fn rebootstraps(&self) -> u64 {
        self.rebootstraps
    }

    /// Times the tailer lost its cursor segment to retention at all
    /// (including the keep-state case where the standby had already
    /// applied past the truncation point).
    pub fn lost_prefix_events(&self) -> u64 {
        self.lost_prefix_events
    }

    /// Promotes the standby into primary-ready state: drains every
    /// remaining trusted log byte, then seals the applied prefix by
    /// resuming the commit-seq and checkpoint-id spaces above everything
    /// the old primary published. Returns a [`Promoted`] holding the
    /// serving-ready strategy; turn it into an engine with
    /// [`Promoted::into_database`] (which opens a fresh log segment — the
    /// durable seal) or serve it in-process.
    pub fn promote(mut self) -> io::Result<Promoted> {
        let start = Instant::now();
        // Final drain: loop until a poll applies nothing. (A poll that
        // re-bootstrapped may legitimately apply zero records and still
        // leave trusted bytes behind a re-anchor, so require one clean
        // zero-progress pass.)
        loop {
            let poll = self.poll()?;
            if poll.wedged || (poll.applied == 0 && !poll.rebootstrapped) {
                break;
            }
        }
        // Claims, not a deep scan: promotion needs the id/watermark every
        // cycle *claims* (to seal above them — valid or not), and a full
        // `scan()` would CRC every part payload, putting an O(data) cost
        // on the failover path it exists to avoid.
        let claims = self.dir.claims()?;
        let max_id = claims.iter().map(|c| c.id).max().unwrap_or(0);
        let chain_claim = claims.iter().map(|c| c.watermark.0).max().unwrap_or(0);
        // A published watermark ahead of the applied watermark is
        // ambiguous: usually it is only the phase-marker seqs a
        // checkpoint consumes beyond the last commit, but it can also
        // mean the old primary checkpointed commits whose log bytes died
        // unsynced in the crash before this standby ever polled them —
        // commits that now exist ONLY in the chain. Serving without them
        // would lose durable writes, so attempt a rebuild from the chain.
        // Adopt it ONLY if it materializes past the applied watermark: a
        // claimed watermark can exceed what the chain actually delivers
        // (a lying fsync damaged an ancestor — materialization
        // quarantines it and falls back to an older prefix), and
        // replacing live-applied state with that fallback would itself
        // lose commits.
        let mut promote_rebuilt = false;
        if chain_claim > self.applied {
            let fresh_log = Arc::new(CommitLog::new(false));
            let fresh = self.cfg.kind.build(self.cfg.store.clone(), fresh_log.clone());
            match recover_checkpoint_only(&self.dir, fresh.as_ref()) {
                Ok(outcome) if outcome.watermark.0 > self.applied => {
                    self.strategy = fresh;
                    self.log = fresh_log;
                    self.applied = outcome.watermark.0;
                    promote_rebuilt = true;
                    self.health.record_standby_rebootstrap();
                }
                Ok(_) | Err(RecoveryError::NoFullCheckpoint) => {}
                Err(RecoveryError::Io(e)) => return Err(e),
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        }
        // Resume the id space above every id the old primary consumed,
        // preserving the parity of the standby's current stamp cycle:
        // partial strategies queue tombstones into a parity-indexed
        // buffer keyed by the commit stamp's cycle, so the first
        // post-promotion partial capture must land on the same parity or
        // deletes applied while standing by would wait one extra cycle —
        // and a crash in that window would resurrect them. Skipping an
        // id is explicitly legal (failed cycles consume ids too).
        // Seal the commit-seq space above both the applied state AND every
        // *claimed* watermark: even an unmaterializable cycle consumed
        // those seqs, and the promoted engine must never reissue them.
        // The state watermark stays `applied` — that is what the store
        // actually covers.
        let sealed_seq = self.applied.max(chain_claim);
        let parity = self.log.current_stamp().cycle & 1;
        let mut next_id = max_id + 1;
        if next_id & 1 != parity {
            next_id += 1;
        }
        self.log.advance_to(CommitSeq(sealed_seq), next_id);
        self.strategy.resume_checkpoint_ids(next_id);
        self.health.standby_promoted();
        self.health.record_standby_lag(self.applied, 0, 0);
        Ok(Promoted {
            kind: self.cfg.kind,
            strategy: self.strategy,
            log: self.log,
            registry: self.registry,
            health: self.health,
            vfs: self.cfg.vfs,
            checkpoint_dir: self.cfg.checkpoint_dir,
            log_dir: self.cfg.log_dir,
            watermark: self.applied,
            sealed_seq,
            promote_rebuilt,
            rebootstraps: self.rebootstraps,
            lost_prefix_events: self.lost_prefix_events,
            commits_applied: self.commits_applied,
            promote_duration: start.elapsed(),
        })
    }
}

/// A promoted standby: state sealed at [`Promoted::watermark`], commit
/// and checkpoint id spaces resumed, ready to serve.
pub struct Promoted {
    kind: StrategyKind,
    strategy: Arc<dyn CheckpointStrategy>,
    log: Arc<CommitLog>,
    registry: ProcRegistry,
    health: Arc<Health>,
    vfs: Arc<dyn Vfs>,
    checkpoint_dir: PathBuf,
    log_dir: PathBuf,
    watermark: u64,
    sealed_seq: u64,
    promote_rebuilt: bool,
    rebootstraps: u64,
    lost_prefix_events: u64,
    commits_applied: u64,
    promote_duration: Duration,
}

impl Promoted {
    /// The state watermark: every commit at or below it is applied to
    /// the promoted store.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The sealed commit-seq: at least [`Promoted::watermark`], raised
    /// above every watermark the old primary ever published so the
    /// engine's next commit can never reissue a consumed seq.
    pub fn sealed_seq(&self) -> u64 {
        self.sealed_seq
    }

    /// Whether promotion rebuilt state from a checkpoint chain that had
    /// run ahead of the tailed log (commits existing only in the chain).
    pub fn promote_rebuilt(&self) -> bool {
        self.promote_rebuilt
    }

    /// Strategy holding the promoted state.
    pub fn strategy(&self) -> &Arc<dyn CheckpointStrategy> {
        &self.strategy
    }

    /// Point-read of the promoted state.
    pub fn get(&self, key: Key) -> Option<Value> {
        self.strategy.get(key)
    }

    /// Records in the promoted store.
    pub fn record_count(&self) -> usize {
        self.strategy.record_count()
    }

    /// Checkpoint re-bootstraps over the standby's lifetime.
    pub fn rebootstraps(&self) -> u64 {
        self.rebootstraps
    }

    /// Times the tailer lost its cursor segment to retention.
    pub fn lost_prefix_events(&self) -> u64 {
        self.lost_prefix_events
    }

    /// Commits replayed from the log over the standby's lifetime.
    pub fn commits_applied(&self) -> u64 {
        self.commits_applied
    }

    /// Wall-clock cost of [`Standby::promote`] (final drain + seal).
    pub fn promote_duration(&self) -> Duration {
        self.promote_duration
    }

    /// The standby's health handle, carried across promotion.
    pub fn health(&self) -> Arc<Health> {
        self.health.clone()
    }

    /// Opens a fresh command-log segment above the highest survivor —
    /// the durable seal of the applied prefix — for callers serving the
    /// promoted state without a full engine. `segment_bytes` as in
    /// [`EngineConfig::log_segment_bytes`].
    pub fn open_log(
        &self,
        segment_bytes: u64,
    ) -> io::Result<calc_recovery::SegmentedLogWriter> {
        calc_recovery::SegmentedLogWriter::create(self.vfs.clone(), &self.log_dir, segment_bytes)
    }

    /// Builds a fully serving [`Database`] around the promoted state via
    /// [`Database::resume`]: worker pool, command logger (a fresh segment
    /// above the highest survivor — the durable seal), checkpoint daemon
    /// if configured. `config` supplies the serving-side knobs (workers,
    /// queue, checkpoint cadence…); its strategy/store/paths/vfs are
    /// overridden to the promoted node's own, and `standby_of` is
    /// cleared — this node is the primary now.
    pub fn into_database(self, mut config: EngineConfig) -> io::Result<Database> {
        config.strategy = self.kind;
        config.checkpoint_dir = self.checkpoint_dir;
        config.command_log_dir = Some(self.log_dir);
        config.command_log_path = None;
        config.vfs = self.vfs;
        config.standby_of = None;
        // The promoted chain already has a full ancestor (or the store is
        // empty); a base checkpoint would re-capture everything.
        config.base_checkpoint = false;
        Database::resume(config, self.registry, self.strategy, self.log)
    }
}

/// Background tail loop: polls a [`Standby`] at its configured interval
/// on a dedicated thread, stamping the [`Health`] heartbeat, until
/// stopped. If a poll fails fatally the loop exits and records it via
/// [`Health::record_tail_exit`] — the watermark freezes loudly, never
/// silently.
pub struct StandbyRunner {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<io::Result<Standby>>>,
    health: Arc<Health>,
}

impl StandbyRunner {
    /// Spawns the tail loop.
    pub fn spawn(standby: Standby) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let health = standby.health();
        let handle = std::thread::Builder::new()
            .name("calc-standby-tail".into())
            .spawn(move || {
                let mut standby = standby;
                let interval = standby.cfg.poll_interval;
                while !stop2.load(Ordering::Relaxed) {
                    match standby.poll() {
                        Ok(p) if p.wedged => {
                            // Health already holds the classified exit;
                            // park until stopped (nothing can advance).
                            while !stop2.load(Ordering::Relaxed) {
                                std::thread::sleep(interval);
                            }
                            break;
                        }
                        Ok(_) => {}
                        Err(e) => {
                            if classify(&e) == ErrorClass::Fatal {
                                let health = standby.health();
                                health.record_tail_exit(ErrorClass::Fatal, &e);
                                return Err(e);
                            }
                            // Transient (e.g. a blip reading a segment):
                            // already recorded by poll; back off one
                            // interval and retry from the held cursor.
                        }
                    }
                    std::thread::sleep(interval);
                }
                Ok(standby)
            })
            .expect("spawn standby tail loop");
        StandbyRunner {
            stop,
            handle: Some(handle),
            health,
        }
    }

    /// The standby's health, observable while the loop runs.
    pub fn health(&self) -> Arc<Health> {
        self.health.clone()
    }

    /// Stops the loop and returns the standby (for promotion), or the
    /// fatal error that killed the loop.
    pub fn stop(mut self) -> io::Result<Standby> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("stop called once")
            .join()
            .map_err(|_| io::Error::other("standby tail thread panicked"))?
    }
}

impl Drop for StandbyRunner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Loads the newest durable chain into a fresh strategy. An empty or
/// checkpoint-less directory is legal (watermark 0, empty store).
fn bootstrap(
    cfg: &StandbyConfig,
    dir: &CheckpointDir,
) -> io::Result<(Arc<dyn CheckpointStrategy>, Arc<CommitLog>, u64)> {
    let log = Arc::new(CommitLog::new(false));
    let strategy = cfg.kind.build(cfg.store.clone(), log.clone());
    match recover_checkpoint_only(dir, strategy.as_ref()) {
        Ok(outcome) => Ok((strategy, log, outcome.watermark.0)),
        Err(RecoveryError::NoFullCheckpoint) => Ok((strategy, log, 0)),
        Err(RecoveryError::Io(e)) => Err(e),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}
