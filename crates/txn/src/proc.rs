//! The stored-procedure framework.
//!
//! §4 of the paper: *"Transactions in our system are implemented as C++
//! stored procedures, and are executed by a pool of worker threads."* Rust
//! equivalents implement [`Procedure`]: a procedure pre-declares its lock
//! set from its parameters (which is what makes the deadlock-free sorted
//! acquisition of [`crate::locks`] possible), then runs against a
//! [`TxnOps`] data interface supplied by the engine.
//!
//! Procedures must be **deterministic functions of their parameters and
//! the database state** — that is the contract that makes command-log
//! replay (§3) reconstruct the exact pre-crash state. Anything
//! non-deterministic (time, randomness) must be baked into the parameters
//! by the client.

use std::collections::HashMap;
use std::sync::Arc;

use calc_common::types::{Key, Value};

use crate::locks::LockMode;

/// Identifier of a stored procedure, stable across restarts (it is written
/// to the command log).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcId(pub u16);

/// Why a transaction aborted. Aborted transactions are rolled back and are
/// *not* appended to the commit log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The procedure's own logic aborted (e.g. a constraint failed).
    Logic(String),
    /// Malformed parameters.
    BadParams(String),
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Logic(m) => write!(f, "logic abort: {m}"),
            AbortReason::BadParams(m) => write!(f, "bad params: {m}"),
        }
    }
}

impl std::error::Error for AbortReason {}

/// A transaction's pre-declared lock footprint.
#[derive(Clone, Debug, Default)]
pub struct LockRequest {
    /// Keys read (shared locks).
    pub reads: Vec<Key>,
    /// Keys written, inserted, or deleted (exclusive locks).
    pub writes: Vec<Key>,
}

impl LockRequest {
    /// Flattens into `(key, mode)` pairs for the lock manager (writes win
    /// over reads on overlap, handled by the manager's dedup).
    pub fn to_lock_set(&self) -> Vec<(Key, LockMode)> {
        let mut v = Vec::with_capacity(self.reads.len() + self.writes.len());
        v.extend(self.writes.iter().map(|&k| (k, LockMode::Exclusive)));
        v.extend(self.reads.iter().map(|&k| (k, LockMode::Shared)));
        v
    }
}

/// Data operations available to procedure logic. The engine's executor
/// implements this, routing every mutation through the active
/// checkpointing strategy's `ApplyWrite` and recording undo images.
pub trait TxnOps {
    /// Reads a record. Must be in the declared read or write set.
    fn get(&mut self, key: Key) -> Option<Value>;
    /// Overwrites an existing record. Must be in the declared write set.
    fn put(&mut self, key: Key, value: &[u8]);
    /// Inserts a new record; returns `false` (and changes nothing) if the
    /// key already exists. Must be in the declared write set.
    fn insert(&mut self, key: Key, value: &[u8]) -> bool;
    /// Deletes a record; returns `false` if the key does not exist. Must
    /// be in the declared write set.
    fn delete(&mut self, key: Key) -> bool;
}

/// A stored procedure. See module docs for the determinism contract.
pub trait Procedure: Send + Sync {
    /// Stable identifier (written to the command log).
    fn id(&self) -> ProcId;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// Computes the lock footprint from the parameters, *before* any data
    /// access — required for deadlock-free ordered acquisition.
    fn locks(&self, params: &[u8]) -> Result<LockRequest, AbortReason>;
    /// Runs the transaction logic.
    fn run(&self, params: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason>;
}

/// Registry mapping procedure ids to implementations — the dispatch table
/// for both live execution and command-log replay.
#[derive(Default)]
pub struct ProcRegistry {
    procs: HashMap<ProcId, Arc<dyn Procedure>>,
}

impl ProcRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a procedure.
    ///
    /// # Panics
    /// Panics if the id is already taken (ids must be unique for replay to
    /// be unambiguous).
    pub fn register(&mut self, proc: Arc<dyn Procedure>) {
        let id = proc.id();
        if self.procs.insert(id, proc).is_some() {
            panic!("duplicate procedure id {id:?}");
        }
    }

    /// Looks up a procedure.
    pub fn get(&self, id: ProcId) -> Option<&Arc<dyn Procedure>> {
        self.procs.get(&id)
    }

    /// Number of registered procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

impl std::fmt::Debug for ProcRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProcRegistry({} procedures)", self.procs.len())
    }
}

/// Parameter encoding helpers shared by the built-in workloads: a simple
/// length-checked little-endian reader/writer, so procedures stay
/// dependency-free.
pub mod params {
    use super::AbortReason;

    /// Sequential little-endian reader over a parameter buffer.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Wraps a buffer.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Reads a `u64`.
        pub fn u64(&mut self) -> Result<u64, AbortReason> {
            let end = self.pos + 8;
            if end > self.buf.len() {
                return Err(AbortReason::BadParams("truncated u64".into()));
            }
            let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
            self.pos = end;
            Ok(v)
        }

        /// Reads a `u32`.
        pub fn u32(&mut self) -> Result<u32, AbortReason> {
            let end = self.pos + 4;
            if end > self.buf.len() {
                return Err(AbortReason::BadParams("truncated u32".into()));
            }
            let v = u32::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
            self.pos = end;
            Ok(v)
        }

        /// Reads a length-prefixed byte slice.
        pub fn bytes(&mut self) -> Result<&'a [u8], AbortReason> {
            let len = self.u32()? as usize;
            let end = self.pos + len;
            if end > self.buf.len() {
                return Err(AbortReason::BadParams("truncated bytes".into()));
            }
            let s = &self.buf[self.pos..end];
            self.pos = end;
            Ok(s)
        }

        /// Remaining unread bytes.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }
    }

    /// Builder matching [`Reader`].
    #[derive(Default)]
    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        /// Empty builder.
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends a `u64`.
        pub fn u64(mut self, v: u64) -> Self {
            self.buf.extend_from_slice(&v.to_le_bytes());
            self
        }

        /// Appends a `u32`.
        pub fn u32(mut self, v: u32) -> Self {
            self.buf.extend_from_slice(&v.to_le_bytes());
            self
        }

        /// Appends a length-prefixed byte slice.
        pub fn bytes(mut self, b: &[u8]) -> Self {
            self.buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
            self.buf.extend_from_slice(b);
            self
        }

        /// Finishes into a shared buffer.
        pub fn finish(self) -> std::sync::Arc<[u8]> {
            std::sync::Arc::from(self.buf.into_boxed_slice())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::params::{Reader, Writer};
    use super::*;

    struct Noop;
    impl Procedure for Noop {
        fn id(&self) -> ProcId {
            ProcId(1)
        }
        fn name(&self) -> &'static str {
            "noop"
        }
        fn locks(&self, _p: &[u8]) -> Result<LockRequest, AbortReason> {
            Ok(LockRequest::default())
        }
        fn run(&self, _p: &[u8], _ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            Ok(())
        }
    }

    #[test]
    fn registry_register_and_lookup() {
        let mut r = ProcRegistry::new();
        r.register(Arc::new(Noop));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(ProcId(1)).unwrap().name(), "noop");
        assert!(r.get(ProcId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate procedure id")]
    fn duplicate_registration_panics() {
        let mut r = ProcRegistry::new();
        r.register(Arc::new(Noop));
        r.register(Arc::new(Noop));
    }

    #[test]
    fn lock_request_flattening_puts_writes_first() {
        let req = LockRequest {
            reads: vec![Key(1), Key(2)],
            writes: vec![Key(2), Key(3)],
        };
        let set = req.to_lock_set();
        assert_eq!(set[0], (Key(2), LockMode::Exclusive));
        assert_eq!(set[1], (Key(3), LockMode::Exclusive));
        assert_eq!(set[2], (Key(1), LockMode::Shared));
    }

    #[test]
    fn params_roundtrip() {
        let p = Writer::new().u64(42).u32(7).bytes(b"payload").finish();
        let mut r = Reader::new(&p);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_params_abort() {
        let p = Writer::new().u32(100).finish(); // claims 100 bytes, has 0
        let mut r = Reader::new(&p);
        assert!(matches!(r.bytes(), Err(AbortReason::BadParams(_))));
        let mut r2 = Reader::new(&[1, 2, 3]);
        assert!(r2.u64().is_err());
    }
}
