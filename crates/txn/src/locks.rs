//! A sharded, FIFO-fair lock manager implementing a deadlock-free variant
//! of strict two-phase locking.
//!
//! §4 of the paper: *"In order to eliminate deadlock as an unpredictable
//! source of variation in our performance measurements, we implemented a
//! deadlock-free variant of strict two-phase locking."* Deadlock freedom is
//! achieved the standard way for stored-procedure systems (Calvin-style):
//! a transaction's entire lock set is known up front, and
//! [`LockManager::acquire`] sorts and deduplicates it before acquiring, so
//! lock-wait cycles cannot form.
//!
//! Fairness: each key keeps a FIFO queue of waiting requests. A request is
//! granted only when every request ahead of it has been granted, except
//! that consecutive shared requests are granted together. This prevents
//! writer starvation under read-heavy contention.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};

use parking_lot::{Condvar, Mutex};

use calc_common::types::Key;

thread_local! {
    /// Reusable sort/dedup buffer for [`LockManager::acquire`]. Each
    /// acquire used to allocate a fresh `Vec` per transaction; the guard
    /// now borrows this thread's buffer and returns it on release, so a
    /// steady-state worker allocates nothing on the 2PL path.
    static ACQUIRE_SCRATCH: Cell<Vec<(Key, LockMode)>> = const { Cell::new(Vec::new()) };
}

/// Waiter queues larger than this are shrunk once they empty, so one
/// historic convoy on a hot key does not pin its high-water allocation
/// for the life of the entry.
const WAITER_SHRINK_THRESHOLD: usize = 8;

/// Lock modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

#[derive(Debug)]
struct LockEntry {
    shared_holders: usize,
    exclusive_held: bool,
    /// FIFO queue of waiting requests (request id, mode).
    waiters: VecDeque<(u64, LockMode)>,
}

impl LockEntry {
    fn new() -> Self {
        LockEntry {
            shared_holders: 0,
            exclusive_held: false,
            waiters: VecDeque::new(),
        }
    }

    fn idle(&self) -> bool {
        self.shared_holders == 0 && !self.exclusive_held && self.waiters.is_empty()
    }

    fn compatible(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => !self.exclusive_held,
            LockMode::Exclusive => !self.exclusive_held && self.shared_holders == 0,
        }
    }
}

struct Shard {
    table: Mutex<HashMap<u64, LockEntry>>,
    cv: Condvar,
}

/// The lock manager. One instance serves the whole database.
pub struct LockManager {
    shards: Box<[Shard]>,
    shard_mask: usize,
    next_req: std::sync::atomic::AtomicU64,
}

impl LockManager {
    /// Creates a manager with `shards` shards (rounded to a power of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        LockManager {
            shards: (0..n)
                .map(|_| Shard {
                    table: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            shard_mask: n - 1,
            next_req: std::sync::atomic::AtomicU64::new(1),
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> &Shard {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        &self.shards[h as usize & self.shard_mask]
    }

    /// Acquires every lock in `request`, blocking as needed. The request is
    /// sorted and deduplicated internally (an exclusive request absorbs a
    /// shared request for the same key), which is what guarantees deadlock
    /// freedom. Returns a guard; dropping it (or calling
    /// [`LockSetGuard::release`]) releases every lock — strictness: locks
    /// are only released after commit processing completes.
    pub fn acquire(&self, request: &[(Key, LockMode)]) -> LockSetGuard<'_> {
        let mut locks = ACQUIRE_SCRATCH.take();
        locks.clear();
        locks.extend_from_slice(request);
        locks.sort_by_key(|(k, m)| (*k, matches!(m, LockMode::Shared)));
        // After the sort, an Exclusive for key k precedes a Shared for k;
        // dedup keeps the first (strongest) mode.
        locks.dedup_by_key(|(k, _)| *k);

        #[cfg(feature = "mutation-hooks")]
        if calc_common::mutation::armed(calc_common::mutation::Mutation::SkipLock) {
            // Seeded bug: grant everything in shared mode. Writers stop
            // excluding each other and hot-key RMW chains lose updates.
            for l in &mut locks {
                l.1 = LockMode::Shared;
            }
        }

        let req_id = self
            .next_req
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        for &(key, mode) in &locks {
            self.lock_one(key, mode, req_id);
            calc_common::perturb::point(calc_common::perturb::Site::LockGrant);
        }
        LockSetGuard {
            mgr: self,
            locks,
            released: false,
        }
    }

    fn lock_one(&self, key: Key, mode: LockMode, req_id: u64) {
        let shard = self.shard_of(key);
        let mut table = shard.table.lock();
        let entry = table.entry(key.0).or_insert_with(LockEntry::new);
        if entry.waiters.is_empty() && entry.compatible(mode) {
            match mode {
                LockMode::Shared => entry.shared_holders += 1,
                LockMode::Exclusive => entry.exclusive_held = true,
            }
            return;
        }
        entry.waiters.push_back((req_id, mode));
        loop {
            shard.cv.wait(&mut table);
            let entry = table
                .get_mut(&key.0)
                .expect("entry with waiters cannot be removed");
            // Grant when at the head of the queue and compatible. After a
            // shared grant, the next shared waiter becomes head and will
            // also be granted on its wakeup — consecutive readers batch.
            if let Some(&(head, _)) = entry.waiters.front() {
                if head == req_id && entry.compatible(mode) {
                    entry.waiters.pop_front();
                    if entry.waiters.is_empty()
                        && entry.waiters.capacity() > WAITER_SHRINK_THRESHOLD
                    {
                        entry.waiters.shrink_to_fit();
                    }
                    match mode {
                        LockMode::Shared => entry.shared_holders += 1,
                        LockMode::Exclusive => entry.exclusive_held = true,
                    }
                    // Wake the next waiter in case it is another reader
                    // that can be granted alongside us.
                    shard.cv.notify_all();
                    return;
                }
            }
        }
    }

    fn unlock_one(&self, key: Key, mode: LockMode) {
        calc_common::perturb::point(calc_common::perturb::Site::LockRelease);
        let shard = self.shard_of(key);
        let mut table = shard.table.lock();
        let entry = table
            .get_mut(&key.0)
            .expect("unlock of a key that is not locked");
        match mode {
            LockMode::Shared => {
                debug_assert!(entry.shared_holders > 0);
                entry.shared_holders -= 1;
            }
            LockMode::Exclusive => {
                debug_assert!(entry.exclusive_held);
                entry.exclusive_held = false;
            }
        }
        if entry.idle() {
            table.remove(&key.0);
        } else {
            shard.cv.notify_all();
        }
    }

    /// Number of keys with active lock entries (diagnostic).
    pub fn active_keys(&self) -> usize {
        self.shards.iter().map(|s| s.table.lock().len()).sum()
    }
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LockManager(shards={}, active_keys={})",
            self.shards.len(),
            self.active_keys()
        )
    }
}

/// RAII guard over a transaction's full lock set.
pub struct LockSetGuard<'a> {
    mgr: &'a LockManager,
    locks: Vec<(Key, LockMode)>,
    released: bool,
}

impl LockSetGuard<'_> {
    /// The (deduplicated, sorted) locks held.
    pub fn held(&self) -> &[(Key, LockMode)] {
        &self.locks
    }

    /// Explicitly releases all locks.
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        if !self.released {
            self.released = true;
            for &(key, mode) in &self.locks {
                self.mgr.unlock_one(key, mode);
            }
            // Hand the buffer back for the next acquire on this thread.
            let mut scratch = std::mem::take(&mut self.locks);
            scratch.clear();
            ACQUIRE_SCRATCH.set(scratch);
        }
    }
}

impl Drop for LockSetGuard<'_> {
    fn drop(&mut self) {
        self.release_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn exclusive_locks_serialize_increments() {
        let mgr = Arc::new(LockManager::new(16));
        let counter = Arc::new(AtomicU64::new(0));
        let mut unsynced = Box::new(0u64);
        let ptr = &mut *unsynced as *mut u64 as usize;
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mgr = mgr.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let g = mgr.acquire(&[(Key(42), LockMode::Exclusive)]);
                        // SAFETY: guarded by the exclusive lock on Key(42);
                        // main thread joins before reading.
                        unsafe { *(ptr as *mut u64) += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                        g.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*unsynced, 16_000);
        assert_eq!(mgr.active_keys(), 0, "all entries cleaned up");
    }

    #[test]
    fn shared_locks_are_concurrent() {
        let mgr = Arc::new(LockManager::new(4));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mgr = mgr.clone();
                let concurrent = concurrent.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    let _g = mgr.acquire(&[(Key(1), LockMode::Shared)]);
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "shared locks never overlapped"
        );
    }

    #[test]
    fn exclusive_blocks_shared() {
        let mgr = Arc::new(LockManager::new(4));
        let g = mgr.acquire(&[(Key(5), LockMode::Exclusive)]);
        let mgr2 = mgr.clone();
        let reader_done = Arc::new(AtomicUsize::new(0));
        let rd = reader_done.clone();
        let h = std::thread::spawn(move || {
            let _g = mgr2.acquire(&[(Key(5), LockMode::Shared)]);
            rd.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(reader_done.load(Ordering::SeqCst), 0, "reader ran under X lock");
        g.release();
        h.join().unwrap();
        assert_eq!(reader_done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn writer_not_starved_by_readers() {
        // Reader holds S; writer queues; a second reader arriving after the
        // writer must wait behind it (FIFO), so the writer eventually runs.
        let mgr = Arc::new(LockManager::new(4));
        let r1 = mgr.acquire(&[(Key(9), LockMode::Shared)]);
        let order = Arc::new(Mutex::new(Vec::new()));

        let m2 = mgr.clone();
        let o2 = order.clone();
        let writer = std::thread::spawn(move || {
            let _g = m2.acquire(&[(Key(9), LockMode::Exclusive)]);
            o2.lock().push("writer");
        });
        std::thread::sleep(Duration::from_millis(30));
        let m3 = mgr.clone();
        let o3 = order.clone();
        let reader2 = std::thread::spawn(move || {
            let _g = m3.acquire(&[(Key(9), LockMode::Shared)]);
            o3.lock().push("reader2");
        });
        std::thread::sleep(Duration::from_millis(30));
        r1.release();
        writer.join().unwrap();
        reader2.join().unwrap();
        let order = order.lock();
        assert_eq!(order.as_slice(), &["writer", "reader2"]);
    }

    #[test]
    fn duplicate_keys_deduplicated_with_strongest_mode() {
        let mgr = LockManager::new(4);
        let g = mgr.acquire(&[
            (Key(1), LockMode::Shared),
            (Key(1), LockMode::Exclusive),
            (Key(1), LockMode::Shared),
        ]);
        assert_eq!(g.held(), &[(Key(1), LockMode::Exclusive)]);
        g.release();
        assert_eq!(mgr.active_keys(), 0);
    }

    #[test]
    fn no_deadlock_under_random_multi_key_contention() {
        // 8 threads repeatedly acquire random 5-key lock sets over a tiny
        // keyspace. Sorted acquisition must prevent deadlock; the test
        // completing at all is the assertion.
        use calc_common::rng::SplitMix;
        let mgr = Arc::new(LockManager::new(8));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let mgr = mgr.clone();
                std::thread::spawn(move || {
                    let mut rng = SplitMix::new(t);
                    for _ in 0..500 {
                        let req: Vec<(Key, LockMode)> = (0..5)
                            .map(|_| {
                                let k = Key(rng.next_below(10));
                                let m = if rng.chance(0.5) {
                                    LockMode::Exclusive
                                } else {
                                    LockMode::Shared
                                };
                                (k, m)
                            })
                            .collect();
                        let g = mgr.acquire(&req);
                        std::hint::black_box(&g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.active_keys(), 0);
    }

    #[test]
    fn guard_drop_releases() {
        let mgr = LockManager::new(2);
        {
            let _g = mgr.acquire(&[(Key(3), LockMode::Exclusive)]);
            assert_eq!(mgr.active_keys(), 1);
        }
        assert_eq!(mgr.active_keys(), 0);
    }

    /// Spawns a thread that acquires `mode` on `key`, records `tag` in
    /// `order` at grant time, holds briefly, and releases. Used by the
    /// FIFO tests; the caller sleeps between spawns to pin arrival order.
    fn queued_locker(
        mgr: &Arc<LockManager>,
        order: &Arc<Mutex<Vec<&'static str>>>,
        key: Key,
        mode: LockMode,
        tag: &'static str,
        hold: Duration,
    ) -> std::thread::JoinHandle<()> {
        let mgr = mgr.clone();
        let order = order.clone();
        std::thread::spawn(move || {
            let g = mgr.acquire(&[(key, mode)]);
            order.lock().push(tag);
            std::thread::sleep(hold);
            g.release();
        })
    }

    #[test]
    fn fifo_grant_order_matches_arrival_order() {
        // Holder has X. Queue (in arrival order): W1(X), R1(S), W2(X),
        // R2(S). FIFO granting must produce exactly that grant order:
        // R1 cannot jump W1 or W2 cannot jump R1, etc.
        let mgr = Arc::new(LockManager::new(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let holder = mgr.acquire(&[(Key(7), LockMode::Exclusive)]);

        let hold = Duration::from_millis(10);
        let mut handles = Vec::new();
        for (mode, tag) in [
            (LockMode::Exclusive, "W1"),
            (LockMode::Shared, "R1"),
            (LockMode::Exclusive, "W2"),
            (LockMode::Shared, "R2"),
        ] {
            handles.push(queued_locker(&mgr, &order, Key(7), mode, tag, hold));
            // Ensure the request is enqueued before the next arrives.
            std::thread::sleep(Duration::from_millis(40));
        }
        holder.release();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            order.lock().as_slice(),
            &["W1", "R1", "W2", "R2"],
            "grants did not follow FIFO arrival order"
        );
        assert_eq!(mgr.active_keys(), 0);
    }

    #[test]
    fn consecutive_shared_waiters_granted_as_a_batch() {
        // Holder has X; three readers queue behind it. On release, all
        // three must be granted together (their holds overlap), not one
        // at a time.
        let mgr = Arc::new(LockManager::new(4));
        let holder = mgr.acquire(&[(Key(11), LockMode::Exclusive)]);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let mgr = mgr.clone();
                let concurrent = concurrent.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    let g = mgr.acquire(&[(Key(11), LockMode::Shared)]);
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                    g.release();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(60));
        holder.release();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "queued shared waiters were granted one at a time (peak {})",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(mgr.active_keys(), 0);
    }

    #[test]
    fn writer_acquires_under_continuous_read_storm() {
        // 4 reader threads re-acquire S on one key in a tight loop; after
        // the storm is running, one writer requests X. FIFO queueing must
        // let the writer through promptly even though shared holders are
        // always present when it arrives.
        let mgr = Arc::new(LockManager::new(4));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let mgr = mgr.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut grants = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let g = mgr.acquire(&[(Key(13), LockMode::Shared)]);
                        std::hint::black_box(&g);
                        grants += 1;
                        g.release();
                    }
                    grants
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        let writer_start = std::time::Instant::now();
        let g = mgr.acquire(&[(Key(13), LockMode::Exclusive)]);
        let waited = writer_start.elapsed();
        g.release();
        stop.store(1, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert!(
            waited < Duration::from_secs(5),
            "writer starved for {waited:?} under read storm"
        );
    }

    #[test]
    fn overlapping_multi_key_sets_sorted_and_deduped() {
        // A messy multi-key request with S/X overlap on the same keys must
        // come out sorted by key with the strongest mode per key.
        let mgr = Arc::new(LockManager::new(4));
        let g = mgr.acquire(&[
            (Key(30), LockMode::Shared),
            (Key(10), LockMode::Exclusive),
            (Key(20), LockMode::Shared),
            (Key(30), LockMode::Exclusive),
            (Key(10), LockMode::Shared),
            (Key(20), LockMode::Shared),
        ]);
        assert_eq!(
            g.held(),
            &[
                (Key(10), LockMode::Exclusive),
                (Key(20), LockMode::Shared),
                (Key(30), LockMode::Exclusive),
            ]
        );
        // A second overlapping set from another thread must not deadlock
        // against us (sorted acquisition) and must block only on the
        // conflicting keys.
        let m2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let g2 = m2.acquire(&[
                (Key(20), LockMode::Exclusive),
                (Key(30), LockMode::Shared),
                (Key(20), LockMode::Shared),
            ]);
            assert_eq!(
                g2.held(),
                &[(Key(20), LockMode::Exclusive), (Key(30), LockMode::Shared)]
            );
        });
        std::thread::sleep(Duration::from_millis(30));
        g.release();
        h.join().unwrap();
        assert_eq!(mgr.active_keys(), 0);
    }
}
