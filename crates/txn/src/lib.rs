//! Transaction substrate for the CALC checkpointing database.
//!
//! The paper's evaluation system executes transactions as stored
//! procedures over a pool of worker threads, "using a pessimistic
//! concurrency control protocol to ensure serializability ... a
//! deadlock-free variant of strict two-phase locking" (§4). This crate
//! provides that substrate:
//!
//! * [`locks`] — a sharded lock manager with shared/exclusive modes and
//!   FIFO queuing. Deadlock freedom comes from ordered acquisition:
//!   procedures pre-declare their read/write sets, and
//!   [`locks::LockManager::acquire`] sorts and deduplicates the request
//!   before acquiring, so no cycle can form.
//! * [`commitlog`] — the commit log: "each transaction commits by
//!   atomically appending a commit token to this log before releasing any
//!   of its locks" (§2.2). Phase-transition tokens are appended to the same
//!   log, which is what lets CALC determine unambiguously which phase the
//!   system was in when any transaction committed. The same structure
//!   doubles as the *command log* (VoltDB-style, §1): each commit token
//!   carries the procedure id and parameters, so deterministic replay can
//!   reconstruct post-checkpoint state.
//! * [`proc`] — the stored-procedure framework: pre-declared lock sets, a
//!   [`proc::TxnOps`] data interface, and a registry for replay.
//! * [`route`] — shard-footprint classification for the thread-per-core
//!   executor: the same pre-declared lock sets, mapped onto shard owners
//!   so single-owner transactions can skip the lock manager entirely.

#![warn(missing_docs)]

pub mod commitlog;
pub mod locks;
pub mod proc;
pub mod route;

pub use commitlog::{CommitLog, CommitRecord, LogEntry, PhaseStamp};
pub use locks::{LockManager, LockMode, LockSetGuard};
pub use proc::{AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps};
pub use route::{Route, ShardRouter};
