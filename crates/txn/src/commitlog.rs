//! The commit log — and, in the same structure, the command log.
//!
//! §2.2 of the paper assumes "there exists a commit-log, and each
//! transaction commits by atomically appending a commit token to this log
//! before releasing any of its locks", and that "each transition between
//! phases of the algorithm is marked by a token atomically appended to the
//! transaction commit-log. Therefore it can always be unambiguously
//! determined which phase the system was in when a particular transaction
//! committed."
//!
//! Both properties are provided by a single mutex: commit tokens and
//! phase-transition tokens are appended under it, and the current phase is
//! published from inside the same critical section, so a transaction's
//! commit sequence number totally orders it against every phase
//! transition.
//!
//! The log doubles as the paper's §1/§3 *command log* (VoltDB-style): each
//! commit token optionally carries `(procedure id, parameters)`, which is
//! everything deterministic replay needs. Retention is configurable —
//! throughput experiments run with retention off (only the sequence
//! counter and phase linearization remain), recovery uses it on — and
//! replayed prefixes can be truncated.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use calc_common::phase::Phase;
use calc_common::types::{CommitSeq, TxnId};

use crate::proc::ProcId;

/// A `(cycle, phase)` pair identifying *where in the sequence of checkpoint
/// cycles* an event happened. `cycle` counts completed returns to REST, so
/// checkpoint number `cycle` is the one whose virtual point of consistency
/// falls inside cycle `cycle`.
///
/// The stamp — not just the phase — is what commit hooks need: a
/// transaction that committed with `phase ≤ PREPARE` in cycle `c` belongs
/// to partial checkpoint `c`; one that committed with `phase ≥ RESOLVE`
/// belongs to checkpoint `c + 1`. Deriving this from an "active side" flag
/// instead would race with the flip at the resolve transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhaseStamp {
    /// Checkpoint cycle number (increments at each REST transition).
    pub cycle: u64,
    /// Phase within the cycle.
    pub phase: Phase,
}

impl PhaseStamp {
    /// The checkpoint interval a commit with this stamp belongs to: the
    /// upcoming checkpoint of its cycle if it committed before the virtual
    /// point of consistency, the next one otherwise.
    pub fn checkpoint_interval(self) -> u64 {
        if self.phase <= Phase::Prepare {
            self.cycle
        } else {
            self.cycle + 1
        }
    }

    #[inline]
    fn encode(self) -> u64 {
        (self.cycle << 3) | self.phase.index() as u64
    }

    #[inline]
    fn decode(v: u64) -> Self {
        PhaseStamp {
            cycle: v >> 3,
            phase: Phase::from_index((v & 0b111) as usize),
        }
    }
}

impl std::fmt::Display for PhaseStamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.phase, self.cycle)
    }
}

/// A commit token: the transaction's identity plus (optionally) the
/// command-log payload for deterministic replay.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// Commit sequence — position in the serial order.
    pub seq: CommitSeq,
    /// Transaction id.
    pub txn: TxnId,
    /// Stored procedure that ran.
    pub proc: ProcId,
    /// Procedure parameters (shared; cheap to clone).
    pub params: Arc<[u8]>,
}

/// One entry in the log.
#[derive(Clone, Debug)]
pub enum LogEntry {
    /// A transaction commit token.
    Commit(CommitRecord),
    /// A CALC phase-transition token.
    PhaseTransition {
        /// Log position of the transition.
        seq: CommitSeq,
        /// The phase being entered.
        phase: Phase,
    },
}

impl LogEntry {
    /// The entry's log position.
    pub fn seq(&self) -> CommitSeq {
        match self {
            LogEntry::Commit(c) => c.seq,
            LogEntry::PhaseTransition { seq, .. } => *seq,
        }
    }
}

struct LogInner {
    entries: Vec<LogEntry>,
    /// Sequence of the first retained entry (earlier entries truncated).
    base_seq: CommitSeq,
}

/// The commit/command log. See module docs.
pub struct CommitLog {
    inner: Mutex<LogInner>,
    /// Next sequence to hand out. Read lock-free for watermarks.
    next_seq: AtomicU64,
    /// Current phase stamp, published from inside the append critical
    /// section.
    stamp: AtomicU64,
    /// Whether commit payloads are retained for replay.
    retain: bool,
    /// Commits counted even when not retained.
    commit_count: AtomicU64,
}

impl CommitLog {
    /// Creates a log. `retain` controls whether commit payloads are kept
    /// in memory for deterministic replay.
    pub fn new(retain: bool) -> Self {
        CommitLog {
            inner: Mutex::new(LogInner {
                entries: Vec::new(),
                base_seq: CommitSeq(1),
            }),
            next_seq: AtomicU64::new(1),
            stamp: AtomicU64::new(
                PhaseStamp {
                    cycle: 0,
                    phase: Phase::Rest,
                }
                .encode(),
            ),
            retain,
            commit_count: AtomicU64::new(0),
        }
    }

    /// Whether payloads are retained.
    pub fn retains(&self) -> bool {
        self.retain
    }

    /// Appends a commit token. Returns the commit sequence and the phase
    /// stamp the system carried at the instant of the append — the commit
    /// phase used by CALC's commit hook.
    pub fn append_commit(
        &self,
        txn: TxnId,
        proc: ProcId,
        params: Arc<[u8]>,
    ) -> (CommitSeq, PhaseStamp) {
        let mut inner = self.inner.lock();
        let seq = CommitSeq(self.next_seq.fetch_add(1, Ordering::AcqRel));
        #[allow(unused_mut)]
        let mut stamp = PhaseStamp::decode(self.stamp.load(Ordering::Relaxed));
        #[cfg(feature = "mutation-hooks")]
        if calc_common::mutation::armed(calc_common::mutation::Mutation::LatePhaseStamp)
            && stamp.phase == Phase::Prepare
        {
            // Seeded bug: report the stamp as if it had been read *after*
            // a racing PREPARE→RESOLVE transition instead of under the log
            // mutex. The commit's updates then get classified to the wrong
            // side of the virtual point of consistency.
            stamp.phase = Phase::Resolve;
        }
        if self.retain {
            inner.entries.push(LogEntry::Commit(CommitRecord {
                seq,
                txn,
                proc,
                params,
            }));
        }
        drop(inner);
        self.commit_count.fetch_add(1, Ordering::Relaxed);
        (seq, stamp)
    }

    /// Appends a phase-transition token and publishes the new stamp,
    /// atomically with respect to commit appends. Entering REST increments
    /// the cycle counter. Returns the token's sequence — when the
    /// transition is the PREPARE→RESOLVE one, this is the checkpoint's
    /// virtual point of consistency watermark: commits with `seq <` this
    /// value are in the checkpoint, commits after are not.
    pub fn append_phase_transition(&self, phase: Phase) -> CommitSeq {
        let mut inner = self.inner.lock();
        let seq = CommitSeq(self.next_seq.fetch_add(1, Ordering::AcqRel));
        let old = PhaseStamp::decode(self.stamp.load(Ordering::Relaxed));
        let new = PhaseStamp {
            cycle: old.cycle + (phase == Phase::Rest) as u64,
            phase,
        };
        self.stamp.store(new.encode(), Ordering::Relaxed);
        if self.retain {
            inner.entries.push(LogEntry::PhaseTransition { seq, phase });
        }
        seq
    }

    /// Resumes identity after recovery: future commit sequences will be
    /// `> seq` and the cycle counter at least `cycle`, so post-recovery
    /// commits and checkpoints never collide with pre-crash artifacts.
    /// Monotone (never moves backwards); must run before transactions.
    pub fn advance_to(&self, seq: CommitSeq, cycle: u64) {
        let _inner = self.inner.lock();
        let next = self.next_seq.load(Ordering::Acquire).max(seq.0 + 1);
        self.next_seq.store(next, Ordering::Release);
        let old = PhaseStamp::decode(self.stamp.load(Ordering::Relaxed));
        if cycle > old.cycle {
            self.stamp.store(
                PhaseStamp {
                    cycle,
                    phase: old.phase,
                }
                .encode(),
                Ordering::Relaxed,
            );
        }
    }

    /// The stamp most recently published by a transition token.
    pub fn current_stamp(&self) -> PhaseStamp {
        PhaseStamp::decode(self.stamp.load(Ordering::Acquire))
    }

    /// The phase most recently published by a transition token.
    pub fn current_phase(&self) -> Phase {
        self.current_stamp().phase
    }

    /// The highest sequence handed out so far (0 if none).
    pub fn last_seq(&self) -> CommitSeq {
        CommitSeq(self.next_seq.load(Ordering::Acquire) - 1)
    }

    /// Total commit tokens appended (independent of retention).
    pub fn commit_count(&self) -> u64 {
        self.commit_count.load(Ordering::Relaxed)
    }

    /// Commit records with `seq > watermark`, in order — the replay input
    /// for recovery from a checkpoint taken at `watermark`.
    ///
    /// # Panics
    /// Panics if the log does not retain payloads, or if entries above the
    /// watermark have been truncated.
    pub fn commits_after(&self, watermark: CommitSeq) -> Vec<CommitRecord> {
        assert!(self.retain, "commits_after requires a retaining log");
        let inner = self.inner.lock();
        assert!(
            watermark.0 + 1 >= inner.base_seq.0,
            "entries after {watermark} were truncated (base {})",
            inner.base_seq
        );
        inner
            .entries
            .iter()
            .filter_map(|e| match e {
                LogEntry::Commit(c) if c.seq > watermark => Some(c.clone()),
                _ => None,
            })
            .collect()
    }

    /// Full entry snapshot (tests / diagnostics).
    pub fn entries(&self) -> Vec<LogEntry> {
        self.inner.lock().entries.clone()
    }

    /// Drops entries with `seq <= watermark` (after they are covered by a
    /// durable checkpoint).
    pub fn truncate_through(&self, watermark: CommitSeq) {
        let mut inner = self.inner.lock();
        inner.entries.retain(|e| e.seq() > watermark);
        if watermark.next() > inner.base_seq {
            inner.base_seq = watermark.next();
        }
    }

    /// Retained entry count.
    pub fn retained_len(&self) -> usize {
        self.inner.lock().entries.len()
    }
}

impl std::fmt::Debug for CommitLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CommitLog(commits={}, retained={}, phase={})",
            self.commit_count(),
            self.retained_len(),
            self.current_phase()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(b: &[u8]) -> Arc<[u8]> {
        Arc::from(b.to_vec().into_boxed_slice())
    }

    #[test]
    fn sequences_are_monotone_and_dense() {
        let log = CommitLog::new(true);
        let (s1, _) = log.append_commit(TxnId(1), ProcId(0), params(b"a"));
        let (s2, _) = log.append_commit(TxnId(2), ProcId(0), params(b"b"));
        let s3 = log.append_phase_transition(Phase::Prepare);
        assert_eq!(s1, CommitSeq(1));
        assert_eq!(s2, CommitSeq(2));
        assert_eq!(s3, CommitSeq(3));
        assert_eq!(log.last_seq(), CommitSeq(3));
        assert_eq!(log.commit_count(), 2);
    }

    #[test]
    fn commit_phase_reflects_transitions() {
        let log = CommitLog::new(false);
        let (_, s) = log.append_commit(TxnId(1), ProcId(0), params(b""));
        assert_eq!(s.phase, Phase::Rest);
        assert_eq!(s.cycle, 0);
        log.append_phase_transition(Phase::Prepare);
        let (_, s) = log.append_commit(TxnId(2), ProcId(0), params(b""));
        assert_eq!(s.phase, Phase::Prepare);
        log.append_phase_transition(Phase::Resolve);
        let (_, s) = log.append_commit(TxnId(3), ProcId(0), params(b""));
        assert_eq!(s.phase, Phase::Resolve);
        assert_eq!(log.current_phase(), Phase::Resolve);
    }

    #[test]
    fn cycle_increments_on_rest_and_interval_mapping() {
        let log = CommitLog::new(false);
        assert_eq!(log.current_stamp().cycle, 0);
        // Pre-point commit in cycle 0 → checkpoint interval 0.
        log.append_phase_transition(Phase::Prepare);
        let (_, s) = log.append_commit(TxnId(1), ProcId(0), params(b""));
        assert_eq!(s.checkpoint_interval(), 0);
        // Post-point commit in cycle 0 → checkpoint interval 1.
        log.append_phase_transition(Phase::Resolve);
        let (_, s) = log.append_commit(TxnId(2), ProcId(0), params(b""));
        assert_eq!(s.checkpoint_interval(), 1);
        log.append_phase_transition(Phase::Capture);
        log.append_phase_transition(Phase::Complete);
        log.append_phase_transition(Phase::Rest);
        let s = log.current_stamp();
        assert_eq!(s.cycle, 1);
        assert_eq!(s.phase, Phase::Rest);
        // Rest commit in cycle 1 → checkpoint interval 1.
        let (_, s) = log.append_commit(TxnId(3), ProcId(0), params(b""));
        assert_eq!(s.checkpoint_interval(), 1);
    }

    #[test]
    fn stamp_encode_decode_roundtrip() {
        for cycle in [0u64, 1, 7, 1 << 40] {
            for phase in Phase::ALL {
                let s = PhaseStamp { cycle, phase };
                assert_eq!(PhaseStamp::decode(s.encode()), s);
            }
        }
    }

    #[test]
    fn commits_after_watermark() {
        let log = CommitLog::new(true);
        log.append_commit(TxnId(1), ProcId(7), params(b"one"));
        let watermark = log.append_phase_transition(Phase::Resolve);
        log.append_commit(TxnId(2), ProcId(7), params(b"two"));
        log.append_commit(TxnId(3), ProcId(8), params(b"three"));
        let replay = log.commits_after(watermark);
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].txn, TxnId(2));
        assert_eq!(&replay[0].params[..], b"two");
        assert_eq!(replay[1].proc, ProcId(8));
    }

    #[test]
    fn non_retaining_log_stores_nothing() {
        let log = CommitLog::new(false);
        for i in 0..100 {
            log.append_commit(TxnId(i), ProcId(0), params(b"x"));
        }
        assert_eq!(log.retained_len(), 0);
        assert_eq!(log.commit_count(), 100);
    }

    #[test]
    fn truncate_through_drops_prefix() {
        let log = CommitLog::new(true);
        for i in 0..10 {
            log.append_commit(TxnId(i), ProcId(0), params(b""));
        }
        log.truncate_through(CommitSeq(5));
        assert_eq!(log.retained_len(), 5);
        let replay = log.commits_after(CommitSeq(5));
        assert_eq!(replay.len(), 5);
        assert_eq!(replay[0].seq, CommitSeq(6));
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn commits_after_truncated_watermark_panics() {
        let log = CommitLog::new(true);
        for i in 0..10 {
            log.append_commit(TxnId(i), ProcId(0), params(b""));
        }
        log.truncate_through(CommitSeq(5));
        log.commits_after(CommitSeq(3));
    }

    #[test]
    fn concurrent_appends_linearize_against_phase_transitions() {
        use std::sync::atomic::AtomicBool;
        let log = Arc::new(CommitLog::new(true));
        let stop = Arc::new(AtomicBool::new(false));
        let committers: Vec<_> = (0..4u64)
            .map(|t| {
                let log = log.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        log.append_commit(TxnId(t * 1_000_000 + i), ProcId(0), params(b""));
                        i += 1;
                    }
                })
            })
            .collect();
        // Drive a full phase cycle while commits stream in.
        for p in [Phase::Prepare, Phase::Resolve, Phase::Capture, Phase::Complete, Phase::Rest] {
            std::thread::sleep(std::time::Duration::from_millis(5));
            log.append_phase_transition(p);
        }
        stop.store(true, Ordering::Relaxed);
        for h in committers {
            h.join().unwrap();
        }
        // Invariant: walking the log, every commit token's recorded-at
        // phase (reconstructable from the preceding transition token) is
        // consistent; sequences are strictly increasing and dense.
        let entries = log.entries();
        let mut last = 0u64;
        for e in &entries {
            assert_eq!(e.seq().0, last + 1, "sequence gap");
            last = e.seq().0;
        }
    }
}
