//! Shard-footprint routing for the thread-per-core executor.
//!
//! The shard-owned executor assigns every worker thread a disjoint set of
//! shards and routes each transaction to the worker(s) owning its
//! pre-declared lock footprint ([`crate::proc::LockRequest`] — known
//! before dispatch, the same property that makes ordered 2PL
//! deadlock-free). The partitioning must line up with the rest of the
//! system or the executor's "ownership" would be a fiction:
//!
//! * **key → shard** is `key % num_shards` — the exact modulus sharded
//!   recovery uses to re-bucket checkpoint entries (`calc-core::merge`)
//!   and the dual store uses for its shard index.
//! * **shard → worker** is contiguous striping with the same arithmetic
//!   as `calc-core::partition::ShardPartition`: worker `k` owns stripe
//!   `k` of `0..num_shards`, stripes differ in size by at most one, and
//!   the first `num_shards % workers` stripes get the extra shard. The
//!   engine cross-checks this equivalence in its tests so the two
//!   formulas cannot drift apart silently.
//!
//! A transaction whose whole footprint lands on one worker runs
//! **lock-free**: the owner executes it serially, so no other thread can
//! touch those shards concurrently and per-key latching is unnecessary.
//! A footprint spanning several owners takes the cross-shard fence path
//! (see the engine), which briefly parks the other involved owners.

use calc_common::types::Key;

use crate::proc::LockRequest;

/// Where a transaction must execute, derived from its lock footprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// Every key is owned by one worker: run serially on that worker,
    /// lock-free.
    Single(usize),
    /// The footprint spans several owners (sorted, deduplicated,
    /// `len >= 2`): the lowest-indexed owner coordinates a fence.
    Cross(Vec<usize>),
    /// Empty footprint (e.g. a parameterless procedure): no shard to own,
    /// routed to worker 0 and counted as a routing fallback.
    Unrouted,
}

impl Route {
    /// The worker the request is dispatched to: the single owner, the
    /// cross-shard coordinator (lowest involved owner), or worker 0.
    pub fn dispatch_worker(&self) -> usize {
        match self {
            Route::Single(w) => *w,
            Route::Cross(ws) => ws[0],
            Route::Unrouted => 0,
        }
    }
}

/// Maps keys to shards and shards to owning workers for the shard-owned
/// executor. Immutable after construction; shared by the submission path
/// (classification) and the workers (ownership asserts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    workers: usize,
    shards: usize,
}

impl ShardRouter {
    /// A router for `workers` worker threads with `shards_per_worker`
    /// shards each (both clamped to at least 1).
    pub fn new(workers: usize, shards_per_worker: usize) -> Self {
        let workers = workers.max(1);
        ShardRouter {
            workers,
            shards: workers * shards_per_worker.max(1),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total shard count (`workers * shards_per_worker`).
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: `key % num_shards`, the same modulus
    /// sharded recovery buckets checkpoint entries with.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        (key.0 as usize) % self.shards
    }

    /// The worker owning `shard`: contiguous striping identical to
    /// `ShardPartition::over(num_shards, workers)` — the inverse of its
    /// `range(k)`.
    #[inline]
    pub fn owner_of_shard(&self, shard: usize) -> usize {
        debug_assert!(shard < self.shards);
        let base = self.shards / self.workers;
        let rem = self.shards % self.workers;
        let fat = rem * (base + 1);
        if shard < fat {
            shard / (base + 1)
        } else {
            rem + (shard - fat) / base
        }
    }

    /// The worker owning `key`.
    #[inline]
    pub fn owner_of_key(&self, key: Key) -> usize {
        self.owner_of_shard(self.shard_of(key))
    }

    /// Classifies a lock footprint: one owning worker (lock-free serial
    /// execution), several owners (fence path), or no keys at all.
    pub fn classify(&self, request: &LockRequest) -> Route {
        let mut first: Option<usize> = None;
        let mut owners: Vec<usize> = Vec::new();
        for &key in request.writes.iter().chain(request.reads.iter()) {
            let owner = self.owner_of_key(key);
            match first {
                None => first = Some(owner),
                Some(f) if f == owner => {}
                Some(f) => {
                    if owners.is_empty() {
                        owners.push(f);
                    }
                    if !owners.contains(&owner) {
                        owners.push(owner);
                    }
                }
            }
        }
        match (first, owners.is_empty()) {
            (None, _) => Route::Unrouted,
            (Some(w), true) => Route::Single(w),
            (Some(_), false) => {
                owners.sort_unstable();
                Route::Cross(owners)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(reads: &[u64], writes: &[u64]) -> LockRequest {
        LockRequest {
            reads: reads.iter().copied().map(Key).collect(),
            writes: writes.iter().copied().map(Key).collect(),
        }
    }

    #[test]
    fn shard_modulus_matches_recovery_bucketing() {
        // Recovery re-shards checkpoint entries with `key % shards`
        // (calc-core::merge). The router must use the identical modulus.
        let r = ShardRouter::new(3, 4);
        assert_eq!(r.num_shards(), 12);
        for k in 0..100u64 {
            assert_eq!(r.shard_of(Key(k)), (k as usize) % 12);
        }
    }

    #[test]
    fn owner_striping_covers_all_shards_disjointly() {
        for workers in [1usize, 2, 3, 5, 8] {
            for spw in [1usize, 2, 7] {
                let r = ShardRouter::new(workers, spw);
                let mut counts = vec![0usize; workers];
                let mut last_owner = 0;
                for s in 0..r.num_shards() {
                    let o = r.owner_of_shard(s);
                    assert!(o < workers);
                    // Contiguous striping: owner index is monotone in s.
                    assert!(o >= last_owner, "stripes must be contiguous");
                    last_owner = o;
                    counts[o] += 1;
                }
                let max = *counts.iter().max().unwrap();
                let min = *counts.iter().min().unwrap();
                assert!(max - min <= 1, "imbalanced stripes: {counts:?}");
                assert_eq!(counts.iter().sum::<usize>(), r.num_shards());
            }
        }
    }

    #[test]
    fn single_shard_sets_classify_single() {
        let r = ShardRouter::new(4, 2); // 8 shards
        // Multi-key set, all congruent mod 8 → one shard → one owner.
        let route = r.classify(&req(&[8, 16], &[0, 24]));
        assert_eq!(route, Route::Single(r.owner_of_key(Key(0))));
        // Different shards, same owner stripe → still Single.
        let o = r.owner_of_shard(0);
        assert_eq!(o, r.owner_of_shard(1), "shards 0,1 share a stripe");
        assert_eq!(r.classify(&req(&[1], &[0])), Route::Single(o));
    }

    #[test]
    fn cross_owner_sets_classify_cross_sorted() {
        let r = ShardRouter::new(4, 1); // 4 shards, one per worker
        let route = r.classify(&req(&[3], &[1, 0]));
        assert_eq!(route, Route::Cross(vec![0, 1, 3]));
        assert_eq!(route.dispatch_worker(), 0, "lowest owner coordinates");
    }

    #[test]
    fn empty_footprint_is_unrouted() {
        let r = ShardRouter::new(4, 4);
        assert_eq!(r.classify(&LockRequest::default()), Route::Unrouted);
        assert_eq!(Route::Unrouted.dispatch_worker(), 0);
    }

    #[test]
    fn single_worker_routes_everything_to_zero() {
        let r = ShardRouter::new(1, 8);
        assert_eq!(r.classify(&req(&[1, 2, 3], &[4, 5])), Route::Single(0));
    }

    #[test]
    fn duplicate_and_overlapping_keys_do_not_produce_duplicate_owners() {
        let r = ShardRouter::new(4, 1);
        let route = r.classify(&req(&[0, 1, 0], &[1, 0]));
        assert_eq!(route, Route::Cross(vec![0, 1]));
    }
}
