//! Partial-checkpoint collapse throughput (§2.3.1) and recovery load rate
//! (§3) — the mechanisms behind Figure 4(b)'s recovery-time annotations.

use std::sync::Arc;

use calc_common::types::{CommitSeq, Key};
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::merge::{collapse, materialize_chain};
use calc_core::throttle::Throttle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const FULL: u64 = 100_000;
const PARTIAL: u64 = 10_000;

fn build_chain(name: &str, partials: usize) -> CheckpointDir {
    let d = std::env::temp_dir().join(format!("calc-bench-merge-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    let dir = CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap();
    let payload = [3u8; 100];
    let mut p = dir.begin(CheckpointKind::Full, 0, CommitSeq(1)).unwrap();
    for k in 0..FULL {
        p.writer().write_record(Key(k), &payload).unwrap();
    }
    p.publish().unwrap();
    for i in 1..=partials as u64 {
        let mut p = dir
            .begin(CheckpointKind::Partial, i, CommitSeq(i * 100))
            .unwrap();
        for k in 0..PARTIAL {
            p.writer()
                .write_record(Key((k * 7 + i * 13) % FULL), &payload)
                .unwrap();
        }
        p.publish().unwrap();
    }
    dir
}

fn bench_materialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_materialize");
    g.sample_size(10);
    for &n in &[4usize, 8, 16] {
        let dir = build_chain(&format!("mat{n}"), n);
        let (full, partials) = dir.recovery_chain().unwrap().unwrap();
        g.throughput(Throughput::Elements(FULL + n as u64 * PARTIAL));
        g.bench_with_input(BenchmarkId::new("partials", n), &n, |b, _| {
            b.iter(|| materialize_chain(&full, &partials).unwrap().len())
        });
    }
    g.finish();
}

fn bench_collapse(c: &mut Criterion) {
    let mut g = c.benchmark_group("background_collapse");
    g.sample_size(10);
    g.throughput(Throughput::Elements(FULL + 4 * PARTIAL));
    g.bench_function("full_plus_4_partials", |b| {
        b.iter_with_setup(
            || build_chain("collapse", 4),
            |dir| collapse(&dir).unwrap().unwrap(),
        )
    });
    g.finish();
}

criterion_group!(benches, bench_materialize, bench_collapse);
criterion_main!(benches);
