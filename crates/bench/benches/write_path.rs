//! ApplyWrite cost per strategy, at rest vs inside the checkpoint window.
//!
//! This is the mechanism behind Figure 2's baselines: IPP pays a double
//! write always (~25% lower rest throughput), Zig-Zag pays bit-vector
//! maintenance always (~4%), CALC pays nothing at rest and one
//! live→stable copy per record only during the checkpoint window.

use std::sync::Arc;

use calc_baselines::{IppStrategy, MvccStrategy, NaiveStrategy, ZigzagStrategy};
use calc_common::phase::Phase;
use calc_common::types::Key;
use calc_core::calc::CalcStrategy;
use calc_core::strategy::CheckpointStrategy;
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::CommitLog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: u64 = 100_000;

fn populate(s: &dyn CheckpointStrategy) {
    let payload = [7u8; 100];
    for k in 0..N {
        s.load_initial(Key(k), &payload).unwrap();
    }
}

fn bench_rest(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_write_at_rest");
    g.throughput(Throughput::Elements(1));
    let log = || Arc::new(CommitLog::new(false));
    let config = || StoreConfig::for_records(N as usize + 16, 128);
    let strategies: Vec<(&str, Arc<dyn CheckpointStrategy>)> = vec![
        ("CALC", Arc::new(CalcStrategy::full(config(), log()))),
        ("Naive", Arc::new(NaiveStrategy::full(config(), log()))),
        ("Zigzag", Arc::new(ZigzagStrategy::full(config(), log()))),
        ("IPP", Arc::new(IppStrategy::full(config(), log()))),
        // §2.1's full-multi-versioning alternative: every write allocates
        // a fresh version (committed by the on_commit hook, not measured
        // here — even so, the allocation cost shows).
        ("MVCC", Arc::new(MvccStrategy::new(config(), log()))),
    ];
    for (name, s) in &strategies {
        populate(s.as_ref());
        let payload = [9u8; 100];
        let mut k = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), s, |b, s| {
            b.iter(|| {
                k = (k + 7919) % N;
                let mut token = s.txn_begin();
                s.apply_write(&mut token, Key(k), &payload).unwrap();
                s.txn_end(token);
            })
        });
    }
    g.finish();
}

fn bench_during_checkpoint_window(c: &mut Criterion) {
    // CALC during the capture window: the first write of each record pays
    // the live→stable copy; repeat writes are cheap. We hold the system
    // in RESOLVE phase (stable copies accumulate, erased per iteration
    // batch by cycling keys).
    let mut g = c.benchmark_group("apply_write_in_window");
    g.throughput(Throughput::Elements(1));
    let log = Arc::new(CommitLog::new(false));
    let calc = CalcStrategy::full(StoreConfig::for_records(N as usize + 16, 128), log.clone());
    populate(&calc);
    log.append_phase_transition(Phase::Prepare);
    log.append_phase_transition(Phase::Resolve);
    let payload = [9u8; 100];
    let mut k = 0u64;
    g.bench_function("CALC_first_write_copies", |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            let mut token = calc.txn_begin();
            calc.apply_write(&mut token, Key(k), &payload).unwrap();
            s_end(&calc, token);
        })
    });
    // Second writes to already-copied records skip the copy.
    let mut token = calc.txn_begin();
    for k in 0..N {
        calc.apply_write(&mut token, Key(k), &payload).unwrap();
    }
    calc.txn_end(token);
    g.bench_function("CALC_repeat_write_no_copy", |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            let mut token = calc.txn_begin();
            calc.apply_write(&mut token, Key(k), &payload).unwrap();
            s_end(&calc, token);
        })
    });
    g.finish();
}

fn s_end(s: &CalcStrategy, token: calc_core::strategy::TxnToken) {
    s.txn_end(token);
}

criterion_group!(benches, bench_rest, bench_during_checkpoint_window);
criterion_main!(benches);
