//! Lock-manager throughput: uncontended and contended acquisition of the
//! microbenchmark's 10-key exclusive lock sets.

use std::sync::Arc;

use calc_common::rng::SplitMix;
use calc_common::types::Key;
use calc_txn::locks::{LockManager, LockMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn lockset(rng: &mut SplitMix, space: u64, n: usize) -> Vec<(Key, LockMode)> {
    (0..n)
        .map(|_| (Key(rng.next_below(space)), LockMode::Exclusive))
        .collect()
}

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks_single_thread");
    g.throughput(Throughput::Elements(10));
    let mgr = LockManager::new(1024);
    let mut rng = SplitMix::new(1);
    for &space in &[1_000_000u64, 1_000] {
        g.bench_with_input(
            BenchmarkId::new("acquire10_release", space),
            &space,
            |b, &space| {
                b.iter(|| {
                    let set = lockset(&mut rng, space, 10);
                    let guard = mgr.acquire(&set);
                    guard.release();
                })
            },
        );
    }
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks_contended");
    g.sample_size(10);
    g.throughput(Throughput::Elements(40_000));
    for &space in &[1_000_000u64, 100] {
        g.bench_with_input(
            BenchmarkId::new("4threads_x_10k_txns", space),
            &space,
            |b, &space| {
                b.iter(|| {
                    let mgr = Arc::new(LockManager::new(1024));
                    let handles: Vec<_> = (0..4u64)
                        .map(|t| {
                            let mgr = mgr.clone();
                            std::thread::spawn(move || {
                                let mut rng = SplitMix::new(t);
                                for _ in 0..10_000 {
                                    let set = lockset(&mut rng, space, 10);
                                    let guard = mgr.acquire(&set);
                                    std::hint::black_box(&guard);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
