//! Atomic bit-vector operations, including the O(1) polarity swap versus
//! the O(n) full reset it replaces (§2.2.5's `SwapAvailableAndNotAvailable`).

use calc_common::bitvec::{AtomicBitVec, PolarityBitVec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: usize = 1 << 20;

fn bench_bitvec(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitvec");
    g.throughput(Throughput::Elements(1));

    let bv = AtomicBitVec::new(N);
    let mut i = 0usize;
    g.bench_function("set", |b| {
        b.iter(|| {
            i = (i + 4097) & (N - 1);
            bv.set(i, true)
        })
    });
    g.bench_function("get", |b| {
        b.iter(|| {
            i = (i + 4097) & (N - 1);
            bv.get(i)
        })
    });
    g.bench_function("test_and_set", |b| {
        b.iter(|| {
            i = (i + 4097) & (N - 1);
            bv.test_and_set(i)
        })
    });

    let pv = PolarityBitVec::new(N);
    g.bench_function("polarity_mark", |b| {
        b.iter(|| {
            i = (i + 4097) & (N - 1);
            pv.mark(i)
        })
    });

    g.throughput(Throughput::Elements(N as u64));
    // The paper's trick: swap is O(1) while the reset it replaces scans
    // every word.
    g.bench_function(BenchmarkId::new("reset", "polarity_swap"), |b| {
        b.iter(|| pv.swap_polarity())
    });
    g.bench_function(BenchmarkId::new("reset", "full_clear"), |b| {
        b.iter(|| bv.clear_all())
    });
    g.finish();
}

criterion_group!(benches, bench_bitvec);
criterion_main!(benches);
