//! The §2.3 ablation: bit vector vs hash table vs bloom filter for
//! tracking dirty keys. The paper found the bit vector's cache behaviour
//! loses to the others' smaller footprints by less than their extra
//! bookkeeping costs — this bench reproduces that comparison.

use calc_storage::dirty::{BitVecTracker, BloomTracker, DirtyTracker, HashSetTracker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const DB: usize = 1 << 20;
const DIRTY: usize = DB / 10; // 10% write locality

fn trackers() -> Vec<(&'static str, Box<dyn DirtyTracker>)> {
    vec![
        ("bitvec", Box::new(BitVecTracker::new(DB)) as Box<dyn DirtyTracker>),
        ("hashset", Box::new(HashSetTracker::new())),
        ("bloom", Box::new(BloomTracker::new(DIRTY))),
    ]
}

fn bench_mark(c: &mut Criterion) {
    let mut g = c.benchmark_group("dirty_mark");
    g.throughput(Throughput::Elements(1));
    for (name, t) in trackers() {
        let mut i = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, t| {
            b.iter(|| {
                i = (i + 4099) & (DB as u32 - 1);
                t.mark(i % (DIRTY as u32), 0);
            })
        });
    }
    g.finish();
}

fn bench_collect(c: &mut Criterion) {
    let mut g = c.benchmark_group("dirty_collect");
    g.sample_size(20);
    g.throughput(Throughput::Elements(DIRTY as u64));
    for (name, t) in trackers() {
        for s in 0..DIRTY as u32 {
            t.mark(s * 7 % DB as u32, 0);
        }
        g.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, t| {
            b.iter(|| t.dirty_slots(0, DB).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mark, bench_collect);
criterion_main!(benches);
