//! Capture-phase scan rate: full scan (CALC) vs dirty-only scan (pCALC) at
//! the paper's write localities — the mechanism behind Figure 3's shorter
//! checkpoint windows.

use std::sync::Arc;

use calc_common::types::{Key, TxnId};
use calc_core::calc::CalcStrategy;
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::{CheckpointStrategy, NoopEnv};
use calc_core::throttle::Throttle;
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::CommitLog;
use calc_txn::proc::ProcId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: u64 = 200_000;

fn dir(name: &str) -> CheckpointDir {
    let d = std::env::temp_dir().join(format!("calc-bench-scan-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
}

fn make(partial: bool) -> (CalcStrategy, Arc<CommitLog>) {
    let log = Arc::new(CommitLog::new(false));
    let s = if partial {
        CalcStrategy::partial(StoreConfig::for_records(N as usize + 16, 128), log.clone())
    } else {
        CalcStrategy::full(StoreConfig::for_records(N as usize + 16, 128), log.clone())
    };
    let payload = [5u8; 100];
    for k in 0..N {
        s.load_initial(Key(k), &payload).unwrap();
    }
    (s, log)
}

fn touch(s: &CalcStrategy, log: &CommitLog, frac: f64) {
    let n = (N as f64 * frac) as u64;
    let payload = [6u8; 100];
    let mut token = s.txn_begin();
    for k in 0..n {
        s.apply_write(&mut token, Key(k), &payload).unwrap();
    }
    let (seq, stamp) = log.append_commit(TxnId(0), ProcId(0), Arc::from(&b""[..]));
    s.on_commit(&mut token, seq, stamp);
    s.txn_end(token);
}

fn bench_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("capture_scan");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N));
    g.bench_function("full_scan", |b| {
        let (s, log) = make(false);
        let d = dir("full");
        b.iter(|| {
            touch(&s, &log, 0.1);
            s.checkpoint(&NoopEnv, &d).unwrap()
        })
    });
    for &frac in &[0.1f64, 0.2, 0.5] {
        g.bench_with_input(
            BenchmarkId::new("partial_scan", format!("{:.0}pct", frac * 100.0)),
            &frac,
            |b, &frac| {
                let (s, log) = make(true);
                let d = dir(&format!("part{}", (frac * 100.0) as u32));
                s.write_base_checkpoint(&d).unwrap();
                b.iter(|| {
                    touch(&s, &log, frac);
                    s.checkpoint(&NoopEnv, &d).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
