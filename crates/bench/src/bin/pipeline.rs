//! Shard-parallel checkpoint pipeline benchmark (ISSUE 5 satellite).
//!
//! Emits `BENCH_pipeline.json` with three sections so subsequent PRs
//! have a wall-clock trajectory:
//!
//! 1. **capture/recovery at scale** — a ≥500k-record CALC store is
//!    checkpointed and recovered at `checkpoint_threads` = 1 and 4,
//!    timing the full-cycle capture wall-time and the recovery phase
//!    breakdown ([`calc_recovery::replay::RecoveryStats`]).
//! 2. **throughput during checkpointing** — a closed-loop micro run with
//!    checkpoints firing mid-run, serial vs. parallel capture.
//! 3. **per-strategy smoke** — a small fixed-duration micro run for each
//!    of the ten checkpointing strategies: throughput, mean checkpoint
//!    cycle duration, parts per cycle.
//! 4. **disk footprint** (ISSUE 6) — the same 500k-record store captured
//!    and recovered under every codec (compressed vs. raw bytes, ratio,
//!    recovery time), plus a segmented command-log run with truncation at
//!    a moving watermark showing disk use stays bounded.
//! 5. **failover** (ISSUE 7) — the same 500k-record store behind a warm
//!    standby that tailed the command log live: promotion latency (final
//!    drain + seal) vs. cold recovery (chain load + log replay),
//!    asserting the warm standby is ≥5× faster to serving.
//! 6. **server** (ISSUE 8) — a real calc-server over loopback TCP under a
//!    multi-connection durable-write load: throughput and p50/p99 commit
//!    latency at several connection counts, with and without a concurrent
//!    checkpoint, plus the per-commit-fsync baseline (`max_batch = 1`)
//!    asserting group commit buys ≥2× throughput at ≥100 connections.
//! 7. **overload** (ISSUE 9, non-gating) — the same server with a bounded
//!    in-flight permit gate driven ≥4× past saturation by a BUSY-aware
//!    client loop: throughput and accepted-request p50/p99 with and
//!    without a concurrent checkpoint under adaptive pacing, plus the
//!    shed counts and capture-yield totals the admission path produced.
//! 8. **executor** (ISSUE 10) — the thread-per-core shard-owned executor
//!    vs the legacy shared pool: closed-loop single-key writes mixed
//!    with a configurable fraction of two-key cross-owner transactions,
//!    swept over cross-shard ratio (0%/10%/50%) × worker count,
//!    asserting the lock-free single-shard path out-runs ordered 2PL at
//!    0% cross-shard.
//!
//! Environment knobs: `BENCH_OUT` (output path, default
//! `BENCH_pipeline.json`), `BENCH_RECORDS` (default 500_000),
//! `BENCH_SMOKE_MS` (per-strategy run length, default 1200),
//! `BENCH_SERVER_CONNS` (comma-separated connection counts, default
//! `100,400,1000`), `BENCH_SERVER_MS` (per-point run length, default 800),
//! `BENCH_OVERLOAD_CONNS` (default 64), `BENCH_EXEC_MS` (per-executor-point
//! run length, default 400).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use calc_bench::runner::{self, RunSpec, WorkloadSpec};
use calc_common::types::{CommitSeq, Key, TxnId};
use calc_common::vfs::{OsVfs, Vfs};
use calc_core::calc::CalcStrategy;
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::{CheckpointStrategy, NoopEnv};
use calc_core::throttle::Throttle;
use calc_core::Codec;
use calc_engine::StrategyKind;
use calc_recovery::logfile::{list_segments, CommandLogStream, SegmentedLogWriter};
use calc_recovery::replay::{recover_checkpoint_only, recover_streamed};
use calc_recovery::truncate_segments_below;
use calc_replica::{Standby, StandbyConfig};
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::{CommitLog, CommitRecord};
use calc_txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_workload::micro::MicroConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// Upsert procedure for the failover section's command-log tail.
const BENCH_SET: ProcId = ProcId(1);

struct BenchSetProc;
impl Procedure for BenchSetProc {
    fn id(&self) -> ProcId {
        BENCH_SET
    }
    fn name(&self) -> &'static str {
        "bench-set"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let val = r.bytes()?;
        if ops.get(key).is_some() {
            ops.put(key, val);
        } else {
            ops.insert(key, val);
        }
        Ok(())
    }
}

fn bench_registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(BenchSetProc));
    r
}

/// Two-key upsert for the executor section: its footprint spans two
/// owners whenever the keys land on different workers' stripes, forcing
/// the shard-owned executor through its fence path.
const BENCH_PAIR: ProcId = ProcId(2);

struct BenchPairProc;
impl Procedure for BenchPairProc {
    fn id(&self) -> ProcId {
        BENCH_PAIR
    }
    fn name(&self) -> &'static str {
        "bench-pair"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?), Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let a = Key(r.u64()?);
        let b = Key(r.u64()?);
        let val = r.bytes()?;
        for key in [a, b] {
            if ops.get(key).is_some() {
                ops.put(key, val);
            } else {
                ops.insert(key, val);
            }
        }
        Ok(())
    }
}

/// One executor measurement: a closed-loop write workload against a live
/// engine in `mode`, where `cross_pct`% of transactions touch a two-key
/// cross-owner footprint and the rest are single-key. Returns committed
/// transactions per second.
fn executor_point(
    mode: calc_engine::ExecutorMode,
    workers: usize,
    cross_pct: u64,
    run: Duration,
    root: &std::path::Path,
) -> f64 {
    use std::sync::atomic::{AtomicBool, Ordering};

    const EXEC_KEYS: u64 = 4096;
    let dir = root.join(format!("executor-{mode}-{workers}w-{cross_pct}pct"));
    let mut registry = bench_registry();
    registry.register(Arc::new(BenchPairProc));
    let mut config = calc_engine::EngineConfig::new(
        StrategyKind::Calc,
        EXEC_KEYS as usize * 2,
        64,
        dir,
    );
    config.workers = workers;
    config.executor_mode = mode;
    let spw = config.shards_per_worker;
    let db = Arc::new(calc_engine::Database::open(config, registry).expect("open exec engine"));
    for k in 0..EXEC_KEYS {
        db.load_initial(Key(k), &[0u8; 64]).expect("exec preload");
    }
    db.finalize_load(false).expect("exec finalize");

    // The cross-owner partner key sits one owner-stripe ahead: with
    // `shards = workers * spw`, key `a + spw` lands on shard
    // `(shard(a) + spw) % shards`, owned by the next worker — a
    // guaranteed cross-owner footprint for any `workers >= 2`.
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let submitters: Vec<_> = (0..workers * 2)
        .map(|t| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("exec-submit-{t}"))
                .spawn(move || {
                    let payload = [7u8; 64];
                    let mut i = t as u64;
                    let mut count = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % EXEC_KEYS;
                        let p = if i % 100 < cross_pct {
                            let b = a + spw as u64;
                            params::Writer::new().u64(a).u64(b).bytes(&payload).finish()
                        } else {
                            params::Writer::new().u64(a).bytes(&payload).finish()
                        };
                        let proc = if i % 100 < cross_pct { BENCH_PAIR } else { BENCH_SET };
                        db.execute(proc, p);
                        count += 1;
                        i += (workers * 2) as u64;
                    }
                    count
                })
                .expect("spawn exec submitter")
        })
        .collect();
    std::thread::sleep(run);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = submitters
        .into_iter()
        .map(|h| h.join().expect("exec submitter panicked"))
        .sum();
    let elapsed = start.elapsed();
    let committed = db.metrics().committed();
    assert_eq!(committed, total, "executor bench txns must all commit");
    match Arc::try_unwrap(db) {
        Ok(db) => db.shutdown(),
        Err(_) => panic!("exec submitters must release the database"),
    }
    total as f64 / elapsed.as_secs_f64()
}

/// One capture + recovery measurement at a fixed thread count.
struct PipelinePoint {
    threads: usize,
    capture: Duration,
    parts: usize,
    records: u64,
    recovery_total: Duration,
    part_load: Duration,
    merge: Duration,
    recovery_threads: usize,
}

/// Checkpoints and recovers a `records`-record CALC store with `threads`
/// capture/load threads, returning wall-times. The store is built once
/// by the caller; each call gets its own checkpoint directory.
fn capture_and_recover(
    strategy: &CalcStrategy,
    root: &std::path::Path,
    records: u64,
    threads: usize,
) -> PipelinePoint {
    let dir = CheckpointDir::open(
        &root.join(format!("threads-{threads}")),
        Arc::new(Throttle::unlimited()),
    )
    .expect("open bench dir");
    dir.set_checkpoint_threads(threads);

    // Warm-up cycle (first touch pays page-in), then the measured cycle.
    strategy
        .checkpoint(&NoopEnv, &dir)
        .expect("warm-up checkpoint");
    let start = Instant::now();
    let stats = strategy
        .checkpoint(&NoopEnv, &dir)
        .expect("measured checkpoint");
    let capture = start.elapsed();
    assert!(
        stats.records >= records,
        "capture missed records: {} < {records}",
        stats.records
    );

    let fresh = CalcStrategy::full(
        StoreConfig::for_records(records as usize + records as usize / 4 + 1024, 64),
        Arc::new(CommitLog::new(false)),
    );
    let start = Instant::now();
    let outcome = recover_checkpoint_only(&dir, &fresh).expect("recover");
    let recovery_total = start.elapsed();
    assert_eq!(outcome.loaded_records, records, "recovery missed records");

    PipelinePoint {
        threads,
        capture,
        parts: stats.parts,
        records: stats.records,
        recovery_total,
        part_load: outcome.stats.part_load,
        merge: outcome.stats.merge,
        recovery_threads: outcome.stats.threads,
    }
}

fn micro(db_size: u64) -> WorkloadSpec {
    WorkloadSpec::Micro(MicroConfig {
        db_size,
        record_size: 100,
        ops_per_txn: 10,
        txn_spin: 8,
        long_txn_prob: 0.0,
        long_txn_spin: 1000,
        long_txn_batch: 50,
        hot_fraction: 1.0,
    })
}

/// Mean checkpoint-cycle wall-time of a run, in milliseconds.
fn mean_ckpt_ms(result: &runner::RunResult) -> f64 {
    if result.checkpoints.is_empty() {
        return 0.0;
    }
    let total: Duration = result.checkpoints.iter().map(|s| s.duration).sum();
    total.as_secs_f64() * 1e3 / result.checkpoints.len() as f64
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One server-load measurement: `conns` client connections hammer durable
/// PUTs over loopback TCP for `run`, optionally with a concurrent
/// checkpointer firing through the admin verb on its own connection.
/// Returns `(tps, p50_us, p99_us)` of the acknowledged commits.
fn server_load(
    addr: std::net::SocketAddr,
    conns: usize,
    run: Duration,
    with_checkpoint: bool,
) -> (f64, u64, u64) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let stop = Arc::new(AtomicBool::new(false));
    let hist = Arc::new(calc_common::hist::Histogram::new());
    let start = Instant::now();
    // Spawned before the client flood: on a saturated host the first
    // timeslice this thread gets may otherwise come after the window has
    // already closed. The loop always fires at least one checkpoint
    // before consulting `stop` for the same reason.
    let checkpointer = with_checkpoint.then(|| {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = calc_server::Client::connect(addr).expect("bench ckpt client");
            let mut cycles = 0u64;
            loop {
                c.checkpoint().expect("bench checkpoint");
                cycles += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(run / 4);
            }
            cycles
        })
    });
    let clients: Vec<_> = (0..conns)
        .map(|i| {
            let stop = stop.clone();
            let hist = hist.clone();
            std::thread::Builder::new()
                .name(format!("bench-conn-{i}"))
                .stack_size(128 << 10)
                .spawn(move || {
                    let mut c =
                        calc_server::Client::connect(addr).expect("bench client connect");
                    // Each connection cycles its own 64-key working set,
                    // disjoint from every other connection and from the
                    // preload (which lives below 1 << 32).
                    let base = (i as u64 + 1) << 32;
                    let payload = [7u8; 64];
                    let mut count = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        c.put(base | (count & 0x3F), &payload).expect("bench put");
                        hist.record(t.elapsed().as_micros() as u64);
                        count += 1;
                    }
                    count
                })
                .expect("spawn bench client")
        })
        .collect();
    std::thread::sleep(run);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients
        .into_iter()
        .map(|h| h.join().expect("bench client panicked"))
        .sum();
    let elapsed = start.elapsed();
    if let Some(h) = checkpointer {
        let cycles = h.join().expect("bench checkpointer panicked");
        assert!(cycles > 0, "no checkpoint cycle completed during the run");
    }
    (
        total as f64 / elapsed.as_secs_f64(),
        hist.quantile(0.5),
        hist.quantile(0.99),
    )
}

/// [`server_load`]'s BUSY-aware sibling for the overload section: every
/// connection hammers durable PUTs, but a `BUSY` (admission shed) is
/// *counted and retried* instead of treated as a failure — the loop
/// measures what an overloaded-but-well-behaved client population sees.
/// Returns `(accepted_tps, p50_us, p99_us, busy_count)` where the
/// latency quantiles cover accepted (OK-acked) requests only.
fn overload_load(
    addr: std::net::SocketAddr,
    conns: usize,
    run: Duration,
    with_checkpoint: bool,
) -> (f64, u64, u64, u64) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let stop = Arc::new(AtomicBool::new(false));
    let hist = Arc::new(calc_common::hist::Histogram::new());
    let busy = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let checkpointer = with_checkpoint.then(|| {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = calc_server::Client::connect(addr).expect("overload ckpt client");
            let mut cycles = 0u64;
            loop {
                c.checkpoint().expect("overload checkpoint");
                cycles += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(run / 4);
            }
            cycles
        })
    });
    let clients: Vec<_> = (0..conns)
        .map(|i| {
            let stop = stop.clone();
            let hist = hist.clone();
            let busy = busy.clone();
            std::thread::Builder::new()
                .name(format!("overload-conn-{i}"))
                .stack_size(128 << 10)
                .spawn(move || {
                    let mut c =
                        calc_server::Client::connect(addr).expect("overload client connect");
                    let base = (i as u64 + 1) << 32;
                    let payload = [7u8; 64];
                    let mut count = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        match c.put(base | (count & 0x3F), &payload) {
                            Ok(_) => {
                                hist.record(t.elapsed().as_micros() as u64);
                                count += 1;
                            }
                            Err(calc_server::KvError::Busy(_)) => {
                                // Shed before execution: back off a hair
                                // and offer it again — the retry that IS
                                // always safe.
                                busy.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("overload put failed: {e}"),
                        }
                    }
                    count
                })
                .expect("spawn overload client")
        })
        .collect();
    std::thread::sleep(run);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients
        .into_iter()
        .map(|h| h.join().expect("overload client panicked"))
        .sum();
    let elapsed = start.elapsed();
    if let Some(h) = checkpointer {
        let cycles = h.join().expect("overload checkpointer panicked");
        assert!(cycles > 0, "no checkpoint cycle completed during overload run");
    }
    (
        total as f64 / elapsed.as_secs_f64(),
        hist.quantile(0.5),
        hist.quantile(0.99),
        busy.load(Ordering::Relaxed),
    )
}

fn main() {
    let out_path = PathBuf::from(
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into()),
    );
    let records = env_u64("BENCH_RECORDS", 500_000);
    let smoke_ms = env_u64("BENCH_SMOKE_MS", 1200);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let root = std::env::temp_dir().join(format!("calc-bench-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create bench root");

    // ---- Section 1: capture + recovery at scale, threads 1 vs 4.
    eprintln!("pipeline: loading {records} records…");
    let strategy = CalcStrategy::full(
        StoreConfig::for_records(records as usize + records as usize / 4 + 1024, 64),
        Arc::new(CommitLog::new(false)),
    );
    let payload = [0u8; 64];
    for k in 0..records {
        strategy
            .load_initial(calc_common::types::Key(k), &payload)
            .expect("load");
    }
    let mut points = Vec::new();
    for threads in [1usize, 4] {
        eprintln!("pipeline: capture+recover at checkpoint_threads={threads}…");
        points.push(capture_and_recover(&strategy, &root, records, threads));
    }

    // ---- Section 2: throughput during checkpointing, serial vs parallel.
    let mut tps_points = Vec::new();
    for threads in [1usize, 4] {
        eprintln!("pipeline: closed-loop CALC run at checkpoint_threads={threads}…");
        let mut spec = RunSpec::quick(StrategyKind::Calc, micro(100_000));
        spec.duration = Duration::from_millis(3 * smoke_ms);
        spec.checkpoint_at = vec![
            Duration::from_millis(smoke_ms / 2),
            Duration::from_millis(smoke_ms / 2 + smoke_ms),
            Duration::from_millis(smoke_ms / 2 + 2 * smoke_ms),
        ];
        spec.workers = cores.max(1);
        spec.feeders = 1;
        spec.disk_bytes_per_sec = 0;
        spec.checkpoint_threads = Some(threads);
        spec.dir_root = root.clone();
        let result = runner::run(&spec);
        assert_eq!(
            result.checkpoint_failures, 0,
            "checkpoint failed during throughput run"
        );
        tps_points.push((
            threads,
            result.mean_tps(spec.duration),
            mean_ckpt_ms(&result),
            result.checkpoints.iter().map(|s| s.parts).max().unwrap_or(0),
        ));
    }

    // ---- Section 3: per-strategy smoke runs.
    let mut smoke = Vec::new();
    for kind in StrategyKind::ALL_CHECKPOINTING {
        eprintln!("pipeline: smoke run {kind}…");
        let mut spec = RunSpec::quick(kind, micro(20_000));
        spec.duration = Duration::from_millis(smoke_ms);
        spec.checkpoint_at = vec![Duration::from_millis(smoke_ms / 3)];
        spec.workers = cores.max(1);
        spec.feeders = 1;
        spec.disk_bytes_per_sec = 0;
        spec.dir_root = root.clone();
        let result = runner::run(&spec);
        smoke.push((
            kind.name().to_string(),
            result.mean_tps(spec.duration),
            mean_ckpt_ms(&result),
            result.checkpoints.iter().map(|s| s.parts).max().unwrap_or(0),
            result.checkpoint_failures,
        ));
    }

    // ---- Section 4: disk footprint — compression ratio plus segmented-log
    // retention, the ISSUE 6 additions. The same 500k-record store is
    // checkpointed under each codec (4 capture threads) and recovered, so
    // the bytes and recovery times are directly comparable.
    let mut footprint = Vec::new();
    for codec in Codec::ALL {
        eprintln!("pipeline: footprint capture+recover with codec={codec}…");
        let dir = CheckpointDir::open(
            &root.join(format!("footprint-{codec}")),
            Arc::new(Throttle::unlimited()),
        )
        .expect("open footprint dir");
        dir.set_checkpoint_threads(4);
        dir.set_codec(codec);
        let start = Instant::now();
        let stats = strategy
            .checkpoint(&NoopEnv, &dir)
            .expect("footprint checkpoint");
        let capture = start.elapsed();
        let fresh = CalcStrategy::full(
            StoreConfig::for_records(records as usize + records as usize / 4 + 1024, 64),
            Arc::new(CommitLog::new(false)),
        );
        let start = Instant::now();
        let outcome = recover_checkpoint_only(&dir, &fresh).expect("footprint recover");
        let recovery = start.elapsed();
        assert_eq!(outcome.loaded_records, records, "footprint recovery lost records");
        footprint.push((codec.name(), ms(capture), stats.bytes, stats.raw_bytes, ms(recovery)));
    }
    assert!(
        footprint.iter().any(|f| f.0 == "rle" && f.2 < f.3),
        "rle checkpoint must be smaller than its raw stream"
    );

    // Segmented command log with truncation at a moving durable watermark:
    // disk use stays bounded near one segment while records keep flowing.
    eprintln!("pipeline: footprint segmented-log retention…");
    let log_dir = root.join("footprint-log");
    let vfs: Arc<dyn Vfs> = Arc::new(OsVfs);
    let mut log = SegmentedLogWriter::create(vfs.clone(), &log_dir, 64 << 10)
        .expect("create segmented log");
    let params: Arc<[u8]> = vec![0u8; 100].into();
    let appended = 8_000u64;
    let mut segments_truncated = 0u64;
    let mut log_bytes_truncated = 0u64;
    for seq in 1..=appended {
        log.append(&CommitRecord {
            seq: CommitSeq(seq),
            txn: TxnId(seq),
            proc: ProcId(1),
            params: params.clone(),
        })
        .expect("append log record");
        if seq % 2_000 == 0 {
            log.sync().expect("sync log");
            let t = truncate_segments_below(vfs.as_ref(), &log_dir, CommitSeq(seq))
                .expect("truncate log");
            segments_truncated += t.removed;
            log_bytes_truncated += t.bytes;
        }
    }
    log.sync().expect("final sync");
    let segments_written = log.rotations() + 1;
    let live_log_bytes: u64 = list_segments(vfs.as_ref(), &log_dir)
        .expect("list segments")
        .iter()
        .map(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    assert!(segments_truncated > 0, "retention never truncated a segment");
    assert!(
        live_log_bytes < log_bytes_truncated,
        "live log ({live_log_bytes} B) not bounded below truncated volume"
    );

    // ---- Section 5: warm-standby promotion vs cold recovery (ISSUE 7).
    // The 500k-record store is checkpointed once more, then a command-log
    // tail of post-checkpoint updates is appended. A standby bootstraps
    // from the chain and tails the log to caught-up *before* the clock
    // starts — that is the steady state a warm standby buys. Promotion
    // then only drains an already-applied log and seals, while the cold
    // path pays the full chain load plus log replay.
    eprintln!("pipeline: failover — preparing primary footprint…");
    let fo_ckpts = root.join("failover-ckpts");
    let fo_log_dir = root.join("failover-log");
    let fo_dir = CheckpointDir::open(&fo_ckpts, Arc::new(Throttle::unlimited()))
        .expect("open failover dir");
    fo_dir.set_checkpoint_threads(4);
    let fo_stats = strategy
        .checkpoint(&NoopEnv, &fo_dir)
        .expect("failover checkpoint");
    let tail_records = env_u64("BENCH_FAILOVER_TAIL", 1_000);
    let mut fo_log = SegmentedLogWriter::create(vfs.clone(), &fo_log_dir, 1 << 20)
        .expect("create failover log");
    let fo_payload = vec![7u8; 64];
    for k in 0..tail_records {
        let seq = fo_stats.watermark.0 + 1 + k;
        fo_log
            .append(&CommitRecord {
                seq: CommitSeq(seq),
                txn: TxnId(seq),
                proc: BENCH_SET,
                params: params::Writer::new().u64(k).bytes(&fo_payload).finish(),
            })
            .expect("append failover tail");
    }
    fo_log.sync().expect("sync failover tail");
    let registry = bench_registry();
    let fo_store = || StoreConfig::for_records(records as usize + records as usize / 4 + 1024, 64);

    eprintln!("pipeline: failover — cold recovery (chain + log replay)…");
    let cold_target = CalcStrategy::full(fo_store(), Arc::new(CommitLog::new(false)));
    let start = Instant::now();
    let stream =
        CommandLogStream::open_dir_with_vfs(vfs.clone(), &fo_log_dir).expect("open log stream");
    let cold_outcome =
        recover_streamed(&fo_dir, &cold_target, &registry, stream).expect("cold recovery");
    let cold_recovery = start.elapsed();
    assert_eq!(
        cold_outcome.replayed, tail_records,
        "cold recovery replayed the wrong tail"
    );

    eprintln!("pipeline: failover — warm standby bootstrap + tail…");
    let mut cfg = StandbyConfig::new(
        StrategyKind::Calc,
        fo_store(),
        fo_ckpts.clone(),
        fo_log_dir.clone(),
    );
    cfg.checkpoint_threads = 4;
    let mut standby = Standby::open(cfg, bench_registry()).expect("open standby");
    let poll = standby.poll().expect("standby catch-up poll");
    assert_eq!(
        poll.applied_seq,
        fo_stats.watermark.0 + tail_records,
        "standby failed to catch up before promotion"
    );

    eprintln!("pipeline: failover — promote…");
    let promoted = standby.promote().expect("promote");
    let promote = promoted.promote_duration();
    assert_eq!(
        promoted.record_count(),
        cold_target.record_count(),
        "promoted state diverged from cold recovery"
    );
    let failover_speedup = cold_recovery.as_secs_f64() / promote.as_secs_f64().max(1e-9);
    assert!(
        failover_speedup >= 5.0,
        "warm-standby promotion ({:.3} ms) must be ≥5× faster than cold recovery ({:.3} ms)",
        ms(promote),
        ms(cold_recovery)
    );

    // ---- Section 6: the TCP front-end under multi-connection durable
    // load (ISSUE 8). One group-commit server serves every point; the
    // per-commit-fsync baseline (`max_batch = 1`) gets its own instance.
    let server_ms = env_u64("BENCH_SERVER_MS", 800);
    let server_run = Duration::from_millis(server_ms);
    let server_conns: Vec<usize> = std::env::var("BENCH_SERVER_CONNS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![100, 400, 1000]);
    let preloaded = 20_000u64;

    eprintln!("pipeline: server — starting group-commit server…");
    let mut window_us = 0u64;
    let gc_db = calc_server::open_or_recover(&root.join("server-gc"), |c| {
        window_us = c.group_commit_window.as_micros() as u64;
    })
    .expect("open server engine");
    let gc_server = calc_server::Server::start(Arc::new(gc_db), "127.0.0.1:0")
        .expect("bind bench server");
    let gc_addr = gc_server.local_addr();
    {
        // Preload so every mid-run checkpoint captures a real store.
        let mut c = calc_server::Client::connect(gc_addr).expect("preload client");
        let payload = vec![7u8; 64];
        for batch in 0..(preloaded / 100) {
            let pairs: Vec<(u64, Vec<u8>)> = (0..100)
                .map(|j| (batch * 100 + j, payload.clone()))
                .collect();
            c.mput(&pairs).expect("preload mput");
        }
    }
    let mut server_points = Vec::new();
    for &conns in &server_conns {
        for with_checkpoint in [false, true] {
            eprintln!(
                "pipeline: server — {conns} connections{}…",
                if with_checkpoint { " + concurrent checkpoint" } else { "" }
            );
            let (tps, p50, p99) = server_load(gc_addr, conns, server_run, with_checkpoint);
            server_points.push((conns, with_checkpoint, tps, p50, p99));
        }
    }
    let gc_db = gc_server.shutdown();
    let Ok(gc_db) = Arc::try_unwrap(gc_db) else {
        panic!("server shutdown must release the sole database handle");
    };
    gc_db.shutdown();

    // Baseline: same wire path, same engine, but every commit pays its
    // own fsync — the wall group commit exists to break.
    let baseline_conns = *server_conns
        .iter()
        .find(|&&c| c >= 100)
        .unwrap_or_else(|| server_conns.iter().max().expect("non-empty conns"));
    eprintln!(
        "pipeline: server — per-commit-fsync baseline at {baseline_conns} connections…"
    );
    let fsync_db = calc_server::open_or_recover(&root.join("server-fsync"), |c| {
        c.group_commit_max_batch = 1;
    })
    .expect("open baseline engine");
    let fsync_server = calc_server::Server::start(Arc::new(fsync_db), "127.0.0.1:0")
        .expect("bind baseline server");
    let (baseline_tps, baseline_p50, baseline_p99) =
        server_load(fsync_server.local_addr(), baseline_conns, server_run, false);
    let fsync_db = fsync_server.shutdown();
    let Ok(fsync_db) = Arc::try_unwrap(fsync_db) else {
        panic!("server shutdown must release the sole database handle");
    };
    fsync_db.shutdown();

    let gc_tps = server_points
        .iter()
        .find(|(c, ck, ..)| *c == baseline_conns && !ck)
        .map(|(_, _, tps, ..)| *tps)
        .expect("group-commit point at the baseline connection count");
    let server_speedup = gc_tps / baseline_tps.max(1e-9);
    assert!(
        server_speedup >= 2.0,
        "group commit ({gc_tps:.0} tps) must be ≥2× per-commit fsync \
         ({baseline_tps:.0} tps) at {baseline_conns} connections"
    );

    // ---- Section 7: overload resilience (ISSUE 9, non-gating numbers).
    // A bounded permit gate admits conns/4 requests at a time while all
    // `overload_conns` connections offer load — ≥4× past saturation — so
    // the BUSY-aware loop exercises real shedding. The run with a
    // concurrent checkpoint shows what adaptive pacing buys: the pacer
    // sees the same LoadSignal the gate sheds on.
    let overload_conns = env_u64("BENCH_OVERLOAD_CONNS", 64) as usize;
    let overload_inflight = (overload_conns / 4).max(1);
    eprintln!(
        "pipeline: overload — {overload_conns} connections over {overload_inflight} permits…"
    );
    let ov_db = calc_server::open_or_recover(&root.join("server-overload"), |_| {})
        .expect("open overload engine");
    let ov_server = calc_server::Server::start_with(
        Arc::new(ov_db),
        "127.0.0.1:0",
        calc_server::ServerConfig {
            max_inflight: overload_inflight,
            queue_deadline: Duration::from_millis(2),
            ..calc_server::ServerConfig::default()
        },
    )
    .expect("bind overload server");
    let ov_addr = ov_server.local_addr();
    {
        // Preload so the concurrent checkpoint captures a real store.
        let mut c = calc_server::Client::connect(ov_addr).expect("overload preload client");
        let payload = vec![7u8; 64];
        for batch in 0..(preloaded / 100) {
            let pairs: Vec<(u64, Vec<u8>)> = (0..100)
                .map(|j| (batch * 100 + j, payload.clone()))
                .collect();
            c.mput(&pairs).expect("overload preload mput");
        }
    }
    let (ov_base_tps, ov_base_p50, ov_base_p99, ov_base_busy) =
        overload_load(ov_addr, overload_conns, server_run, false);
    eprintln!("pipeline: overload — same sweep with a concurrent checkpoint…");
    let (ov_ckpt_tps, ov_ckpt_p50, ov_ckpt_p99, ov_ckpt_busy) =
        overload_load(ov_addr, overload_conns, server_run, true);
    let ov_penalty_pct = (1.0 - ov_ckpt_tps / ov_base_tps.max(1e-9)) * 100.0;
    let (ov_shed_requests, ov_shed_connections, ov_capture_yields) = {
        let mut c = calc_server::Client::connect(ov_addr).expect("overload health client");
        let f = c.health_fields().expect("overload health");
        (
            f.get("shed_requests").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0),
            f.get("shed_connections").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0),
            f.get("capture_yields").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0),
        )
    };
    let ov_db = ov_server.shutdown();
    let Ok(ov_db) = Arc::try_unwrap(ov_db) else {
        panic!("server shutdown must release the sole database handle");
    };
    ov_db.shutdown();

    // ---- Section 8: shard-owned executor vs legacy pool (ISSUE 10).
    // Cross-shard ratio × worker count, both modes on identical
    // workloads. The gate: at 0% cross-shard, the lock-free single-owner
    // path must beat ordered 2PL — that is the whole point of the
    // refactor. Best-of-2 per gated point damps scheduler noise.
    let exec_run = Duration::from_millis(env_u64("BENCH_EXEC_MS", 400));
    let exec_workers = [2usize, 4];
    let exec_ratios = [0u64, 10, 50];
    let mut exec_points = Vec::new();
    for &workers in &exec_workers {
        for &pct in &exec_ratios {
            for mode in [
                calc_engine::ExecutorMode::Pool,
                calc_engine::ExecutorMode::ShardOwned,
            ] {
                eprintln!(
                    "pipeline: executor — {mode}, {workers} workers, {pct}% cross-shard…"
                );
                let tps_a = executor_point(mode, workers, pct, exec_run, &root);
                let tps = if pct == 0 {
                    tps_a.max(executor_point(mode, workers, pct, exec_run, &root))
                } else {
                    tps_a
                };
                exec_points.push((mode.name(), workers, pct, tps));
            }
        }
    }
    let mut exec_speedups = Vec::new();
    for &workers in &exec_workers {
        let tps_of = |mode: &str| {
            exec_points
                .iter()
                .find(|(m, w, p, _)| *m == mode && *w == workers && *p == 0)
                .map(|(_, _, _, t)| *t)
                .expect("0% point present for both modes")
        };
        let pool = tps_of("pool");
        let owned = tps_of("shard_owned");
        assert!(
            owned > pool,
            "shard-owned single-shard throughput ({owned:.0} tps) must beat the \
             legacy pool ({pool:.0} tps) at 0% cross-shard with {workers} workers"
        );
        exec_speedups.push((workers, owned / pool.max(1e-9)));
    }

    // ---- Emit JSON (hand-rolled; every value is a number or plain name).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"cores\": {cores}, \"records\": {records}, \"record_size\": 64}},\n"
    ));
    json.push_str("  \"capture_recovery\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"capture_ms\": {:.3}, \"parts\": {}, \"records\": {}, \
             \"recovery_ms\": {:.3}, \"part_load_ms\": {:.3}, \"merge_ms\": {:.3}, \
             \"recovery_threads\": {}}}{}\n",
            p.threads,
            ms(p.capture),
            p.parts,
            p.records,
            ms(p.recovery_total),
            ms(p.part_load),
            ms(p.merge),
            p.recovery_threads,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"throughput_during_checkpoint\": [\n");
    for (i, (threads, tps, ckpt_ms, parts)) in tps_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"tps\": {tps:.1}, \"ckpt_cycle_ms\": {ckpt_ms:.3}, \
             \"parts\": {parts}}}{}\n",
            if i + 1 < tps_points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"strategies\": [\n");
    for (i, (name, tps, ckpt_ms, parts, failures)) in smoke.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kind\": \"{name}\", \"tps\": {tps:.1}, \"ckpt_cycle_ms\": {ckpt_ms:.3}, \
             \"parts\": {parts}, \"ckpt_failures\": {failures}}}{}\n",
            if i + 1 < smoke.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"disk_footprint\": {\n");
    json.push_str("    \"codecs\": [\n");
    for (i, (name, capture_ms, bytes, raw_bytes, recovery_ms)) in footprint.iter().enumerate() {
        let ratio = if *bytes > 0 {
            *raw_bytes as f64 / *bytes as f64
        } else {
            1.0
        };
        json.push_str(&format!(
            "      {{\"codec\": \"{name}\", \"capture_ms\": {capture_ms:.3}, \
             \"bytes\": {bytes}, \"raw_bytes\": {raw_bytes}, \"ratio\": {ratio:.3}, \
             \"recovery_ms\": {recovery_ms:.3}}}{}\n",
            if i + 1 < footprint.len() { "," } else { "" },
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"log_retention\": {{\"appended_records\": {appended}, \
         \"segments_written\": {segments_written}, \
         \"segments_truncated\": {segments_truncated}, \
         \"log_bytes_truncated\": {log_bytes_truncated}, \
         \"live_log_bytes\": {live_log_bytes}}}\n"
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"failover\": {{\"records\": {records}, \"tail_records\": {tail_records}, \
         \"cold_recovery_ms\": {:.3}, \"promote_ms\": {:.3}, \"speedup\": {:.1}}},\n",
        ms(cold_recovery),
        ms(promote),
        failover_speedup,
    ));
    json.push_str("  \"server\": {\n");
    json.push_str(&format!(
        "    \"window_us\": {window_us}, \"preloaded_records\": {preloaded}, \
         \"run_ms\": {server_ms},\n"
    ));
    json.push_str("    \"points\": [\n");
    for (i, (conns, ckpt, tps, p50, p99)) in server_points.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"connections\": {conns}, \"concurrent_checkpoint\": {ckpt}, \
             \"tps\": {tps:.1}, \"p50_us\": {p50}, \"p99_us\": {p99}}}{}\n",
            if i + 1 < server_points.len() { "," } else { "" },
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"fsync_per_commit_baseline\": {{\"connections\": {baseline_conns}, \
         \"tps\": {baseline_tps:.1}, \"p50_us\": {baseline_p50}, \
         \"p99_us\": {baseline_p99}}},\n"
    ));
    json.push_str(&format!(
        "    \"group_commit_speedup\": {server_speedup:.2}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"overload\": {\n");
    json.push_str(&format!(
        "    \"connections\": {overload_conns}, \"max_inflight\": {overload_inflight}, \
         \"queue_deadline_ms\": 2, \"run_ms\": {server_ms},\n"
    ));
    json.push_str(&format!(
        "    \"no_checkpoint\": {{\"tps\": {ov_base_tps:.1}, \"p50_us\": {ov_base_p50}, \
         \"p99_us\": {ov_base_p99}, \"busy\": {ov_base_busy}}},\n"
    ));
    json.push_str(&format!(
        "    \"with_checkpoint\": {{\"tps\": {ov_ckpt_tps:.1}, \"p50_us\": {ov_ckpt_p50}, \
         \"p99_us\": {ov_ckpt_p99}, \"busy\": {ov_ckpt_busy}}},\n"
    ));
    json.push_str(&format!(
        "    \"checkpoint_tps_penalty_pct\": {ov_penalty_pct:.1},\n"
    ));
    json.push_str(&format!(
        "    \"shed_requests\": {ov_shed_requests}, \
         \"shed_connections\": {ov_shed_connections}, \
         \"capture_yields\": {ov_capture_yields}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"executor\": {\n");
    json.push_str(&format!(
        "    \"run_ms\": {}, \"keys\": 4096,\n",
        exec_run.as_millis()
    ));
    json.push_str("    \"points\": [\n");
    for (i, (mode, workers, pct, tps)) in exec_points.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"mode\": \"{mode}\", \"workers\": {workers}, \
             \"cross_shard_pct\": {pct}, \"tps\": {tps:.1}}}{}\n",
            if i + 1 < exec_points.len() { "," } else { "" },
        ));
    }
    json.push_str("    ],\n");
    json.push_str("    \"single_shard_speedup\": [\n");
    for (i, (workers, speedup)) in exec_speedups.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"workers\": {workers}, \"shard_owned_over_pool\": {speedup:.3}}}{}\n",
            if i + 1 < exec_speedups.len() { "," } else { "" },
        ));
    }
    json.push_str("    ]\n");
    json.push_str("  }\n");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    eprintln!("pipeline: wrote {}", out_path.display());
    println!("{json}");
    let _ = std::fs::remove_dir_all(&root);
}
