//! CLI entry point regenerating the paper's figures.
//!
//! ```text
//! figures <id> [--seconds N] [--records N] [--warehouses N]
//!              [--workers N] [--feeders N] [--disk-mbps N]
//!              [--out DIR] [--seed N]
//!
//! ids: fig2a fig2b fig2c fig3a fig3b fig3c fig4a fig4b ablation-mvcc
//!      fig5 fig6 fig7a fig7b fig8 all
//! ```
//!
//! Each figure writes CSVs under the output directory (default
//! `results/`) and prints paper-shaped tables. Run with `--release`.

use calc_bench::figures::{self, FigureOpts};

fn usage() -> ! {
    eprintln!(
        "usage: figures <fig2a|fig2b|fig2c|fig3a|fig3b|fig3c|fig4a|fig4b|fig5|fig6|fig7a|fig7b|fig8|all>\n\
         \t[--seconds N] [--records N] [--warehouses N] [--workers N]\n\
         \t[--feeders N] [--disk-mbps N] [--out DIR] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(figure) = args.next() else { usage() };
    let mut opts = FigureOpts::default();
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seconds" => opts.seconds = value().parse().unwrap_or_else(|_| usage()),
            "--records" => opts.records = value().parse().unwrap_or_else(|_| usage()),
            "--warehouses" => opts.warehouses = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => opts.workers = value().parse().unwrap_or_else(|_| usage()),
            "--feeders" => opts.feeders = value().parse().unwrap_or_else(|_| usage()),
            "--disk-mbps" => opts.disk_mbps = value().parse().unwrap_or_else(|_| usage()),
            "--out" => opts.out_dir = value().into(),
            "--seed" => opts.seed = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    #[cfg(debug_assertions)]
    eprintln!("WARNING: debug build — run with --release for meaningful numbers");

    eprintln!(
        "figures {figure}: {}s runs, {} records, {} warehouses, {} workers, disk {} MB/s",
        opts.seconds, opts.records, opts.warehouses, opts.workers, opts.disk_mbps
    );
    match figure.as_str() {
        "fig2a" => {
            figures::fig2a(&opts);
        }
        "fig2b" => {
            figures::fig2b(&opts);
        }
        "fig2c" => figures::fig2c(&opts),
        "fig3a" => {
            figures::fig3a(&opts);
        }
        "fig3b" => {
            figures::fig3b(&opts);
        }
        "fig3c" => figures::fig3c(&opts),
        "fig4a" => {
            figures::fig4a(&opts);
        }
        "fig4b" => figures::fig4b(&opts),
        "fig5" => figures::fig5(&opts),
        "fig6" => figures::fig6(&opts),
        "fig7a" => {
            figures::fig7a(&opts);
        }
        "fig7b" => figures::fig7b(&opts),
        "fig8" => figures::fig8(&opts),
        "ablation-mvcc" => figures::ablation_mvcc(&opts),
        "all" => figures::all(&opts),
        _ => usage(),
    }
}
