//! CSV and table output helpers.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes rows of fields as CSV at `path` (creating parent directories).
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<PathBuf> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{}", header.join(","))?;
    for row in rows {
        writeln!(out, "{}", row.join(","))?;
    }
    out.flush()?;
    Ok(path.to_path_buf())
}

/// Prints an aligned table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let formatted: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", formatted.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a count with engineering suffixes, as the paper's axes do
/// ("1.5 M").
pub fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let path = std::env::temp_dir().join(format!(
            "calc-report-{}/sub/test.csv",
            std::process::id()
        ));
        write_csv(
            &path,
            &["a", "b"],
            vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_count(1_500_000.0), "1.50M");
        assert_eq!(fmt_count(2_500.0), "2.5k");
        assert_eq!(fmt_count(12.0), "12");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
        assert_eq!(fmt_ns(1_500_000), "1.5ms");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(900), "900ns");
    }
}
