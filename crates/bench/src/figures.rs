//! One function per figure of the paper's evaluation (§5 + Appendix A).
//!
//! Every figure writes a CSV under the output directory and prints a table
//! shaped like the paper's. Scale is controlled by [`FigureOpts`]:
//! defaults are laptop-sized (the paper's absolute numbers came from a
//! 16-core EC2 box with a 150 MB/s disk; the *shapes* are what reproduce).

use std::path::PathBuf;
use std::time::Duration;

use calc_core::merge::materialize_chain;
use calc_engine::StrategyKind;
use calc_workload::micro::MicroConfig;
use calc_workload::spin;
use calc_workload::tpcc::TpccConfig;

use crate::report::{fmt_count, fmt_ns, print_table, write_csv};
use crate::runner::{self, LoadMode, RunResult, RunSpec, WorkloadSpec};

/// Scale knobs shared by all figures.
#[derive(Clone, Debug)]
pub struct FigureOpts {
    /// Base experiment duration in seconds (the paper's runs are
    /// 100–300 s; checkpoint times scale proportionally).
    pub seconds: f64,
    /// Microbenchmark database size (paper: 20 M records).
    pub records: u64,
    /// TPC-C warehouses (paper: 50).
    pub warehouses: u32,
    /// Worker threads (paper: 15 of 16 cores).
    pub workers: usize,
    /// Closed-loop feeder threads.
    pub feeders: usize,
    /// Simulated disk bandwidth in MB/s (paper: ~150; 0 = unlimited).
    pub disk_mbps: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Workload seed.
    pub seed: u64,
}

impl Default for FigureOpts {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        FigureOpts {
            seconds: 10.0,
            records: 500_000,
            warehouses: 4,
            workers: (cores - 1).max(2),
            feeders: 2,
            disk_mbps: 150,
            out_dir: PathBuf::from("results"),
            seed: 42,
        }
    }
}

impl FigureOpts {
    fn duration(&self) -> Duration {
        Duration::from_secs_f64(self.seconds)
    }

    /// Two checkpoints, like Figure 2's 200-second run with checkpoints
    /// at 30 s and 110 s.
    fn two_checkpoints(&self) -> Vec<Duration> {
        vec![
            Duration::from_secs_f64(self.seconds * 0.15),
            Duration::from_secs_f64(self.seconds * 0.55),
        ]
    }

    fn micro(&self, long_txns: bool, hot_fraction: f64) -> MicroConfig {
        // Long transactions: the paper's take ~2 s within 200 s runs (1%
        // of the run); scale proportionally, floored at 100 ms.
        let long_secs = (2.0 * self.seconds / 200.0).max(0.1);
        MicroConfig {
            db_size: self.records,
            record_size: 100,
            ops_per_txn: 10,
            txn_spin: 16,
            long_txn_prob: if long_txns { 2.0e-5 } else { 0.0 },
            long_txn_spin: spin::calibrate(Duration::from_secs_f64(long_secs)),
            long_txn_batch: 1000.min(self.records as usize / 10),
            hot_fraction,
        }
    }

    fn spec(&self, kind: StrategyKind, workload: WorkloadSpec) -> RunSpec {
        RunSpec {
            kind,
            workload,
            duration: self.duration(),
            checkpoint_at: self.two_checkpoints(),
            merge_batch: None,
            workers: self.workers,
            feeders: self.feeders,
            load: LoadMode::Closed,
            disk_bytes_per_sec: self.disk_mbps * 1024 * 1024,
            checkpoint_threads: None,
            sample_every: Duration::from_millis((self.seconds * 10.0).clamp(20.0, 500.0) as u64),
            seed: self.seed,
            dir_root: std::env::temp_dir().join("calc-figures"),
        }
    }
}

fn run_set(
    opts: &FigureOpts,
    kinds: &[StrategyKind],
    workload: WorkloadSpec,
    checkpoint_at: Vec<Duration>,
    with_none: bool,
) -> Vec<RunResult> {
    let mut results = Vec::new();
    if with_none {
        let mut spec = opts.spec(StrategyKind::NoCheckpoint, workload.clone());
        spec.checkpoint_at = Vec::new();
        eprintln!("  running None (baseline)…");
        results.push(runner::run(&spec));
    }
    for &kind in kinds {
        let mut spec = opts.spec(kind, workload.clone());
        spec.checkpoint_at = checkpoint_at.clone();
        eprintln!("  running {}…", kind.name());
        results.push(runner::run(&spec));
    }
    results
}

fn timeline_csv(opts: &FigureOpts, name: &str, results: &[RunResult]) {
    let header: Vec<String> = std::iter::once("t_sec".to_string())
        .chain(results.iter().map(|r| format!("{}_tps", r.kind.name())))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let n = results.iter().map(|r| r.timeline.len()).max().unwrap_or(0);
    let rows = (0..n).map(|i| {
        let t = results
            .iter()
            .find_map(|r| r.timeline.get(i).map(|p| p.t))
            .unwrap_or_default();
        std::iter::once(format!("{t:.2}"))
            .chain(results.iter().map(|r| {
                r.timeline
                    .get(i)
                    .map(|p| format!("{:.0}", p.tps))
                    .unwrap_or_default()
            }))
            .collect()
    });
    let path = opts.out_dir.join(format!("{name}.csv"));
    write_csv(&path, &header_refs, rows).expect("write csv");
    eprintln!("  wrote {}", path.display());
}

/// Median instantaneous throughput over samples in `[from, to)` seconds.
fn median_tps(r: &RunResult, from: f64, to: f64) -> f64 {
    let mut v: Vec<f64> = r
        .timeline
        .iter()
        .filter(|p| p.t >= from && p.t < to)
        .map(|p| p.tps)
        .collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

/// Rest-state throughput: median of the samples before the first
/// checkpoint trigger (intra-run — robust to the cross-run machine noise
/// that makes `lost_vs_none` jittery on shared hosts).
fn rest_tps(r: &RunResult, first_ckpt_at: f64) -> f64 {
    median_tps(r, first_ckpt_at * 0.2, first_ckpt_at * 0.95)
}

/// In-window throughput: median of the samples inside checkpoint windows.
fn window_tps(r: &RunResult, schedule: &[Duration]) -> f64 {
    let mut v = Vec::new();
    for (at, stats) in schedule.iter().zip(r.checkpoints.iter()) {
        let from = at.as_secs_f64();
        let to = from + stats.duration.as_secs_f64();
        v.extend(
            r.timeline
                .iter()
                .filter(|p| p.t >= from && p.t < to)
                .map(|p| p.tps),
        );
    }
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn totals_table(title: &str, results: &[RunResult], duration: Duration) -> Vec<Vec<String>> {
    let baseline = results
        .iter()
        .find(|r| r.kind == StrategyKind::NoCheckpoint)
        .map(|r| r.committed);
    let first_at = results
        .iter()
        .flat_map(|r| r.schedule.first())
        .map(|d| d.as_secs_f64())
        .next()
        .unwrap_or(duration.as_secs_f64() * 0.15);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let lost = baseline.map(|b| b.saturating_sub(r.committed));
            let quiesce: f64 = r.checkpoints.iter().map(|c| c.quiesce.as_secs_f64()).sum();
            let ckpt_dur: f64 = r
                .checkpoints
                .iter()
                .map(|c| c.duration.as_secs_f64())
                .sum::<f64>()
                / r.checkpoints.len().max(1) as f64;
            let rest = rest_tps(r, first_at);
            let window = window_tps(r, &r.schedule);
            vec![
                r.kind.name().to_string(),
                fmt_count(r.committed as f64),
                fmt_count(r.mean_tps(duration)),
                fmt_count(rest),
                fmt_count(window),
                lost.map(|l| fmt_count(l as f64)).unwrap_or_else(|| "-".into()),
                format!("{quiesce:.3}s"),
                format!("{ckpt_dur:.2}s"),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "strategy",
            "committed",
            "mean_tps",
            "rest_tps",
            "window_tps",
            "lost_vs_none",
            "quiesce",
            "ckpt_dur",
        ],
        &rows,
    );
    rows
}

fn totals_csv(opts: &FigureOpts, name: &str, results: &[RunResult], duration: Duration) {
    let baseline = results
        .iter()
        .find(|r| r.kind == StrategyKind::NoCheckpoint)
        .map(|r| r.committed);
    let first_at = results
        .iter()
        .flat_map(|r| r.schedule.first())
        .map(|d| d.as_secs_f64())
        .next()
        .unwrap_or(duration.as_secs_f64() * 0.15);
    let rows = results.iter().map(|r| {
        vec![
            r.kind.name().to_string(),
            r.committed.to_string(),
            format!("{:.0}", r.mean_tps(duration)),
            format!("{:.0}", rest_tps(r, first_at)),
            format!("{:.0}", window_tps(r, &r.schedule)),
            baseline
                .map(|b| b.saturating_sub(r.committed).to_string())
                .unwrap_or_default(),
            format!(
                "{:.4}",
                r.checkpoints
                    .iter()
                    .map(|c| c.quiesce.as_secs_f64())
                    .sum::<f64>()
            ),
        ]
    });
    let path = opts.out_dir.join(format!("{name}.csv"));
    write_csv(
        &path,
        &[
            "strategy",
            "committed",
            "mean_tps",
            "rest_tps",
            "window_tps",
            "lost_vs_none",
            "quiesce_sec",
        ],
        rows,
    )
    .expect("write csv");
    eprintln!("  wrote {}", path.display());
}

/// Figure 2(a): throughput over time, full checkpointing, no long
/// transactions. Returns the results so `fig2c` can reuse them.
pub fn fig2a(opts: &FigureOpts) -> Vec<RunResult> {
    eprintln!("fig2a: full checkpointing, no long txns");
    let results = run_set(
        opts,
        &StrategyKind::FULL_SET,
        WorkloadSpec::Micro(opts.micro(false, 1.0)),
        opts.two_checkpoints(),
        true,
    );
    timeline_csv(opts, "fig2a_timeline", &results);
    totals_table("Figure 2(a): full checkpointing, no long txns", &results, opts.duration());
    totals_csv(opts, "fig2a_totals", &results, opts.duration());
    results
}

/// Figure 2(b): same with 0.001%-scaled long transactions — IPP/Zig-Zag
/// stall waiting for a physical point of consistency.
pub fn fig2b(opts: &FigureOpts) -> Vec<RunResult> {
    eprintln!("fig2b: full checkpointing, with long txns");
    let results = run_set(
        opts,
        &StrategyKind::FULL_SET,
        WorkloadSpec::Micro(opts.micro(true, 1.0)),
        opts.two_checkpoints(),
        true,
    );
    timeline_csv(opts, "fig2b_timeline", &results);
    totals_table("Figure 2(b): full checkpointing, long txns", &results, opts.duration());
    totals_csv(opts, "fig2b_totals", &results, opts.duration());
    results
}

/// Figure 2(c): transactions lost (cost summary) for 2(a) and 2(b).
pub fn fig2c(opts: &FigureOpts) {
    let a = fig2a(opts);
    let b = fig2b(opts);
    let lost = |results: &[RunResult]| -> Vec<(String, u64)> {
        let base = results
            .iter()
            .find(|r| r.kind == StrategyKind::NoCheckpoint)
            .map(|r| r.committed)
            .unwrap_or(0);
        results
            .iter()
            .filter(|r| r.kind != StrategyKind::NoCheckpoint)
            .map(|r| (r.kind.name().to_string(), base.saturating_sub(r.committed)))
            .collect()
    };
    let la = lost(&a);
    let lb = lost(&b);
    let rows: Vec<Vec<String>> = la
        .iter()
        .map(|(name, l)| {
            let lb_val = lb
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            vec![name.clone(), fmt_count(*l as f64), fmt_count(lb_val as f64)]
        })
        .collect();
    print_table(
        "Figure 2(c): transactions lost",
        &["strategy", "normal", "w/ long txns"],
        &rows,
    );
    write_csv(
        &opts.out_dir.join("fig2c_lost.csv"),
        &["strategy", "lost_normal", "lost_long"],
        rows.iter().enumerate().map(|(i, r)| {
            vec![
                r[0].clone(),
                la[i].1.to_string(),
                lb.iter()
                    .find(|(n, _)| *n == r[0])
                    .map(|(_, v)| v.to_string())
                    .unwrap_or_default(),
            ]
        }),
    )
    .expect("write csv");
}

fn fig3_run(opts: &FigureOpts, hot: f64, tag: &str) -> Vec<RunResult> {
    eprintln!("fig3{tag}: partial checkpointing, {:.0}% locality, long txns", hot * 100.0);
    let results = run_set(
        opts,
        &StrategyKind::PARTIAL_SET,
        WorkloadSpec::Micro(opts.micro(true, hot)),
        opts.two_checkpoints(),
        true,
    );
    timeline_csv(opts, &format!("fig3{tag}_timeline"), &results);
    totals_table(
        &format!("Figure 3({tag}): partial checkpointing, {:.0}% modified", hot * 100.0),
        &results,
        opts.duration(),
    );
    totals_csv(opts, &format!("fig3{tag}_totals"), &results, opts.duration());
    results
}

/// Figure 3(a): partial checkpointing, 10% of records modified.
pub fn fig3a(opts: &FigureOpts) -> Vec<RunResult> {
    fig3_run(opts, 0.10, "a")
}

/// Figure 3(b): partial checkpointing, 20% of records modified.
pub fn fig3b(opts: &FigureOpts) -> Vec<RunResult> {
    fig3_run(opts, 0.20, "b")
}

/// Figure 3(c): transactions lost for 3(a)/3(b).
pub fn fig3c(opts: &FigureOpts) {
    let a = fig3a(opts);
    let b = fig3b(opts);
    let base_a = a[0].committed;
    let base_b = b[0].committed;
    let rows: Vec<Vec<String>> = a
        .iter()
        .skip(1)
        .zip(b.iter().skip(1))
        .map(|(ra, rb)| {
            vec![
                ra.kind.name().to_string(),
                fmt_count(base_a.saturating_sub(ra.committed) as f64),
                fmt_count(base_b.saturating_sub(rb.committed) as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 3(c): transactions lost",
        &["strategy", "10%", "20%"],
        &rows,
    );
    write_csv(
        &opts.out_dir.join("fig3c_lost.csv"),
        &["strategy", "lost_10pct", "lost_20pct"],
        rows.iter().cloned(),
    )
    .expect("write csv");
}

/// Figure 4(a): CALC vs pCALC (50/20/10% locality) with four checkpoints
/// and background merging after every 4 partials.
pub fn fig4a(opts: &FigureOpts) -> Vec<RunResult> {
    eprintln!("fig4a: full vs partial checkpointing, 4 checkpoints, merge batch 4");
    // Paper: 300 s, checkpoints at 10/80/150/220.
    let at: Vec<Duration> = [0.033, 0.267, 0.5, 0.733]
        .iter()
        .map(|f| Duration::from_secs_f64(opts.seconds * f))
        .collect();
    let mut results = Vec::new();
    {
        let mut spec = opts.spec(StrategyKind::NoCheckpoint, WorkloadSpec::Micro(opts.micro(false, 1.0)));
        spec.checkpoint_at = Vec::new();
        eprintln!("  running None (baseline)…");
        results.push(runner::run(&spec));
    }
    {
        let mut spec = opts.spec(StrategyKind::Calc, WorkloadSpec::Micro(opts.micro(false, 1.0)));
        spec.checkpoint_at = at.clone();
        eprintln!("  running CALC…");
        results.push(runner::run(&spec));
    }
    for hot in [0.5, 0.2, 0.1] {
        let mut spec = opts.spec(StrategyKind::PCalc, WorkloadSpec::Micro(opts.micro(false, hot)));
        spec.checkpoint_at = at.clone();
        spec.merge_batch = Some(4);
        eprintln!("  running pCALC {:.0}%…", hot * 100.0);
        results.push(runner::run(&spec));
    }
    timeline_csv(opts, "fig4a_timeline", &results);
    totals_table("Figure 4(a): CALC vs pCALC", &results, opts.duration());
    results
}

/// Figure 4(b): runtime cost (transactions lost) and worst-case recovery
/// (merge) time at merge batch sizes 4/8/16.
pub fn fig4b(opts: &FigureOpts) {
    eprintln!("fig4b: runtime vs recovery-time tradeoff");
    // 18 checkpoints: not a multiple of any batch size, so a couple of
    // partials always survive the background merges — needed as the
    // representative partial for the recovery drill below.
    let n_ckpts = 18usize;
    let at: Vec<Duration> = (0..n_ckpts)
        .map(|i| Duration::from_secs_f64(opts.seconds * (0.05 + 0.9 * i as f64 / n_ckpts as f64)))
        .collect();

    // Baseline and CALC.
    let mut none_spec = opts.spec(
        StrategyKind::NoCheckpoint,
        WorkloadSpec::Micro(opts.micro(false, 1.0)),
    );
    none_spec.checkpoint_at = Vec::new();
    eprintln!("  running None (baseline)…");
    let none = runner::run(&none_spec);

    let mut calc_spec = opts.spec(StrategyKind::Calc, WorkloadSpec::Micro(opts.micro(false, 1.0)));
    calc_spec.checkpoint_at = at.clone();
    eprintln!("  running CALC ({} checkpoints)…", n_ckpts);
    let calc = runner::run(&calc_spec);

    let mut rows = vec![vec![
        "CALC".to_string(),
        "-".to_string(),
        fmt_count(none.committed.saturating_sub(calc.committed) as f64),
        "0s".to_string(),
    ]];
    let mut csv_rows = vec![vec![
        "CALC".to_string(),
        String::new(),
        none.committed.saturating_sub(calc.committed).to_string(),
        "0".to_string(),
    ]];

    for &batch in &[4usize, 8, 16] {
        for &hot in &[0.5, 0.2, 0.1] {
            let mut spec = opts.spec(StrategyKind::PCalc, WorkloadSpec::Micro(opts.micro(false, hot)));
            spec.checkpoint_at = at.clone();
            spec.merge_batch = Some(batch);
            eprintln!("  running pCALC {:.0}% (merge batch {batch})…", hot * 100.0);
            let result = runner::run(&spec);
            // Worst-case recovery drill: the paper annotates each bar
            // with the time to merge a *full batch* of partials at
            // recovery. Build that worst case explicitly — the newest
            // full checkpoint plus `batch` copies of a representative
            // partial from this run — and time its materialization.
            let dir = calc_core::manifest::CheckpointDir::open(
                &result.dir,
                std::sync::Arc::new(calc_core::throttle::Throttle::unlimited()),
            )
            .expect("open run dir");
            let scan = dir.scan().expect("scan run dir");
            let newest_full = scan
                .iter()
                .filter(|m| m.kind == calc_core::file::CheckpointKind::Full)
                .max_by_key(|m| m.id)
                .cloned();
            let newest_partial = scan
                .iter()
                .filter(|m| m.kind == calc_core::file::CheckpointKind::Partial)
                .max_by_key(|m| m.id)
                .cloned();
            let recovery = match (newest_full, newest_partial) {
                (Some(full), Some(part)) => {
                    let drill_root = result.dir.join("recovery-drill");
                    let _ = std::fs::remove_dir_all(&drill_root);
                    let drill = calc_core::manifest::CheckpointDir::open(
                        &drill_root,
                        std::sync::Arc::new(calc_core::throttle::Throttle::unlimited()),
                    )
                    .expect("open drill dir");
                    // Re-publish the entries through the drill dir (the
                    // run's checkpoints are manifest + part files, so a
                    // plain file copy can't clone a cycle). The timing
                    // below covers materialization only.
                    let republish = |kind, id, watermark, entries: &[calc_core::file::RecordEntry]| {
                        let (pending, mut writers) = drill
                            .begin_parts(kind, id, watermark, 1)
                            .expect("begin drill cycle");
                        for e in entries {
                            match e {
                                calc_core::file::RecordEntry::Value(k, v) => {
                                    writers[0].write_record(*k, v).expect("drill record")
                                }
                                calc_core::file::RecordEntry::Tombstone(k) => {
                                    writers[0].write_tombstone(*k).expect("drill tombstone")
                                }
                            }
                        }
                        pending.publish(writers).expect("publish drill cycle");
                    };
                    let full_entries = full.read_all().expect("read full");
                    let part_entries = part.read_all().expect("read partial");
                    republish(
                        calc_core::file::CheckpointKind::Full,
                        0,
                        full.watermark,
                        &full_entries,
                    );
                    for i in 0..batch {
                        republish(
                            calc_core::file::CheckpointKind::Partial,
                            1 + i as u64,
                            part.watermark,
                            &part_entries,
                        );
                    }
                    let (dfull, dparts) = drill
                        .recovery_chain()
                        .expect("drill chain")
                        .expect("drill full");
                    assert_eq!(dparts.len(), batch, "drill chain length");
                    let start = std::time::Instant::now();
                    let state = materialize_chain(&dfull, &dparts).expect("materialize");
                    std::hint::black_box(state.len());
                    start.elapsed()
                }
                _ => Duration::ZERO,
            };
            let lost = none.committed.saturating_sub(result.committed);
            let label = format!("pCALC {:.0}%", hot * 100.0);
            rows.push(vec![
                label.clone(),
                batch.to_string(),
                fmt_count(lost as f64),
                format!("{:.2}s", recovery.as_secs_f64()),
            ]);
            csv_rows.push(vec![
                label,
                batch.to_string(),
                lost.to_string(),
                format!("{:.4}", recovery.as_secs_f64()),
            ]);
        }
    }
    print_table(
        "Figure 4(b): transactions lost + worst-case recovery time",
        &["strategy", "merge_batch", "lost", "recovery_time"],
        &rows,
    );
    write_csv(
        &opts.out_dir.join("fig4b_tradeoff.csv"),
        &["strategy", "merge_batch", "lost", "recovery_sec"],
        csv_rows,
    )
    .expect("write csv");
}

/// Figure 5: latency CDFs at 90% and 70% of peak load, with and without
/// long transactions, for None/CALC/Zigzag/IPP/Fuzzy/Naive.
pub fn fig5(opts: &FigureOpts) {
    eprintln!("fig5: latency distributions");
    for (tag, long_txns) in [("no_long", false), ("long", true)] {
        let workload = WorkloadSpec::Micro(opts.micro(long_txns, 1.0));
        eprintln!("  measuring peak throughput ({tag})…");
        let peak = runner::measure_peak(
            &workload,
            Duration::from_secs_f64((opts.seconds / 4.0).clamp(1.0, 5.0)),
            &std::env::temp_dir().join("calc-figures-peak"),
        );
        eprintln!("  peak ≈ {:.0} tps", peak);
        for load_pct in [90u32, 70] {
            let tps = peak * load_pct as f64 / 100.0;
            let mut results = Vec::new();
            let kinds = [
                StrategyKind::NoCheckpoint,
                StrategyKind::Calc,
                StrategyKind::Zigzag,
                StrategyKind::Ipp,
                StrategyKind::Fuzzy,
                StrategyKind::Naive,
            ];
            for kind in kinds {
                let mut spec = opts.spec(kind, workload.clone());
                spec.load = LoadMode::Open { tps };
                spec.checkpoint_at = if kind == StrategyKind::NoCheckpoint {
                    Vec::new()
                } else {
                    // One checkpoint at 30% of the run, per §5.1.4.
                    vec![Duration::from_secs_f64(opts.seconds * 0.3)]
                };
                eprintln!("  running {} at {load_pct}% load ({tag})…", kind.name());
                results.push(runner::run(&spec));
            }
            // CDF CSV: long format (strategy, latency_ns, cum_frac).
            let path = opts
                .out_dir
                .join(format!("fig5_{tag}_{load_pct}pct_cdf.csv"));
            write_csv(
                &path,
                &["strategy", "latency_ns", "cum_frac"],
                results.iter().flat_map(|r| {
                    let name = r.kind.name().to_string();
                    r.latency_cdf
                        .iter()
                        .map(move |(ns, f)| vec![name.clone(), ns.to_string(), format!("{f:.6}")])
                        .collect::<Vec<_>>()
                }),
            )
            .expect("write csv");
            eprintln!("  wrote {}", path.display());
            let rows: Vec<Vec<String>> = results
                .iter()
                .map(|r| {
                    let (p50, p99, p999, max) = r.latency_quantiles;
                    vec![
                        r.kind.name().to_string(),
                        fmt_ns(p50),
                        fmt_ns(p99),
                        fmt_ns(p999),
                        fmt_ns(max),
                    ]
                })
                .collect();
            print_table(
                &format!("Figure 5 ({tag}, {load_pct}% load): latency quantiles"),
                &["strategy", "p50", "p99", "p99.9", "max"],
                &rows,
            );
        }
    }
}

/// Figure 6: memory used for record storage over time, one checkpoint.
pub fn fig6(opts: &FigureOpts) {
    eprintln!("fig6: memory usage over time");
    let at = vec![Duration::from_secs_f64(opts.seconds * 0.2)];
    let results = run_set(
        opts,
        &StrategyKind::FULL_SET,
        WorkloadSpec::Micro(opts.micro(false, 1.0)),
        at,
        false,
    );
    // Memory timeline CSV (record copies, as the paper's y-axis).
    let header: Vec<String> = std::iter::once("t_sec".to_string())
        .chain(results.iter().map(|r| format!("{}_copies", r.kind.name())))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let n = results.iter().map(|r| r.timeline.len()).max().unwrap_or(0);
    let rows = (0..n).map(|i| {
        let t = results
            .iter()
            .find_map(|r| r.timeline.get(i).map(|p| p.t))
            .unwrap_or_default();
        std::iter::once(format!("{t:.2}"))
            .chain(results.iter().map(|r| {
                r.timeline
                    .get(i)
                    .map(|p| p.mem_copies.to_string())
                    .unwrap_or_default()
            }))
            .collect()
    });
    write_csv(&opts.out_dir.join("fig6_memory.csv"), &header_refs, rows).expect("write csv");
    let table: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let base = r.records.max(1);
            let peak = r.timeline.iter().map(|p| p.mem_copies).max().unwrap_or(0);
            let rest = r.timeline.last().map(|p| p.mem_copies).unwrap_or(0);
            vec![
                r.kind.name().to_string(),
                fmt_count(rest as f64),
                fmt_count(peak as f64),
                format!("{:.2}x", peak as f64 / base as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 6: record copies in memory (rest / peak / peak ratio)",
        &["strategy", "at_rest", "peak", "peak_ratio"],
        &table,
    );
}

/// Figure 7(a): TPC-C throughput over time per strategy.
pub fn fig7a(opts: &FigureOpts) -> Vec<RunResult> {
    eprintln!("fig7a: TPC-C throughput");
    let at = vec![Duration::from_secs_f64(opts.seconds * 0.33)];
    let results = run_set(
        opts,
        &StrategyKind::FULL_SET,
        WorkloadSpec::Tpcc(TpccConfig::with_warehouses(opts.warehouses)),
        at,
        true,
    );
    timeline_csv(opts, "fig7a_timeline", &results);
    totals_table("Figure 7(a): TPC-C", &results, opts.duration());
    totals_csv(opts, "fig7a_totals", &results, opts.duration());
    results
}

/// Figure 7(b): TPC-C transactions lost.
pub fn fig7b(opts: &FigureOpts) {
    let results = fig7a(opts);
    let base = results[0].committed;
    let rows: Vec<Vec<String>> = results
        .iter()
        .skip(1)
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                fmt_count(base.saturating_sub(r.committed) as f64),
            ]
        })
        .collect();
    print_table("Figure 7(b): TPC-C transactions lost", &["strategy", "lost"], &rows);
    write_csv(
        &opts.out_dir.join("fig7b_lost.csv"),
        &["strategy", "lost"],
        rows.iter().cloned(),
    )
    .expect("write csv");
}

/// Figure 8 / Appendix A: checkpoint duration and transactions lost vs
/// database size (linear scalability of CALC).
pub fn fig8(opts: &FigureOpts) {
    eprintln!("fig8: scalability with database size");
    // Paper sweeps 10/50/100/150 M; we sweep ¼×..1.5× of the configured
    // size, preserving the 1:5:10:15 ratio.
    let sizes: Vec<u64> = [1.0 / 15.0, 5.0 / 15.0, 10.0 / 15.0, 1.0]
        .iter()
        .map(|f| ((opts.records as f64 * f) as u64).max(1000))
        .collect();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &size in &sizes {
        let mut o = opts.clone();
        o.records = size;
        let workload = WorkloadSpec::Micro(o.micro(false, 1.0));
        let mut none_spec = o.spec(StrategyKind::NoCheckpoint, workload.clone());
        none_spec.checkpoint_at = Vec::new();
        eprintln!("  {size} records: baseline…");
        let none = runner::run(&none_spec);
        let mut spec = o.spec(StrategyKind::Calc, workload);
        spec.checkpoint_at = vec![Duration::from_secs_f64(o.seconds * 0.2)];
        eprintln!("  {size} records: CALC…");
        let calc = runner::run(&spec);
        let dur = calc
            .checkpoints
            .first()
            .map(|c| c.duration.as_secs_f64())
            .unwrap_or(0.0);
        let lost = none.committed.saturating_sub(calc.committed);
        rows.push(vec![
            fmt_count(size as f64),
            format!("{dur:.2}s"),
            fmt_count(lost as f64),
        ]);
        csv_rows.push(vec![size.to_string(), format!("{dur:.4}"), lost.to_string()]);
    }
    print_table(
        "Figure 8: CALC scalability vs database size",
        &["records", "ckpt_duration", "lost"],
        &rows,
    );
    write_csv(
        &opts.out_dir.join("fig8_scalability.csv"),
        &["records", "ckpt_duration_sec", "lost"],
        csv_rows,
    )
    .expect("write csv");
}

/// Ablation (§2.1): full multi-versioning (MVCC) vs CALC's precise
/// partial multi-versioning. MVCC also checkpoints at a virtual point of
/// consistency with zero quiesce — but its memory between checkpoints
/// grows with the *update count* rather than the record count, which is
/// the paper's reason for rejecting it in memory-constrained main-memory
/// systems.
pub fn ablation_mvcc(opts: &FigureOpts) {
    eprintln!("ablation-mvcc: CALC vs full multi-versioning");
    let at = vec![Duration::from_secs_f64(opts.seconds * 0.5)];
    let results = run_set(
        opts,
        &[StrategyKind::Calc, StrategyKind::Mvcc],
        WorkloadSpec::Micro(opts.micro(false, 1.0)),
        at,
        true,
    );
    timeline_csv(opts, "ablation_mvcc_timeline", &results);
    // Memory: peak copies relative to record count.
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let peak = r.timeline.iter().map(|p| p.mem_bytes).max().unwrap_or(0);
            let rest = r.timeline.last().map(|p| p.mem_bytes).unwrap_or(0);
            vec![
                r.kind.name().to_string(),
                fmt_count(r.committed as f64),
                format!("{:.1} MB", peak as f64 / 1e6),
                format!("{:.1} MB", rest as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "Ablation §2.1: CALC vs full MVCC (memory grows with updates)",
        &["strategy", "committed", "peak_mem", "end_mem"],
        &rows,
    );
    write_csv(
        &opts.out_dir.join("ablation_mvcc.csv"),
        &["strategy", "committed", "peak_mem_bytes", "end_mem_bytes"],
        results.iter().map(|r| {
            vec![
                r.kind.name().to_string(),
                r.committed.to_string(),
                r.timeline
                    .iter()
                    .map(|p| p.mem_bytes)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                r.timeline
                    .last()
                    .map(|p| p.mem_bytes)
                    .unwrap_or(0)
                    .to_string(),
            ]
        }),
    )
    .expect("write csv");
}

/// Runs every figure.
pub fn all(opts: &FigureOpts) {
    fig2c(opts); // includes 2a + 2b
    fig3c(opts); // includes 3a + 3b
    fig4a(opts);
    fig4b(opts);
    fig5(opts);
    fig6(opts);
    fig7b(opts); // includes 7a
    fig8(opts);
}
