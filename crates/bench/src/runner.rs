//! The generic experiment runner.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use calc_core::strategy::CheckpointStats;
use calc_engine::{Database, EngineConfig, Sampler, StrategyKind, TimelinePoint};
use calc_txn::proc::{ProcId, ProcRegistry};
use calc_workload::micro::{MicroConfig, MicroWorkload};
use calc_workload::tpcc::{TpccConfig, TpccWorkload};

/// Which benchmark drives the run.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// The §5.1 microbenchmark.
    Micro(MicroConfig),
    /// TPC-C (§5.2).
    Tpcc(TpccConfig),
}

impl WorkloadSpec {
    fn record_capacity(&self, duration: Duration) -> usize {
        match self {
            WorkloadSpec::Micro(c) => c.db_size as usize,
            WorkloadSpec::Tpcc(c) => {
                // Leave insert headroom: assume ≤ 50k NewOrders/sec.
                c.capacity_hint((duration.as_secs_f64() * 50_000.0) as usize)
            }
        }
    }

    fn record_size(&self) -> usize {
        match self {
            WorkloadSpec::Micro(c) => c.record_size,
            WorkloadSpec::Tpcc(_) => 140,
        }
    }
}

/// How load is offered.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// Feeders submit as fast as backpressure allows: peak throughput
    /// (Figures 2, 3, 4, 6, 7).
    Closed,
    /// One pacer submits at a fixed rate into an unbounded queue, so
    /// backlogs build during quiesce periods (the latency experiments of
    /// Figure 5).
    Open {
        /// Offered load in transactions/second.
        tps: f64,
    },
}

/// Everything one experiment run needs.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Checkpointing strategy under test.
    pub kind: StrategyKind,
    /// Workload.
    pub workload: WorkloadSpec,
    /// Run length.
    pub duration: Duration,
    /// When (relative to start) to trigger checkpoints.
    pub checkpoint_at: Vec<Duration>,
    /// Background merge batch for partial strategies (Figure 4's 4/8/16).
    pub merge_batch: Option<usize>,
    /// Worker threads.
    pub workers: usize,
    /// Feeder (load generator) threads for closed-loop mode.
    pub feeders: usize,
    /// Load mode.
    pub load: LoadMode,
    /// Simulated disk bandwidth (0 = unlimited).
    pub disk_bytes_per_sec: u64,
    /// Capture threads / part files per checkpoint cycle. `None` keeps
    /// the engine default (`min(store shards, cores)`).
    pub checkpoint_threads: Option<usize>,
    /// Timeline sampling interval.
    pub sample_every: Duration,
    /// Workload seed.
    pub seed: u64,
    /// Checkpoint directory root (a per-run subdirectory is created).
    pub dir_root: PathBuf,
}

impl RunSpec {
    /// A reasonable default spec for quick experiments.
    pub fn quick(kind: StrategyKind, workload: WorkloadSpec) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        RunSpec {
            kind,
            workload,
            duration: Duration::from_secs(5),
            checkpoint_at: vec![Duration::from_secs(1), Duration::from_secs(3)],
            merge_batch: None,
            workers: (cores - 1).max(2),
            feeders: 2,
            load: LoadMode::Closed,
            disk_bytes_per_sec: 150 * 1024 * 1024,
            checkpoint_threads: None,
            sample_every: Duration::from_millis(100),
            seed: 42,
            dir_root: std::env::temp_dir().join("calc-bench"),
        }
    }
}

/// Everything one experiment run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Strategy that ran.
    pub kind: StrategyKind,
    /// Throughput + memory timeline.
    pub timeline: Vec<TimelinePoint>,
    /// Total commits in the measurement window.
    pub committed: u64,
    /// Total aborts.
    pub aborted: u64,
    /// Latency CDF (submission→commit, nanoseconds → cumulative fraction).
    pub latency_cdf: Vec<(u64, f64)>,
    /// Latency quantiles in ns: (p50, p99, p999, max).
    pub latency_quantiles: (u64, u64, u64, u64),
    /// Stats of each triggered checkpoint.
    pub checkpoints: Vec<CheckpointStats>,
    /// The checkpoint trigger schedule that produced them.
    pub schedule: Vec<Duration>,
    /// Final record count.
    pub records: usize,
    /// Checkpoint cycles that failed during the run. Failed cycles are
    /// harmless (the strategy rolls its coverage forward), but a nonzero
    /// count means the throughput/latency numbers describe a run with
    /// less checkpoint I/O than scheduled.
    pub checkpoint_failures: u64,
    /// The first checkpoint failure, if any.
    pub first_checkpoint_error: Option<String>,
    /// Checkpoint directory of the run (for recovery-time measurements).
    pub dir: PathBuf,
}

impl RunResult {
    /// Mean throughput over the run (txns/sec).
    pub fn mean_tps(&self, duration: Duration) -> f64 {
        self.committed as f64 / duration.as_secs_f64()
    }
}

/// Runs one experiment to completion.
pub fn run(spec: &RunSpec) -> RunResult {
    let run_dir = spec.dir_root.join(format!(
        "{}-{}-{}",
        spec.kind.name(),
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&run_dir);

    let mut registry = ProcRegistry::new();
    match &spec.workload {
        WorkloadSpec::Micro(c) => MicroWorkload::register(&mut registry, c),
        WorkloadSpec::Tpcc(_) => TpccWorkload::register(&mut registry),
    }

    let mut ec = EngineConfig::new(
        spec.kind,
        spec.workload.record_capacity(spec.duration),
        spec.workload.record_size(),
        run_dir.clone(),
    );
    ec.workers = spec.workers;
    ec.disk_bytes_per_sec = spec.disk_bytes_per_sec;
    ec.merge_batch = spec.merge_batch;
    if let Some(threads) = spec.checkpoint_threads {
        ec.checkpoint_threads = threads;
    }
    ec.queue_capacity = match spec.load {
        LoadMode::Closed => Some(spec.workers * 64),
        LoadMode::Open { .. } => None,
    };
    let db = Arc::new(Database::open(ec, registry).expect("open database"));

    // Populate.
    match &spec.workload {
        WorkloadSpec::Micro(c) => MicroWorkload::new(c.clone(), spec.seed).populate(&db),
        WorkloadSpec::Tpcc(c) => TpccWorkload::new(c.clone(), spec.seed).populate(&db),
    }
    db.finalize_load(spec.kind.is_partial()).expect("base checkpoint");

    // Reset-point: metrics start after load.
    let stop = Arc::new(AtomicBool::new(false));
    let start_committed = db.metrics().committed();
    let sampler = Sampler::start(db.metrics().clone(), db.strategy().clone(), spec.sample_every);

    // Feeders.
    let feeders: Vec<_> = match spec.load {
        LoadMode::Closed => (0..spec.feeders.max(1))
            .map(|f| {
                let db = db.clone();
                let stop = stop.clone();
                let workload = spec.workload.clone();
                let seed = spec.seed.wrapping_add(1 + f as u64);
                std::thread::spawn(move || feed_closed(&db, &workload, seed, f as u64, &stop))
            })
            .collect(),
        LoadMode::Open { tps } => {
            let db = db.clone();
            let stop = stop.clone();
            let workload = spec.workload.clone();
            let seed = spec.seed.wrapping_add(1);
            vec![std::thread::spawn(move || {
                feed_open(&db, &workload, seed, tps, &stop)
            })]
        }
    };

    // Checkpoint schedule.
    let run_start = Instant::now();
    let mut checkpoints = Vec::new();
    let mut schedule = spec.checkpoint_at.clone();
    schedule.sort();
    let ckpt_thread = {
        let db = db.clone();
        let schedule = schedule.clone();
        std::thread::spawn(move || {
            let mut stats = Vec::new();
            let mut failures = 0u64;
            let mut first_error = None;
            for at in schedule {
                let now = run_start.elapsed();
                if at > now {
                    std::thread::sleep(at - now);
                }
                match db.checkpoint_now() {
                    Ok(s) => stats.push(s),
                    Err(e) => {
                        failures += 1;
                        first_error.get_or_insert_with(|| e.to_string());
                    }
                }
            }
            (stats, failures, first_error)
        })
    };

    // Run for the configured duration.
    let elapsed = run_start.elapsed();
    if spec.duration > elapsed {
        std::thread::sleep(spec.duration - elapsed);
    }
    stop.store(true, Ordering::Relaxed);
    for f in feeders {
        let _ = f.join();
    }
    let (triggered, checkpoint_failures, first_checkpoint_error) =
        ckpt_thread.join().expect("checkpoint thread");
    checkpoints.extend(triggered);
    let timeline = sampler.finish();

    let committed = db.metrics().committed() - start_committed;
    let aborted = db.metrics().aborted();
    let latency_cdf = db.metrics().latency.cdf();
    let q = &db.metrics().latency;
    let latency_quantiles = (
        q.quantile(0.5),
        q.quantile(0.99),
        q.quantile(0.999),
        q.max(),
    );
    let records = db.record_count();

    RunResult {
        kind: spec.kind,
        timeline,
        committed,
        aborted,
        latency_cdf,
        latency_quantiles,
        checkpoints,
        schedule,
        records,
        checkpoint_failures,
        first_checkpoint_error,
        dir: run_dir,
    }
}

fn next_request(
    workload: &WorkloadSpec,
    micro: &mut Option<MicroWorkload>,
    tpcc: &mut Option<TpccWorkload>,
) -> (ProcId, Arc<[u8]>) {
    match workload {
        WorkloadSpec::Micro(_) => micro.as_mut().expect("micro generator").next_request(),
        WorkloadSpec::Tpcc(_) => tpcc.as_mut().expect("tpcc generator").next_request(),
    }
}

fn make_generators(
    workload: &WorkloadSpec,
    seed: u64,
    instance: u64,
) -> (Option<MicroWorkload>, Option<TpccWorkload>) {
    match workload {
        WorkloadSpec::Micro(c) => (Some(MicroWorkload::new(c.clone(), seed)), None),
        WorkloadSpec::Tpcc(c) => {
            let mut g = TpccWorkload::new(c.clone(), seed);
            g.set_history_partition(instance + 1);
            (None, Some(g))
        }
    }
}

fn feed_closed(
    db: &Database,
    workload: &WorkloadSpec,
    seed: u64,
    instance: u64,
    stop: &AtomicBool,
) {
    let (mut micro, mut tpcc) = make_generators(workload, seed, instance);
    while !stop.load(Ordering::Relaxed) {
        let (proc, params) = next_request(workload, &mut micro, &mut tpcc);
        db.submit(proc, params);
    }
}

fn feed_open(db: &Database, workload: &WorkloadSpec, seed: u64, tps: f64, stop: &AtomicBool) {
    let (mut micro, mut tpcc) = make_generators(workload, seed, 0);
    let start = Instant::now();
    let mut sent = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let due = (start.elapsed().as_secs_f64() * tps) as u64;
        if sent < due {
            for _ in 0..(due - sent).min(1024) {
                let (proc, params) = next_request(workload, &mut micro, &mut tpcc);
                db.submit(proc, params);
                sent += 1;
            }
        } else {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Measures this host's peak throughput for a workload with no
/// checkpointing — the "None" baseline, also used to derive the 70%/90%
/// offered loads of Figure 5.
pub fn measure_peak(workload: &WorkloadSpec, duration: Duration, dir_root: &std::path::Path) -> f64 {
    let mut spec = RunSpec::quick(StrategyKind::NoCheckpoint, workload.clone());
    spec.duration = duration;
    spec.checkpoint_at = Vec::new();
    spec.dir_root = dir_root.to_path_buf();
    spec.disk_bytes_per_sec = 0;
    let result = run(&spec);
    result.mean_tps(duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_spec(kind: StrategyKind) -> RunSpec {
        let mut spec = RunSpec::quick(
            kind,
            WorkloadSpec::Micro(MicroConfig {
                db_size: 2000,
                record_size: 100,
                ops_per_txn: 10,
                txn_spin: 8,
                long_txn_prob: 0.0,
                long_txn_spin: 1000,
                long_txn_batch: 50,
                hot_fraction: 1.0,
            }),
        );
        spec.duration = Duration::from_millis(800);
        spec.checkpoint_at = vec![Duration::from_millis(200)];
        spec.workers = 2;
        spec.feeders = 1;
        spec.disk_bytes_per_sec = 0;
        spec.sample_every = Duration::from_millis(50);
        spec
    }

    #[test]
    fn closed_loop_run_produces_throughput_and_checkpoint() {
        let result = run(&micro_spec(StrategyKind::Calc));
        assert!(result.committed > 100, "committed={}", result.committed);
        assert_eq!(result.checkpoints.len(), 1);
        assert!(result.checkpoints[0].records > 0);
        assert!(result.timeline.len() >= 8);
        assert!(!result.latency_cdf.is_empty());
        assert_eq!(result.checkpoint_failures, 0);
        assert!(result.first_checkpoint_error.is_none());
    }

    #[test]
    fn open_loop_run_respects_offered_load() {
        let mut spec = micro_spec(StrategyKind::NoCheckpoint);
        spec.checkpoint_at = Vec::new();
        spec.load = LoadMode::Open { tps: 500.0 };
        let result = run(&spec);
        // 500 tps for 0.8 s ≈ 400 txns; allow generous slack.
        assert!(
            (200..=650).contains(&result.committed),
            "committed={}",
            result.committed
        );
    }

    #[test]
    fn every_strategy_survives_the_runner() {
        for kind in [StrategyKind::PCalc, StrategyKind::Naive, StrategyKind::Zigzag] {
            let result = run(&micro_spec(kind));
            assert!(result.committed > 0, "{}: no commits", kind.name());
            assert_eq!(result.checkpoints.len(), 1, "{}", kind.name());
        }
    }
}
