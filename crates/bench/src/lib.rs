//! Benchmark harness reproducing the paper's evaluation (§5).
//!
//! * [`runner`] — the generic experiment runner: opens a database with a
//!   chosen checkpointing strategy, drives it with a workload (closed-loop
//!   at peak or open-loop at a target rate), fires checkpoints on a
//!   schedule, and collects the throughput/memory timeline, latency CDF,
//!   and per-checkpoint stats.
//! * [`figures`] — one function per paper figure (2a…8), each emitting a
//!   CSV under `results/` and a printed table shaped like the paper's.
//! * [`report`] — CSV and aligned-table output helpers.

#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod runner;

pub use runner::{LoadMode, RunResult, RunSpec, WorkloadSpec};
