//! A token-bucket byte throttle modelling bounded disk bandwidth.
//!
//! The paper's evaluation machine writes checkpoints to "a 160GB magnetic
//! disk that delivers approximately 100-150 MB/sec for sequential reads and
//! writes" (§4), and Appendix A notes that "the recording of a checkpoint
//! is limited by disk bandwidth in our system, [so] the time to complete a
//! checkpoint is a direct measure of total disk IO." Modern NVMe (or
//! tmpfs) would collapse the checkpoint windows the figures depend on, so
//! the checkpoint writer routes through this throttle, configured to the
//! paper's bandwidth by default and disableable for tests.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Token-bucket throttle. `None`-like behaviour (unlimited) when created
/// with [`Throttle::unlimited`].
pub struct Throttle {
    state: Option<Mutex<Bucket>>,
    bytes_per_sec: u64,
}

struct Bucket {
    available: f64,
    capacity: f64,
    last_refill: Instant,
}

impl Throttle {
    /// A throttle at `bytes_per_sec` (burst capacity: 50 ms worth).
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "use Throttle::unlimited for no limit");
        let capacity = (bytes_per_sec as f64 * 0.05).max(64.0 * 1024.0);
        Throttle {
            state: Some(Mutex::new(Bucket {
                available: capacity,
                capacity,
                last_refill: Instant::now(),
            })),
            bytes_per_sec,
        }
    }

    /// No throttling.
    pub fn unlimited() -> Self {
        Throttle {
            state: None,
            bytes_per_sec: 0,
        }
    }

    /// The paper's disk: ~150 MB/s sequential.
    pub fn paper_disk() -> Self {
        Throttle::new(150 * 1024 * 1024)
    }

    /// Configured rate (0 = unlimited).
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Blocks until `n` bytes of budget are available, then consumes them.
    /// Requests larger than the burst capacity are paid off incrementally.
    pub fn consume(&self, n: usize) {
        let Some(state) = &self.state else { return };
        let mut owed = n as f64;
        loop {
            let wait = {
                let mut b = state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(b.last_refill).as_secs_f64();
                b.last_refill = now;
                b.available = (b.available + elapsed * self.bytes_per_sec as f64).min(b.capacity);
                if b.available >= owed {
                    b.available -= owed;
                    return;
                }
                // Drain what is there and compute how long the rest takes.
                owed -= b.available;
                b.available = 0.0;
                Duration::from_secs_f64((owed.min(b.capacity)) / self.bytes_per_sec as f64)
            };
            std::thread::sleep(wait);
        }
    }
}

impl std::fmt::Debug for Throttle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.state.is_none() {
            write!(f, "Throttle(unlimited)")
        } else {
            write!(f, "Throttle({} B/s)", self.bytes_per_sec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_blocks() {
        let t = Throttle::unlimited();
        let start = Instant::now();
        for _ in 0..1000 {
            t.consume(1 << 20);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(t.bytes_per_sec(), 0);
    }

    #[test]
    fn limited_rate_is_enforced() {
        // 10 MB/s; push 2 MB; should take ~200 ms (burst credit shaves a
        // little).
        let t = Throttle::new(10 * 1024 * 1024);
        let start = Instant::now();
        for _ in 0..32 {
            t.consume(64 * 1024);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(100),
            "finished too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(600),
            "throttle too slow: {elapsed:?}"
        );
    }

    #[test]
    fn oversized_request_completes() {
        // A single request bigger than burst capacity must still finish.
        let t = Throttle::new(50 * 1024 * 1024);
        let start = Instant::now();
        t.consume(5 * 1024 * 1024);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(50), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(500), "{elapsed:?}");
    }
}
