//! CALC — Checkpointing Asynchronously using Logical Consistency.
//!
//! This crate is the paper's primary contribution (§2): asynchronous,
//! transaction-consistent checkpointing of a main-memory database using
//! **virtual points of consistency** — no quiescing, no database log, no
//! full multi-versioning, at most two copies of any record, and usually
//! far fewer.
//!
//! * [`phase`] — the five-phase controller (REST → PREPARE → RESOLVE →
//!   CAPTURE → COMPLETE) with active-transaction draining; transitions are
//!   linearized against commits through the commit log.
//! * [`strategy`] — the [`strategy::CheckpointStrategy`] trait that the
//!   engine executes transactions through; CALC and every baseline
//!   implement it.
//! * [`calc`] — the CALC algorithm itself ([`calc::CalcStrategy`]), in
//!   both full and partial (pCALC, §2.3) modes.
//! * [`file`] — the checkpoint file format: length-prefixed records with
//!   tombstones, CRC-32-sealed footer (a crash mid-capture leaves a
//!   detectably-invalid file), optionally block-compressed ([`codec`]).
//! * [`codec`] — block codecs for compressed checkpoint parts (in-tree
//!   RLE; `none` keeps the legacy format byte-identical).
//! * [`throttle`] — a token-bucket byte throttle modelling the evaluation
//!   machine's 100–150 MB/s disk (Appendix A notes checkpoint duration is
//!   disk-bandwidth-bound; the throttle reproduces that regime).
//! * [`manifest`] — checkpoint directory management: multi-part
//!   checkpoints (N part files committed atomically by one manifest
//!   rename), the legacy single-file format, validity scanning with
//!   whole-cycle quarantine, garbage collection.
//! * [`partition`] — the shard-parallel capture layer: one scan domain
//!   split into contiguous stripes, written by a pool of capture threads,
//!   with all-or-nothing abort semantics.
//! * [`merge`] — background collapsing of partial checkpoints into a new
//!   full checkpoint (§2.3.1), bounding recovery time.

#![warn(missing_docs)]

pub mod calc;
pub mod codec;
pub mod file;
pub mod manifest;
pub mod merge;
pub mod partition;
pub mod phase;
pub mod strategy;
pub mod throttle;

pub use calc::CalcStrategy;
pub use codec::Codec;
pub use file::{CheckpointKind, CheckpointReader, CheckpointWriter, PartSummary, RecordEntry};
pub use manifest::{CheckpointClaim, CheckpointDir, CheckpointMeta, PartMeta, PublishSummary};
pub use partition::{capture_parts, ShardPartition};
pub use phase::PhaseController;
pub use strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoImage, UndoRec, WriteKind,
    WriteRec,
};
pub use throttle::Throttle;
