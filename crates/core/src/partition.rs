//! Shard-parallel capture: one scan domain split into `N` contiguous
//! stripes, written to `N` part files by `N` threads.
//!
//! Every strategy's capture (CALC full/partial, the quiesce baselines,
//! IPP, Zigzag) and recovery's part loader funnel through this layer so
//! the partitioning scheme, the thread pool, and the abort semantics are
//! implemented exactly once. The contract:
//!
//! * **Partitioning** — [`ShardPartition`] splits `total` items (slots,
//!   dirty-list entries) into `parts` contiguous stripes whose union is
//!   exactly `0..total` and which differ in size by at most one. Stripe
//!   `k` feeds part file `k`. The assignment is *not* stable across
//!   checkpoints (the store grows, dirty sets differ), which is why
//!   recovery re-shards by key hash instead of merging per part index.
//! * **Tombstones** — written to part 0 ahead of every value, so a reader
//!   applying parts in index order (and files in chain order) still sees
//!   delete-before-reinsert.
//! * **All-or-nothing** — if any stripe's scan or write fails, a cancel
//!   flag stops the siblings, every part file is removed, and no manifest
//!   is ever written: the cycle never becomes visible. The caller then
//!   rolls dirty coverage forward for *every* shard (the PR-4 harmless-
//!   failure contract), including shards whose part had already fsynced.

use std::io;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

use calc_common::types::{CommitSeq, Key};

use crate::file::{CheckpointKind, CheckpointWriter};
use crate::manifest::{CheckpointDir, PublishSummary};

/// A split of `total` contiguous items into `parts` stripes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPartition {
    total: usize,
    parts: usize,
}

impl ShardPartition {
    /// Splits `total` items over `parts` stripes (at least 1).
    pub fn over(total: usize, parts: usize) -> Self {
        ShardPartition {
            total,
            parts: parts.max(1),
        }
    }

    /// Number of stripes.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Total items across all stripes.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The half-open item range of stripe `k`. Stripes are contiguous,
    /// disjoint, cover `0..total`, and differ in length by at most one
    /// (the first `total % parts` stripes get the extra item).
    pub fn range(&self, k: usize) -> Range<usize> {
        debug_assert!(k < self.parts);
        let base = self.total / self.parts;
        let rem = self.total % self.parts;
        let start = k * base + k.min(rem);
        let len = base + usize::from(k < rem);
        start..start + len
    }
}

/// How often a stripe scan should poll the cancel flag, in items. Coarse
/// enough to stay off the hot path, fine enough that a sibling failure
/// stops wasted I/O quickly.
pub const CANCEL_POLL_STRIDE: usize = 1024;

/// Runs one multi-part capture cycle: begin `parts` part files, write
/// `tombstones` into part 0, run `scan(k, writer, cancel)` for every
/// stripe `k` on its own thread (stripe 0 on the calling thread), and
/// publish the manifest — or, on any failure, remove every part file and
/// return the error with no cycle ever becoming visible.
///
/// `scan` must confine itself to stripe `k` of whatever domain the caller
/// partitioned (see [`ShardPartition`]) and should poll `cancel` about
/// every [`CANCEL_POLL_STRIDE`] items, returning early (any `Err`) once
/// it is set. With `parts == 1` everything runs inline on the calling
/// thread — byte-identical behaviour to the old single-file path except
/// for the file naming and the manifest.
pub fn capture_parts<F>(
    dir: &CheckpointDir,
    kind: CheckpointKind,
    id: u64,
    watermark: CommitSeq,
    tombstones: &[Key],
    parts: usize,
    scan: F,
) -> io::Result<PublishSummary>
where
    F: Fn(usize, &mut CheckpointWriter, &AtomicBool) -> io::Result<()> + Sync,
{
    let parts = parts.max(1);
    let (pending, writers) = dir.begin_parts(kind, id, watermark, parts)?;
    let cancel = AtomicBool::new(false);

    let run_stripe = |k: usize, w: &mut CheckpointWriter| -> io::Result<()> {
        if k == 0 {
            for &key in tombstones {
                w.write_tombstone(key)?;
            }
        }
        scan(k, w, &cancel)
    };

    let results: Vec<(CheckpointWriter, io::Result<()>)> = if parts == 1 {
        let mut writers = writers;
        let mut w0 = writers.pop().expect("begin_parts returned one writer");
        let r0 = run_stripe(0, &mut w0);
        vec![(w0, r0)]
    } else {
        let mut iter = writers.into_iter();
        let mut w0 = iter.next().expect("begin_parts returned parts writers");
        let rest: Vec<CheckpointWriter> = iter.collect();
        let run_ref = &run_stripe;
        let cancel_ref = &cancel;
        std::thread::scope(|s| {
            let handles: Vec<_> = rest
                .into_iter()
                .enumerate()
                .map(|(i, mut w)| {
                    s.spawn(move || {
                        let r = run_ref(i + 1, &mut w);
                        if r.is_err() {
                            cancel_ref.store(true, Ordering::Relaxed);
                        }
                        (w, r)
                    })
                })
                .collect();
            let r0 = run_ref(0, &mut w0);
            if r0.is_err() {
                cancel_ref.store(true, Ordering::Relaxed);
            }
            let mut out = Vec::with_capacity(parts);
            out.push((w0, r0));
            for h in handles {
                out.push(h.join().expect("capture thread panicked"));
            }
            out
        })
    };

    if results.iter().any(|(_, r)| r.is_err()) {
        // Prefer the lowest-indexed *root-cause* error: parts stopped by
        // the cancel flag report `Interrupted`, which would otherwise mask
        // the real failure behind a smaller part index.
        let mut errors: Vec<(usize, io::Error)> = Vec::new();
        let mut writers = Vec::with_capacity(parts);
        for (k, (w, r)) in results.into_iter().enumerate() {
            writers.push(w);
            if let Err(e) = r {
                errors.push((k, e));
            }
        }
        drop(writers); // release file handles before unlinking
        pending.abandon();
        let root = errors
            .iter()
            .position(|(_, e)| e.kind() != io::ErrorKind::Interrupted)
            .unwrap_or(0);
        return Err(errors.swap_remove(root).1);
    }

    let writers: Vec<CheckpointWriter> = results.into_iter().map(|(w, _)| w).collect();
    pending.publish(writers)
}

/// The error a cancelled stripe should return when it observes the cancel
/// flag: [`io::ErrorKind::Interrupted`], which [`capture_parts`] treats as
/// a symptom rather than a root cause.
pub fn cancelled() -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        "capture cancelled by sibling part failure",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throttle::Throttle;
    use std::sync::Arc;

    #[test]
    fn partition_covers_exactly_once() {
        for total in [0usize, 1, 5, 64, 1000, 1023] {
            for parts in [1usize, 2, 3, 7, 64, 100] {
                let p = ShardPartition::over(total, parts);
                let mut covered = vec![false; total];
                let mut max_len = 0;
                let mut min_len = usize::MAX;
                for k in 0..p.parts() {
                    let r = p.range(k);
                    max_len = max_len.max(r.len());
                    min_len = min_len.min(r.len());
                    for i in r {
                        assert!(!covered[i], "item {i} covered twice (total={total} parts={parts})");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap (total={total} parts={parts})");
                assert!(max_len - min_len <= 1, "imbalance (total={total} parts={parts})");
            }
        }
    }

    fn dir(name: &str) -> CheckpointDir {
        let d = std::env::temp_dir().join(format!(
            "calc-partition-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
    }

    #[test]
    fn capture_parts_publishes_striped_scan() {
        for parts in [1usize, 3] {
            let d = dir(&format!("ok-{parts}"));
            let split = ShardPartition::over(100, parts);
            let summary = capture_parts(
                &d,
                CheckpointKind::Partial,
                5,
                CommitSeq(50),
                &[Key(7000)],
                parts,
                |k, w, _cancel| {
                    for i in split.range(k) {
                        w.write_record(Key(i as u64), b"v")?;
                    }
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(summary.records, 101);
            assert_eq!(summary.parts, parts);
            let metas = d.scan().unwrap();
            assert_eq!(metas.len(), 1);
            assert_eq!(metas[0].records, 101);
            let entries = metas[0].read_all().unwrap();
            assert_eq!(entries[0], crate::file::RecordEntry::Tombstone(Key(7000)));
        }
    }

    #[test]
    fn one_failing_stripe_aborts_the_whole_cycle() {
        let d = dir("abort");
        let err = capture_parts(
            &d,
            CheckpointKind::Full,
            1,
            CommitSeq(1),
            &[],
            4,
            |k, w, cancel| {
                if k == 2 {
                    return Err(io::Error::other("disk exploded"));
                }
                for i in 0..10_000u64 {
                    if i % CANCEL_POLL_STRIDE as u64 == 0 && cancel.load(Ordering::Relaxed) {
                        return Err(cancelled());
                    }
                    w.write_record(Key(i), b"x")?;
                }
                Ok(())
            },
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "disk exploded", "root cause, not Interrupted");
        assert!(d.scan().unwrap().is_empty(), "no cycle became visible");
        // Every part file was removed; only the (empty) directory remains.
        let leftovers: Vec<_> = std::fs::read_dir(d.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(leftovers.is_empty(), "abort left {leftovers:?}");
    }
}
