//! The [`CheckpointStrategy`] trait: the contract between the execution
//! engine and a checkpointing algorithm.
//!
//! Every algorithm the paper evaluates — CALC, pCALC, Naive Snapshot,
//! Fuzzy, Interleaved Ping-Pong, Zig-Zag, and their partial variants —
//! imposes its own physical record layout and its own write-path hooks, so
//! the engine routes *all* data access through the active strategy:
//! `ApplyWrite` (§2.2, Figure 1) becomes [`CheckpointStrategy::apply_write`],
//! the commit-time check "immediately after committing, but before
//! releasing any locks" becomes [`CheckpointStrategy::on_commit`], and the
//! checkpoint cycle itself is [`CheckpointStrategy::checkpoint`].

use std::io;
use std::sync::Arc;
use std::time::Duration;

use calc_common::types::{CommitSeq, Key, Value};
use calc_storage::dual::StoreError;
use calc_storage::mem::MemoryStats;
use calc_storage::SlotId;
use calc_txn::commitlog::PhaseStamp;

use crate::file::CheckpointKind;
use crate::manifest::CheckpointDir;

/// What a transaction did to one key (recorded by the strategy during
/// apply, consumed by the commit/abort hooks).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteKind {
    /// Overwrote an existing record.
    Update,
    /// Created a record.
    Insert,
    /// Removed a record.
    Delete,
}

/// One entry in a transaction's write footprint.
#[derive(Clone, Debug)]
pub struct WriteRec {
    /// The key written.
    pub key: Key,
    /// Its storage slot at apply time.
    pub slot: SlotId,
    /// Operation kind.
    pub kind: WriteKind,
    /// Whether this transaction created the slot's stable version (CALC:
    /// the commit/abort hooks must know whether the provisional copy is
    /// theirs to erase).
    pub created_stable: bool,
}

/// Per-transaction state carried through the strategy hooks.
#[derive(Debug)]
pub struct TxnToken {
    /// The (cycle, phase) the transaction started under — `txn.start-phase`
    /// in the paper's pseudocode.
    pub stamp: PhaseStamp,
    /// Write footprint, appended by the `apply_*` calls.
    pub writes: Vec<WriteRec>,
}

/// The inverse image of one write, kept by the executor for rollback.
#[derive(Clone, Debug)]
pub enum UndoImage {
    /// Restore the previous value of an updated record.
    Restore(Value),
    /// Remove an inserted record.
    Remove,
    /// Re-create a deleted record with its previous value.
    Reinsert(Value),
}

/// An undo entry: the key plus its inverse image.
#[derive(Clone, Debug)]
pub struct UndoRec {
    /// Key to roll back.
    pub key: Key,
    /// Inverse operation.
    pub img: UndoImage,
}

/// Services the engine exposes to a running checkpoint: quiescing (for
/// algorithms that need a physical point of consistency) — CALC never
/// calls it.
pub trait EngineEnv: Send + Sync {
    /// Runs `f` with the system quiesced: no transaction is active and
    /// none may start until `f` returns. Returns how long the quiesce
    /// lasted **including** the wait for active transactions to drain —
    /// the workload-dependent stall the paper measures for IPP/Zig-Zag
    /// with long transactions (§5.1.1).
    fn quiesced(&self, f: &mut dyn FnMut() -> io::Result<()>) -> io::Result<Duration>;
}

/// A no-op environment for strategies under unit test (quiesce succeeds
/// trivially — valid when the caller guarantees no concurrent activity).
pub struct NoopEnv;

impl EngineEnv for NoopEnv {
    fn quiesced(&self, f: &mut dyn FnMut() -> io::Result<()>) -> io::Result<Duration> {
        let start = std::time::Instant::now();
        f()?;
        Ok(start.elapsed())
    }
}

/// Outcome of one checkpoint cycle.
#[derive(Clone, Debug)]
pub struct CheckpointStats {
    /// Checkpoint interval id.
    pub id: u64,
    /// Full or partial.
    pub kind: CheckpointKind,
    /// Virtual (or physical) point-of-consistency watermark.
    pub watermark: CommitSeq,
    /// Records + tombstones written.
    pub records: u64,
    /// Bytes written to disk (post-compression).
    pub bytes: u64,
    /// Uncompressed record-stream bytes; equals `bytes` under codec
    /// `none`, so `raw_bytes / bytes` is the cycle's compression ratio.
    pub raw_bytes: u64,
    /// Wall-clock duration of the whole cycle.
    pub duration: Duration,
    /// Time the system was quiesced (zero for CALC).
    pub quiesce: Duration,
    /// Part files written (1 for legacy single-file checkpoints).
    pub parts: usize,
}

/// A checkpointing algorithm integrated with the execution engine. See
/// module docs.
pub trait CheckpointStrategy: Send + Sync {
    /// Display name ("CALC", "pIPP", …).
    fn name(&self) -> &'static str;

    /// Whether checkpoints produced are transaction-consistent (every
    /// algorithm in the paper except Fuzzy).
    fn transaction_consistent(&self) -> bool;

    /// Whether checkpoints are partial (deltas) rather than full
    /// snapshots.
    fn partial(&self) -> bool;

    /// Bulk-loads a record outside any transaction (initial population /
    /// recovery). Not thread-safe with concurrent transactions; concurrent
    /// `load_initial` calls on **distinct keys** are allowed (parallel
    /// recovery installs key-hash shards on separate threads).
    fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError>;

    /// Reads the latest committed value (the caller holds the logical
    /// lock).
    fn get(&self, key: Key) -> Option<Value>;

    /// Number of live records.
    fn record_count(&self) -> usize;

    /// Registers a transaction (CALC notes `txn.start-phase` here).
    fn txn_begin(&self) -> TxnToken;

    /// Deregisters a transaction after its locks are released.
    fn txn_end(&self, token: TxnToken);

    /// `ApplyWrite`: overwrites `key`, performing the strategy's version
    /// bookkeeping. Returns the previous value for undo.
    fn apply_write(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<Option<Value>, StoreError>;

    /// Inserts a record. Returns `false` without changing anything if the
    /// key already exists.
    fn apply_insert(&self, token: &mut TxnToken, key: Key, value: &[u8])
        -> Result<bool, StoreError>;

    /// Deletes a record, returning the previous value for undo.
    fn apply_delete(&self, token: &mut TxnToken, key: Key) -> Result<Option<Value>, StoreError>;

    /// Commit hook, invoked **after** the commit token is appended and
    /// **before** any lock is released, with the commit stamp returned by
    /// the append.
    fn on_commit(&self, token: &mut TxnToken, seq: CommitSeq, commit: PhaseStamp);

    /// Abort hook: rolls the transaction's writes back using the
    /// executor-recorded undo images (supplied newest-first) and restores
    /// the strategy's version bookkeeping. Invoked before lock release.
    fn on_abort(&self, token: &mut TxnToken, undo: &[UndoRec]);

    /// Runs one full checkpoint cycle, writing into `dir`.
    ///
    /// **Harmless-failure contract**: on `Err`, the strategy must leave
    /// itself in a state where the *next* successful cycle captures every
    /// committed write the failed cycle would have — the in-progress file
    /// is abandoned (never published), any consumed side-state is
    /// restored (dirty bits re-marked, drained tombstones re-queued,
    /// retired/flipped copies re-injected), and phase/interval
    /// bookkeeping advances past the dead cycle so a retry starts clean.
    /// Failures tracked by [`CheckpointStrategy::aborted_cycles`].
    fn checkpoint(&self, env: &dyn EngineEnv, dir: &CheckpointDir) -> io::Result<CheckpointStats>;

    /// Number of checkpoint cycles that failed and were rolled back via
    /// the harmless-failure path (see [`CheckpointStrategy::checkpoint`]).
    /// Strategies that have no fallible side-state may keep the default.
    fn aborted_cycles(&self) -> u64 {
        0
    }

    /// Writes a full checkpoint of the current state with no transactions
    /// running (right after initial load), giving partial checkpoints a
    /// full ancestor to merge onto. Advances the strategy's checkpoint id
    /// counter.
    fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats>;

    /// Point-in-time memory report (Figure 6).
    fn memory(&self) -> MemoryStats;

    /// Resumes the strategy's checkpoint-id space after recovery so new
    /// checkpoints never collide with pre-crash files. Strategies whose
    /// ids derive from the commit log's cycle counter (CALC) need no
    /// action — the engine advances the log — hence the default no-op.
    fn resume_checkpoint_ids(&self, _next_id: u64) {}
}

/// Shared handle type used across the engine.
pub type DynStrategy = Arc<dyn CheckpointStrategy>;
