//! The CALC algorithm (§2.2) and its partial-checkpoint variant pCALC
//! (§2.3).
//!
//! CALC captures a transaction-consistent checkpoint at a **virtual point
//! of consistency** — a position in the commit log, not a moment when the
//! system is idle. The implementation follows Figure 1 of the paper:
//!
//! * **ApplyWrite** ([`CalcStrategy::apply_write`]): a transaction whose
//!   `start-phase` is PREPARE provisionally copies live→stable before its
//!   first update of a record; one that started in RESOLVE/CAPTURE copies
//!   and marks `stable_status` *available*; one that started in
//!   COMPLETE/REST erases any leftover stable version.
//! * **Commit hook** ([`CalcStrategy::on_commit`]): a PREPARE-started
//!   transaction that committed during PREPARE erases the provisional
//!   copies it made (its writes are *inside* the checkpoint); one that
//!   committed during RESOLVE marks them available (its writes are
//!   *outside*, so the pre-images must be captured).
//! * **RunCheckpointer** ([`CalcStrategy::checkpoint`]): drives REST →
//!   PREPARE → (drain) → RESOLVE → (drain) → CAPTURE → scan → COMPLETE →
//!   (drain) → `SwapAvailableAndNotAvailable` → REST.
//!
//! Deviations from the paper's pseudocode, both deliberate:
//!
//! 1. Figure 1's PREPARE branch copies live→stable whenever the status bit
//!    is *not available*, even if a stable version already exists (it
//!    cannot in the single-write case the paper discusses, but a
//!    transaction writing the same record twice would clobber its own
//!    pre-image). We copy only when no stable version exists.
//! 2. The capture scan in Figure 1 reads `db[key].live` optimistically and
//!    re-checks the stable version to tolerate a racing writer. Our
//!    per-slot mutex makes the scan/writer interaction atomic, so the
//!    re-check collapses away.
//!
//! **pCALC** adds: interval-indexed dirty bit vectors (marked by the
//! commit hook, double-buffered per §2.3), tombstone buffers for deletions
//! (so partial checkpoints can be merged), a capture that visits only
//! dirty slots, and — since pCALC never performs the polarity swap (that
//! would require driving *every* bit to available, i.e. a full scan) — an
//! end-of-cycle cleanup pass over the *next* interval's dirty slots that
//! erases post-point stable versions and resets their status bits.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use calc_common::phase::Phase;
use calc_common::types::{CommitSeq, Key, Value};
use calc_storage::dirty::{BitVecTracker, DirtyTracker};
use calc_storage::dual::{DualVersionStore, StoreConfig, StoreError};
use calc_storage::mem::MemoryStats;
use calc_txn::commitlog::{CommitLog, PhaseStamp};

use crate::file::CheckpointKind;
use crate::manifest::{CheckpointDir, PublishSummary};
use crate::partition::{self, capture_parts, ShardPartition, CANCEL_POLL_STRIDE};
use crate::phase::PhaseController;
use crate::strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoImage, UndoRec, WriteKind,
    WriteRec,
};

/// CALC / pCALC. Construct with [`CalcStrategy::full`] or
/// [`CalcStrategy::partial`].
pub struct CalcStrategy {
    store: DualVersionStore,
    phases: PhaseController,
    partial: bool,
    tracker: Option<BitVecTracker>,
    /// Tombstone buffers for partial checkpoints, indexed by
    /// `checkpoint interval & 1` (same double-buffering discipline as the
    /// dirty tracker).
    tombstones: [Mutex<Vec<Key>>; 2],
    /// `stable_status` polarity generation at the start of the current
    /// full-checkpoint cycle; with [`PolarityBitVec::generation`] it lets
    /// [`CalcStrategy::settle_insert_bit`] decide on which side of
    /// `SwapAvailableAndNotAvailable` an insert's status-bit write lands
    /// (unused in partial mode, which never swaps).
    ///
    /// [`PolarityBitVec::generation`]: calc_common::bitvec::PolarityBitVec::generation
    cycle_start_gen: AtomicU64,
    /// Cycles that failed and were rolled back harmlessly (see
    /// [`CheckpointStrategy::aborted_cycles`]).
    aborted: AtomicU64,
}

impl CalcStrategy {
    /// Full-checkpoint CALC.
    pub fn full(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, false)
    }

    /// Partial-checkpoint pCALC.
    pub fn partial(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, true)
    }

    fn new(config: StoreConfig, log: Arc<CommitLog>, partial: bool) -> Self {
        let capacity = config.capacity;
        CalcStrategy {
            store: DualVersionStore::new(config),
            phases: PhaseController::new(log),
            partial,
            tracker: partial.then(|| BitVecTracker::new(capacity)),
            tombstones: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            cycle_start_gen: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// The underlying store (tests / diagnostics).
    pub fn store(&self) -> &DualVersionStore {
        &self.store
    }

    /// Settles a freshly inserted slot's status bit against the *current*
    /// phase and polarity generation (full mode only).
    ///
    /// The bit written by `insert_with_status` is derived from the
    /// transaction's start phase, but a transaction that starts during
    /// COMPLETE is never drained before `SwapAvailableAndNotAvailable`:
    /// its "not available" bit, written under the old polarity, reads
    /// "available with no stable version" after the swap, and the next
    /// capture scan would wrongly exclude the record from a checkpoint
    /// whose watermark covers its commit. The correct bit depends on which
    /// side of the swap the write lands:
    ///
    /// * phase ≥ RESOLVE in the cycle that started at `cycle_start_gen`
    ///   (swap still pending) → marked, so the pending swap flips it to
    ///   unmarked;
    /// * otherwise (REST/PREPARE, or the swap already happened) →
    ///   unmarked as-is.
    ///
    /// A seqlock-style generation bracket redoes the write if the swap
    /// races it. Read order matters: the phase is read *before*
    /// `cycle_start_gen`, so observing phase ≥ RESOLVE happens-after the
    /// checkpointer's generation store (release-ordered via the
    /// transition) and the `g1 == start` comparison cannot use a stale
    /// previous-cycle value while `g1` is current.
    /// Whether `token` itself inserted the record occupying `slot` —
    /// i.e. the slot's live value is this transaction's own uncommitted
    /// write, so it must never be copied as a checkpoint pre-image.
    /// (Slots are not reused within a transaction: deletes release them
    /// only at commit, so a slot id is unambiguous here.)
    fn self_inserted(token: &TxnToken, slot: calc_storage::SlotId) -> bool {
        token
            .writes
            .iter()
            .any(|w| w.slot == slot && w.kind == WriteKind::Insert)
    }

    fn settle_insert_bit(&self, slot: usize) {
        let status = self.store.stable_status();
        loop {
            let g1 = status.generation();
            let phase = self.phases.log().current_stamp().phase;
            let start = self.cycle_start_gen.load(Ordering::SeqCst);
            let after_point = g1 == start
                && matches!(phase, Phase::Resolve | Phase::Capture | Phase::Complete);
            if after_point {
                status.mark(slot);
            } else {
                status.unmark(slot);
            }
            if status.generation() == g1 {
                return;
            }
        }
    }

    /// The phase controller (shared with the engine's transaction path).
    pub fn phases(&self) -> &PhaseController {
        &self.phases
    }

    /// Writes a full base checkpoint of the current state — used right
    /// after initial load, before any transactions run, so that partial
    /// checkpoints always have a full ancestor to merge onto. Bumps the
    /// cycle counter so the first runtime checkpoint gets a distinct id.
    pub fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.phases.log().current_stamp().cycle;
        let watermark = self.phases.log().last_seq();
        let threads = dir.checkpoint_threads();
        let split = ShardPartition::over(self.store.slot_high_water(), threads);
        let summary = capture_parts(
            dir,
            CheckpointKind::Full,
            id,
            watermark,
            &[],
            threads,
            |k, w, _cancel| {
                for slot in split.range(k) {
                    let extracted = {
                        let g = self.store.lock_slot(slot as calc_storage::SlotId);
                        if g.in_use() {
                            g.live().map(|l| (g.key(), l.to_vec()))
                        } else {
                            None
                        }
                    };
                    if let Some((key, v)) = extracted {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            },
        )?;
        // Rest→Rest transition: no phase change, cycle += 1.
        self.phases.transition(Phase::Rest);
        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Full,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce: std::time::Duration::ZERO,
            parts: summary.parts,
        })
    }

    /// The fallible disk portion of a full cycle: begin N parts → striped
    /// scan from `checkpoint_threads` capture threads → publish the
    /// manifest. On `Err` every part file has been removed and nothing
    /// became visible; store/phase restore is the caller's job
    /// ([`CalcStrategy::abort_cycle_full`]). The slot-space stripes are
    /// disjoint, so the capture threads never contend on a slot guard —
    /// only on the shared status bit vector, which is per-slot atomic.
    fn capture_full(
        &self,
        dir: &CheckpointDir,
        id: u64,
        watermark: CommitSeq,
    ) -> io::Result<PublishSummary> {
        let status = self.store.stable_status();
        let threads = dir.checkpoint_threads();
        let split = ShardPartition::over(self.store.slot_high_water(), threads);
        capture_parts(
            dir,
            CheckpointKind::Full,
            id,
            watermark,
            &[],
            threads,
            |part, w, cancel| {
                for (i, slot) in split.range(part).enumerate() {
                    if i % CANCEL_POLL_STRIDE == 0 && cancel.load(Ordering::Relaxed) {
                        return Err(partition::cancelled());
                    }
                    let slot = slot as calc_storage::SlotId;
                    let extracted = {
                        let mut g = self.store.lock_slot(slot);
                        if !g.in_use() {
                            // Normalize vacant slots so the polarity swap leaves
                            // every bit reading not-available.
                            status.mark(slot as usize);
                            None
                        } else if status.is_marked(slot as usize) {
                            // Post-point writers (or the resolve-commit hook)
                            // preserved an explicit stable version; an available
                            // bit without one is a record inserted after the point
                            // of consistency — excluded.
                            if g.has_stable() {
                                let key = g.key();
                                let v = g.stable().expect("checked").to_vec();
                                g.erase_stable();
                                if g.live().is_none() {
                                    // Deleted after the point: captured, now gone.
                                    g.release_if_vacant();
                                }
                                Some((key, v))
                            } else {
                                None
                            }
                        } else {
                            status.mark(slot as usize);
                            let key = g.key();
                            if g.has_stable() {
                                let v = g.stable().expect("checked").to_vec();
                                g.erase_stable();
                                if g.live().is_none() {
                                    g.release_if_vacant();
                                }
                                Some((key, v))
                            } else if let Some(live) = g.live() {
                                Some((key, live.to_vec()))
                            } else {
                                // Unreachable in the protocol (a record with no
                                // versions is released at delete-commit), but stay
                                // defensive.
                                g.release_if_vacant();
                                None
                            }
                        }
                    };
                    if let Some((key, v)) = extracted {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            },
        )
    }

    /// Harmless-failure restore for a full cycle that died during capture
    /// (phase is CAPTURE; the scan may have processed any prefix of the
    /// slots). Finishes the marking scan *without* disk I/O — erasing
    /// remaining stable versions and driving every status bit to marked —
    /// then completes the cycle exactly as a successful one would, so the
    /// polarity swap leaves every bit not-available and the next full
    /// checkpoint captures the entire database.
    fn abort_cycle_full(&self) {
        let status = self.store.stable_status();
        for slot in self.store.slot_ids() {
            let mut g = self.store.lock_slot(slot);
            if g.in_use() && g.has_stable() {
                g.erase_stable();
                if g.live().is_none() {
                    g.release_if_vacant();
                }
            }
            status.mark(slot as usize);
        }
        self.phases.transition(Phase::Complete);
        self.phases.drain_others(Phase::Complete);
        status.swap_polarity();
        self.phases.transition(Phase::Rest);
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    fn checkpoint_full(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.phases.log().current_stamp().cycle;

        // Record the polarity generation for this cycle *before* PREPARE
        // becomes visible: any transaction that later observes a phase ≥
        // RESOLVE is guaranteed (via the transition's release ordering) to
        // read this value or a newer one in `settle_insert_bit`.
        self.cycle_start_gen
            .store(self.store.stable_status().generation(), Ordering::SeqCst);
        self.phases.transition(Phase::Prepare);
        self.phases.drain_others(Phase::Prepare);
        // The virtual point of consistency.
        let watermark = self.phases.transition(Phase::Resolve);
        self.phases.drain_others(Phase::Resolve);
        self.phases.transition(Phase::Capture);

        let status = self.store.stable_status();
        let summary = match self.capture_full(dir, id, watermark) {
            Ok(s) => s,
            Err(e) => {
                self.abort_cycle_full();
                return Err(e);
            }
        };

        self.phases.transition(Phase::Complete);
        self.phases.drain_others(Phase::Complete);
        // All bits now read available and no stable versions remain:
        // SwapAvailableAndNotAvailable makes every bit read not-available
        // in O(1) (§2.2.5).
        status.swap_polarity();
        self.phases.transition(Phase::Rest);

        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Full,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce: std::time::Duration::ZERO,
            parts: summary.parts,
        })
    }

    /// The fallible disk portion of a partial cycle: begin N parts →
    /// tombstones into part 0 → dirty list striped over the capture
    /// threads → publish the manifest. On `Err` every part file has been
    /// removed; side-state restore is
    /// [`CalcStrategy::abort_cycle_partial`].
    fn capture_partial(
        &self,
        dir: &CheckpointDir,
        id: u64,
        watermark: CommitSeq,
        tombs: &[Key],
        high_water: usize,
    ) -> io::Result<PublishSummary> {
        let tracker = self.tracker.as_ref().expect("partial mode has a tracker");
        let status = self.store.stable_status();
        let threads = dir.checkpoint_threads();
        let dirty = tracker.dirty_slots(id, high_water);
        let split = ShardPartition::over(dirty.len(), threads);
        // Tombstones land in part 0 ahead of every value (capture_parts'
        // contract): within one partial checkpoint a tombstone must
        // precede any same-key re-insertion so merge replay, which walks
        // parts in index order, stays last-event-wins.
        capture_parts(
            dir,
            CheckpointKind::Partial,
            id,
            watermark,
            tombs,
            threads,
            |part, w, cancel| {
                for (i, &slot) in dirty[split.range(part)].iter().enumerate() {
                    if i % CANCEL_POLL_STRIDE == 0 && cancel.load(Ordering::Relaxed) {
                        return Err(partition::cancelled());
                    }
                    let extracted = {
                        let mut g = self.store.lock_slot(slot);
                        if !g.in_use() {
                            // Freed by a pre-point delete; its tombstone is
                            // already in the file.
                            None
                        } else if status.is_marked(slot as usize) {
                            if g.has_stable() {
                                let key = g.key();
                                let v = g.stable().expect("checked").to_vec();
                                g.erase_stable();
                                // No polarity swap in pCALC: reset explicitly.
                                status.unmark(slot as usize);
                                if g.live().is_none() {
                                    g.release_if_vacant();
                                }
                                Some((key, v))
                            } else {
                                // Insert-after-point (possibly on a reused slot):
                                // belongs to the next checkpoint; leave its bit.
                                None
                            }
                        } else {
                            // Dirty but never written after the point: live IS the
                            // point-of-consistency value.
                            g.live().map(|l| (g.key(), l.to_vec()))
                        }
                    };
                    if let Some((key, v)) = extracted {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            },
        )
    }

    /// Harmless-failure restore for a partial cycle that died during
    /// capture. The failed cycle consumed side-state the next cycle needs:
    /// the interval-`id` tombstone buffer was drained, and the dirty bits
    /// for interval `id` cover keys whose values exist *only* here (the
    /// scan may even have erased some of their captured stable versions
    /// already). Everything is rolled **forward** into interval `id + 1`:
    /// dirty bits re-marked, tombstones re-queued, then the cycle is
    /// completed file-lessly (Complete → cleanup pass → clear → Rest) so
    /// the next partial checkpoint covers the union of both intervals.
    fn abort_cycle_partial(&self, id: u64, tombs: Vec<Key>, high_water: usize) {
        let tracker = self.tracker.as_ref().expect("partial mode has a tracker");
        let status = self.store.stable_status();
        // Re-mark before the cleanup pass below reads interval id + 1, so
        // one pass normalizes the union of both intervals' slots.
        for slot in tracker.dirty_slots(id, high_water) {
            tracker.mark(slot, id + 1);
        }
        self.tombstones[((id + 1) & 1) as usize].lock().extend(tombs);
        self.phases.transition(Phase::Complete);
        self.phases.drain_others(Phase::Complete);
        // Same cleanup pass as the success path: provisional stable
        // versions hold values as of the *failed* cycle's point, which the
        // next cycle must not reuse — its capture reads live values (or
        // pre-images its own post-point writers create).
        for slot in tracker.dirty_slots(id + 1, self.store.slot_high_water()) {
            let mut g = self.store.lock_slot(slot);
            if g.in_use() {
                g.erase_stable();
            }
            status.unmark(slot as usize);
            drop(g);
        }
        tracker.clear(id);
        self.phases.transition(Phase::Rest);
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    fn checkpoint_partial(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let tracker = self.tracker.as_ref().expect("partial mode has a tracker");
        let id = self.phases.log().current_stamp().cycle;

        self.phases.transition(Phase::Prepare);
        self.phases.drain_others(Phase::Prepare);
        let watermark = self.phases.transition(Phase::Resolve);
        self.phases.drain_others(Phase::Resolve);
        self.phases.transition(Phase::Capture);

        let status = self.store.stable_status();
        // Tombstones are drained *before* the fallible disk work so the
        // failure path below can re-queue them wherever the cycle dies
        // (even in `begin`).
        let tombs = std::mem::take(&mut *self.tombstones[(id & 1) as usize].lock());
        let high_water = self.store.slot_high_water();
        let summary = match self.capture_partial(dir, id, watermark, &tombs, high_water) {
            Ok(s) => s,
            Err(e) => {
                self.abort_cycle_partial(id, tombs, high_water);
                return Err(e);
            }
        };

        self.phases.transition(Phase::Complete);
        self.phases.drain_others(Phase::Complete);
        // End-of-cycle cleanup: post-point writers left provisional stable
        // versions + available bits on slots belonging to the *next*
        // checkpoint interval. They hold values as of THIS checkpoint's
        // point, which the next checkpoint must not reuse — erase them and
        // reset the bits. O(dirty), preserving pCALC's no-full-scan
        // property. Safe here: capture-started transactions have drained,
        // and complete/rest-started writers never create stable versions.
        for slot in tracker.dirty_slots(id + 1, self.store.slot_high_water()) {
            let mut g = self.store.lock_slot(slot);
            if g.in_use() {
                g.erase_stable();
            }
            status.unmark(slot as usize);
            drop(g);
        }
        tracker.clear(id);
        self.phases.transition(Phase::Rest);

        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Partial,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce: std::time::Duration::ZERO,
            parts: summary.parts,
        })
    }
}

impl CheckpointStrategy for CalcStrategy {
    fn name(&self) -> &'static str {
        if self.partial {
            "pCALC"
        } else {
            "CALC"
        }
    }

    fn transaction_consistent(&self) -> bool {
        true
    }

    fn partial(&self) -> bool {
        self.partial
    }

    fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError> {
        self.store.insert(key, value).map(|_| ())
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.store.get(key)
    }

    fn record_count(&self) -> usize {
        self.store.len()
    }

    fn txn_begin(&self) -> TxnToken {
        TxnToken {
            stamp: self.phases.begin(),
            writes: Vec::new(),
        }
    }

    fn txn_end(&self, token: TxnToken) {
        self.phases.end(token.stamp);
    }

    fn apply_write(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<Option<Value>, StoreError> {
        let status = self.store.stable_status();
        let mut g = self
            .store
            .locked_slot_of(key)
            .ok_or(StoreError::KeyNotFound(key))?;
        let slot = g.slot();
        let mut created = false;
        match token.stamp.phase {
            Phase::Prepare => {
                // Provisional pre-image: kept or discarded by the commit
                // hook depending on the commit phase. Never copy a record
                // this same transaction inserted — its live value is our
                // own uncommitted write, not a committed point value, and
                // a RESOLVE commit would wrongly promote it to the
                // checkpoint (resurrecting a key deleted before the
                // point). The insert slot stays stable-less; the commit
                // hook's mark makes the scan exclude it, which is correct
                // on both sides of the point.
                if !status.is_marked(slot as usize)
                    && !g.has_stable()
                    && !Self::self_inserted(token, slot)
                {
                    g.copy_live_to_stable();
                    created = true;
                }
            }
            Phase::Resolve | Phase::Capture => {
                // Definitely after the point of consistency: preserve the
                // point value and mark it available. (A slot this txn
                // inserted was already marked by `apply_insert`, so the
                // guard below never copies our own uncommitted value.)
                if !status.is_marked(slot as usize) {
                    if !g.has_stable() {
                        g.copy_live_to_stable();
                        created = true;
                    }
                    status.mark(slot as usize);
                }
            }
            Phase::Complete | Phase::Rest => {
                g.erase_stable();
            }
        }
        let old = g.set_live(value);
        drop(g);
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Update,
            created_stable: created,
        });
        Ok(old)
    }

    fn apply_insert(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<bool, StoreError> {
        // A record created after the point of consistency must be skipped
        // by the capture scan: available bit with no stable version (the
        // paper's add-status bit vector, represented structurally).
        let marked = matches!(token.stamp.phase, Phase::Resolve | Phase::Capture);
        match self.store.insert_with_status(key, value, marked) {
            Ok(slot) => {
                if !self.partial {
                    self.settle_insert_bit(slot as usize);
                }
                token.writes.push(WriteRec {
                    key,
                    slot,
                    kind: WriteKind::Insert,
                    created_stable: false,
                });
                Ok(true)
            }
            Err(StoreError::DuplicateKey(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn apply_delete(&self, token: &mut TxnToken, key: Key) -> Result<Option<Value>, StoreError> {
        let status = self.store.stable_status();
        let mut g = self
            .store
            .locked_slot_of(key)
            .ok_or(StoreError::KeyNotFound(key))?;
        if g.live().is_none() {
            return Err(StoreError::KeyNotFound(key));
        }
        let slot = g.slot();
        let mut created = false;
        match token.stamp.phase {
            Phase::Prepare => {
                // Same self-insert guard as `apply_write`: deleting a
                // record this transaction created must not preserve our
                // own uncommitted value as a "pre-image".
                if !status.is_marked(slot as usize)
                    && !g.has_stable()
                    && !Self::self_inserted(token, slot)
                {
                    g.copy_live_to_stable();
                    created = true;
                }
            }
            Phase::Resolve | Phase::Capture => {
                if !status.is_marked(slot as usize) {
                    if !g.has_stable() {
                        g.copy_live_to_stable();
                        created = true;
                    }
                    status.mark(slot as usize);
                }
            }
            Phase::Complete | Phase::Rest => {
                g.erase_stable();
            }
        }
        let old = g.clear_live();
        // Unlink while holding the slot guard: no new transaction can
        // reach the slot, but its stable version (if any) stays for the
        // capture thread. Slot reclamation happens at commit.
        self.store.unlink(key)?;
        drop(g);
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Delete,
            created_stable: created,
        });
        Ok(old)
    }

    fn on_commit(&self, token: &mut TxnToken, _seq: CommitSeq, commit: PhaseStamp) {
        let interval = commit.checkpoint_interval();
        let prepare_started = token.stamp.phase == Phase::Prepare;
        let status = self.store.stable_status();
        for w in &token.writes {
            if let Some(tracker) = &self.tracker {
                tracker.mark(w.slot, interval);
            }
            if prepare_started {
                match commit.phase {
                    Phase::Prepare => {
                        // Committed before the point: its writes are in the
                        // checkpoint via live versions; discard the
                        // provisional pre-images it made.
                        if w.created_stable {
                            let mut g = self.store.lock_slot(w.slot);
                            g.erase_stable();
                        }
                    }
                    Phase::Resolve => {
                        // Committed after the point: pre-images become the
                        // capture thread's stable reads.
                        let g = self.store.lock_slot(w.slot);
                        status.mark(w.slot as usize);
                        drop(g);
                    }
                    other => {
                        debug_assert!(
                            false,
                            "prepare-started txn committed in {other} — \
                             the resolve drain forbids this"
                        );
                    }
                }
            }
            if w.kind == WriteKind::Delete {
                if self.partial {
                    self.tombstones[(interval & 1) as usize].lock().push(w.key);
                }
                // Pre-point deletes (and post-point deletes whose slot was
                // already captured) leave no versions behind: reclaim.
                let g = self.store.lock_slot(w.slot);
                g.release_if_vacant();
            }
        }
    }

    fn on_abort(&self, token: &mut TxnToken, undo: &[UndoRec]) {
        // `undo` is newest-first, one entry per write record:
        // undo[i] rolls back token.writes[len - 1 - i].
        debug_assert_eq!(undo.len(), token.writes.len());
        let n = token.writes.len();
        for (i, u) in undo.iter().enumerate() {
            let w = &token.writes[n - 1 - i];
            debug_assert_eq!(w.key, u.key);
            match &u.img {
                UndoImage::Restore(v) => {
                    let mut g = self.store.lock_slot(w.slot);
                    g.set_live(v);
                }
                UndoImage::Remove => {
                    let _ = self.store.unlink(u.key);
                    let mut g = self.store.lock_slot(w.slot);
                    g.clear_live();
                    g.release_if_vacant();
                }
                UndoImage::Reinsert(v) => {
                    let mut g = self.store.lock_slot(w.slot);
                    g.set_live(v);
                    drop(g);
                    self.store.relink(u.key, w.slot);
                }
            }
        }
        // A prepare-started abort discards the provisional pre-images it
        // created (live has been restored to the same value, so nothing is
        // lost). Resolve/capture-started aborts KEEP their stable versions
        // and status bits: those hold correct point-of-consistency values.
        if token.stamp.phase == Phase::Prepare {
            for w in &token.writes {
                if w.created_stable {
                    let mut g = self.store.lock_slot(w.slot);
                    g.erase_stable();
                }
            }
        }
        // Conservative dirty marks (false positives are harmless; missing
        // marks would leak stable versions past the pCALC cleanup pass).
        if let Some(tracker) = &self.tracker {
            for w in &token.writes {
                tracker.mark(w.slot, token.stamp.cycle);
                tracker.mark(w.slot, token.stamp.cycle + 1);
            }
        }
    }

    fn checkpoint(&self, _env: &dyn EngineEnv, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        // CALC is the one algorithm here that never quiesces: `_env` is
        // deliberately unused.
        if self.partial {
            self.checkpoint_partial(dir)
        } else {
            self.checkpoint_full(dir)
        }
    }

    fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        CalcStrategy::write_base_checkpoint(self, dir)
    }

    fn aborted_cycles(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    fn memory(&self) -> MemoryStats {
        let mut m = self.store.memory();
        if let Some(t) = &self.tracker {
            m.overhead_bytes += t.heap_bytes();
        }
        m
    }
}

impl std::fmt::Debug for CalcStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}(records={}, {:?})",
            self.name(),
            self.store.len(),
            self.phases
        )
    }
}
