//! The on-disk checkpoint file format.
//!
//! ```text
//! header   "CALCCKPT" | version:u32 | kind:u8 | id:u64 | watermark:u64
//! records  repeated:  flag:u8 (0 value, 1 tombstone) | key:u64 | len:u32 | bytes
//! footer   "CKPTEND." | record_count:u64 | crc32:u32
//! ```
//!
//! All integers little-endian. The CRC covers header + records. A crash
//! mid-capture leaves a file without a valid footer; recovery (§3)
//! detects this via [`CheckpointReader::open`] and discards the file —
//! which is exactly the paper's durability story for failures during
//! checkpointing: the previous checkpoints remain intact because files
//! are published atomically (tmp + rename, handled by
//! [`crate::manifest::CheckpointDir`]).
//!
//! Tombstones appear only in *partial* checkpoints (a record that existed
//! in an earlier checkpoint and was deleted before this one's point of
//! consistency). Within one file, a tombstone precedes any re-insertion of
//! the same key, so sequential replay (last event wins) is correct.

use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use calc_common::crc::Crc32;
use calc_common::types::{CommitSeq, Key, Value};
use calc_common::vfs::{OsVfs, Vfs, VfsFile, VfsRead};

use crate::throttle::Throttle;

const HEADER_MAGIC: &[u8; 8] = b"CALCCKPT";
const FOOTER_MAGIC: &[u8; 8] = b"CKPTEND.";
const VERSION: u32 = 1;
/// header magic + version + kind + id + watermark.
const HEADER_LEN: usize = 8 + 4 + 1 + 8 + 8;
/// footer magic + count + crc.
const FOOTER_LEN: usize = 8 + 8 + 4;

/// Whether a checkpoint holds complete database state or only records
/// changed since the previous checkpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointKind {
    /// Complete snapshot.
    Full,
    /// Delta since the previous checkpoint (may contain tombstones).
    Partial,
}

impl CheckpointKind {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            CheckpointKind::Full => 0,
            CheckpointKind::Partial => 1,
        }
    }

    pub(crate) fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(CheckpointKind::Full),
            1 => Ok(CheckpointKind::Partial),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad checkpoint kind byte {b}"),
            )),
        }
    }
}

impl std::fmt::Display for CheckpointKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointKind::Full => f.write_str("full"),
            CheckpointKind::Partial => f.write_str("part"),
        }
    }
}

/// One record read back from a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordEntry {
    /// A record value.
    Value(Key, Value),
    /// A deletion marker (partial checkpoints only).
    Tombstone(Key),
}

impl RecordEntry {
    /// The record's key.
    pub fn key(&self) -> Key {
        match self {
            RecordEntry::Value(k, _) => *k,
            RecordEntry::Tombstone(k) => *k,
        }
    }
}

/// Streaming checkpoint writer. Writes go through an optional byte
/// throttle (the simulated disk). Call [`CheckpointWriter::finish`] to
/// seal the footer; dropping without finishing leaves an invalid file, as
/// a crash would.
pub struct CheckpointWriter {
    out: Box<dyn VfsFile>,
    path: PathBuf,
    crc: Crc32,
    count: u64,
    bytes: u64,
    throttle: Arc<Throttle>,
    /// Unthrottled bytes accumulated since the last throttle charge;
    /// charged in chunks to keep throttle locking off the per-record path.
    pending_charge: usize,
    finished: bool,
}

const CHARGE_CHUNK: usize = 256 * 1024;

impl CheckpointWriter {
    /// Creates a writer at `path` on the real filesystem.
    pub fn create(
        path: &Path,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
        throttle: Arc<Throttle>,
    ) -> io::Result<Self> {
        Self::create_with_vfs(&OsVfs, path, kind, id, watermark, throttle)
    }

    /// Creates a writer at `path` through an arbitrary [`Vfs`].
    pub fn create_with_vfs(
        vfs: &dyn Vfs,
        path: &Path,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
        throttle: Arc<Throttle>,
    ) -> io::Result<Self> {
        let file = vfs.create(path)?;
        let mut w = CheckpointWriter {
            out: file,
            path: path.to_path_buf(),
            crc: Crc32::new(),
            count: 0,
            bytes: 0,
            throttle,
            pending_charge: 0,
            finished: false,
        };
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(HEADER_MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.push(kind.to_byte());
        header.extend_from_slice(&id.to_le_bytes());
        header.extend_from_slice(&watermark.0.to_le_bytes());
        w.write_all_tracked(&header)?;
        Ok(w)
    }

    fn write_all_tracked(&mut self, buf: &[u8]) -> io::Result<()> {
        self.crc.update(buf);
        self.out.write_all(buf)?;
        self.bytes += buf.len() as u64;
        self.pending_charge += buf.len();
        if self.pending_charge >= CHARGE_CHUNK {
            self.throttle.consume(self.pending_charge);
            self.pending_charge = 0;
        }
        Ok(())
    }

    /// Appends a record value.
    pub fn write_record(&mut self, key: Key, value: &[u8]) -> io::Result<()> {
        let mut head = [0u8; 13];
        head[0] = 0;
        head[1..9].copy_from_slice(&key.0.to_le_bytes());
        head[9..13].copy_from_slice(&(value.len() as u32).to_le_bytes());
        self.write_all_tracked(&head)?;
        self.write_all_tracked(value)?;
        self.count += 1;
        Ok(())
    }

    /// Appends a tombstone.
    pub fn write_tombstone(&mut self, key: Key) -> io::Result<()> {
        let mut head = [0u8; 13];
        head[0] = 1;
        head[1..9].copy_from_slice(&key.0.to_le_bytes());
        self.write_all_tracked(&head)?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        self.count
    }

    /// Bytes written so far (pre-footer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Seals the footer, flushes, and fsyncs. Returns the file's
    /// [`PartSummary`] (record count, byte size, and the record-stream
    /// CRC that doubles as the file's digest in multi-part manifests).
    pub fn finish(mut self) -> io::Result<PartSummary> {
        let crc = self.crc.finish();
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(FOOTER_MAGIC);
        footer.extend_from_slice(&self.count.to_le_bytes());
        footer.extend_from_slice(&crc.to_le_bytes());
        self.out.write_all(&footer)?;
        self.bytes += footer.len() as u64;
        self.pending_charge += footer.len();
        self.throttle.consume(self.pending_charge);
        self.pending_charge = 0;
        self.out.sync()?;
        self.finished = true;
        Ok(PartSummary {
            records: self.count,
            bytes: self.bytes,
            crc,
        })
    }

    /// The file path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What [`CheckpointWriter::finish`] sealed: the file's record count,
/// total bytes (header + records + footer), and record-stream CRC. The
/// CRC is the same value stored in the file's own footer, so a manifest
/// can record it as the part's digest without re-reading the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartSummary {
    /// Records + tombstones written.
    pub records: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// CRC32 over the record stream (the footer CRC).
    pub crc: u32,
}

/// Validated metadata from a checkpoint file's header + footer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileHeader {
    /// Full or partial.
    pub kind: CheckpointKind,
    /// Checkpoint interval id.
    pub id: u64,
    /// Virtual-point-of-consistency watermark: commits with `seq <=
    /// watermark` are reflected, none after. (The watermark is the
    /// sequence of the RESOLVE transition token, so commits strictly
    /// before it are `<` it; `<=` holds because tokens consume sequences.)
    pub watermark: CommitSeq,
    /// Record + tombstone count.
    pub records: u64,
}

/// Streaming, CRC-validating checkpoint reader.
pub struct CheckpointReader {
    input: BufReader<Box<dyn VfsRead>>,
    header: FileHeader,
    remaining: u64,
    crc: Crc32,
    expected_crc: u32,
}

impl std::fmt::Debug for CheckpointReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointReader")
            .field("header", &self.header)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl CheckpointReader {
    /// Opens a checkpoint file on the real filesystem.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_vfs(&OsVfs, path)
    }

    /// Opens and validates a checkpoint file through an arbitrary
    /// [`Vfs`]: header magic/version, footer magic, and record count. The
    /// CRC is verified incrementally; it is checked when the last record
    /// is consumed (or via [`CheckpointReader::read_all`]).
    pub fn open_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        let len = vfs.len(path)?;
        let mut file = vfs.open_read(path)?;
        if len < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Err(invalid("file too short for header + footer"));
        }
        // Footer first: it is the commit point of the file.
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact(&mut footer)?;
        if &footer[..8] != FOOTER_MAGIC {
            return Err(invalid("missing footer (crash during capture?)"));
        }
        let records = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let expected_crc = u32::from_le_bytes(footer[16..20].try_into().unwrap());

        file.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        if &header[..8] != HEADER_MAGIC {
            return Err(invalid("bad header magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(invalid(&format!("unsupported version {version}")));
        }
        let kind = CheckpointKind::from_byte(header[12])?;
        let id = u64::from_le_bytes(header[13..21].try_into().unwrap());
        let watermark = CommitSeq(u64::from_le_bytes(header[21..29].try_into().unwrap()));

        let mut crc = Crc32::new();
        crc.update(&header);
        Ok(CheckpointReader {
            input: BufReader::with_capacity(1 << 20, file),
            header: FileHeader {
                kind,
                id,
                watermark,
                records,
            },
            remaining: records,
            crc,
            expected_crc,
        })
    }

    /// The validated header.
    pub fn header(&self) -> FileHeader {
        self.header
    }

    /// The footer's CRC digest (not yet verified against the body). A
    /// manifest compares this against its recorded per-part digest before
    /// paying for the full [`CheckpointReader::verify`] scan.
    pub fn expected_crc(&self) -> u32 {
        self.expected_crc
    }

    /// Reads the next record; `None` at end. The final call verifies the
    /// CRC and fails if the body was corrupted.
    pub fn next_record(&mut self) -> io::Result<Option<RecordEntry>> {
        if self.remaining == 0 {
            if self.crc.finish() != self.expected_crc {
                return Err(invalid("CRC mismatch — corrupted checkpoint body"));
            }
            return Ok(None);
        }
        let mut head = [0u8; 13];
        self.input.read_exact(&mut head)?;
        self.crc.update(&head);
        let flag = head[0];
        let key = Key(u64::from_le_bytes(head[1..9].try_into().unwrap()));
        let len = u32::from_le_bytes(head[9..13].try_into().unwrap()) as usize;
        self.remaining -= 1;
        match flag {
            1 => Ok(Some(RecordEntry::Tombstone(key))),
            0 => {
                let mut buf = vec![0u8; len];
                self.input.read_exact(&mut buf)?;
                self.crc.update(&buf);
                Ok(Some(RecordEntry::Value(key, buf.into_boxed_slice())))
            }
            other => Err(invalid(&format!("bad record flag {other}"))),
        }
    }

    /// Consumes every record without materializing values, verifying the
    /// CRC. A file whose footer survived but whose body was corrupted or
    /// torn fails here, not at load time.
    pub fn verify(mut self) -> io::Result<FileHeader> {
        while self.next_record()?.is_some() {}
        Ok(self.header)
    }

    /// Reads every record, verifying the CRC.
    pub fn read_all(mut self) -> io::Result<Vec<RecordEntry>> {
        let mut out = Vec::with_capacity(self.header.records as usize);
        while let Some(e) = self.next_record()? {
            out.push(e);
        }
        Ok(out)
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "calc-file-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn unlimited() -> Arc<Throttle> {
        Arc::new(Throttle::unlimited())
    }

    #[test]
    fn roundtrip_values_and_tombstones() {
        let path = tmpdir().join("rt.calc");
        let mut w = CheckpointWriter::create(
            &path,
            CheckpointKind::Partial,
            7,
            CommitSeq(42),
            unlimited(),
        )
        .unwrap();
        w.write_tombstone(Key(100)).unwrap();
        w.write_record(Key(1), b"alpha").unwrap();
        w.write_record(Key(2), b"").unwrap();
        let summary = w.finish().unwrap();
        assert_eq!(summary.records, 3);
        assert!(summary.bytes > 0);

        let r = CheckpointReader::open(&path).unwrap();
        let h = r.header();
        assert_eq!(h.kind, CheckpointKind::Partial);
        assert_eq!(h.id, 7);
        assert_eq!(h.watermark, CommitSeq(42));
        assert_eq!(h.records, 3);
        let entries = r.read_all().unwrap();
        assert_eq!(
            entries,
            vec![
                RecordEntry::Tombstone(Key(100)),
                RecordEntry::Value(Key(1), b"alpha".to_vec().into_boxed_slice()),
                RecordEntry::Value(Key(2), Vec::new().into_boxed_slice()),
            ]
        );
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let path = tmpdir().join("crash.calc");
        {
            let mut w = CheckpointWriter::create(
                &path,
                CheckpointKind::Full,
                1,
                CommitSeq(1),
                unlimited(),
            )
            .unwrap();
            w.write_record(Key(1), b"half").unwrap();
            // Dropped without finish(): simulated crash mid-capture.
        }
        let err = CheckpointReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupted_body_fails_crc() {
        let path = tmpdir().join("corrupt.calc");
        let mut w =
            CheckpointWriter::create(&path, CheckpointKind::Full, 1, CommitSeq(1), unlimited())
                .unwrap();
        for k in 0..100u64 {
            w.write_record(Key(k), &k.to_le_bytes()).unwrap();
        }
        w.finish().unwrap();
        // Flip a byte in the middle of the body.
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let r = CheckpointReader::open(&path).unwrap();
        let err = r.read_all().unwrap_err();
        assert!(err.to_string().contains("CRC") || err.kind() == io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmpdir().join("trunc.calc");
        let mut w =
            CheckpointWriter::create(&path, CheckpointKind::Full, 1, CommitSeq(1), unlimited())
                .unwrap();
        w.write_record(Key(1), &[0u8; 100]).unwrap();
        w.finish().unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 30]).unwrap();
        assert!(CheckpointReader::open(&path).is_err());
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let path = tmpdir().join("empty.calc");
        let w = CheckpointWriter::create(
            &path,
            CheckpointKind::Partial,
            3,
            CommitSeq(9),
            unlimited(),
        )
        .unwrap();
        w.finish().unwrap();
        let entries = CheckpointReader::open(&path).unwrap().read_all().unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn large_values_roundtrip() {
        let path = tmpdir().join("large.calc");
        let mut w =
            CheckpointWriter::create(&path, CheckpointKind::Full, 1, CommitSeq(1), unlimited())
                .unwrap();
        let big = vec![0xAB; 1 << 20];
        w.write_record(Key(1), &big).unwrap();
        w.finish().unwrap();
        let entries = CheckpointReader::open(&path).unwrap().read_all().unwrap();
        match &entries[0] {
            RecordEntry::Value(k, v) => {
                assert_eq!(*k, Key(1));
                assert_eq!(v.len(), 1 << 20);
            }
            _ => panic!("expected value"),
        }
    }
}
