//! The on-disk checkpoint file format.
//!
//! ```text
//! v1 header  "CALCCKPT" | version=1:u32 | kind:u8 | id:u64 | watermark:u64
//! v2 header  "CALCCKPT" | version=2:u32 | kind:u8 | id:u64 | watermark:u64 | codec:u8
//! records    repeated:  flag:u8 (0 value, 1 tombstone) | key:u64 | len:u32 | bytes
//! footer     "CKPTEND." | record_count:u64 | crc32:u32
//! ```
//!
//! All integers little-endian. Version 1 (codec `none`) lays the record
//! stream out directly between header and footer — byte-identical to the
//! pre-compression format, so legacy directories read and write
//! unchanged. Version 2 wraps the same record stream in **framed
//! compressed blocks**: records are buffered to ~[`BLOCK_TARGET`]
//! uncompressed bytes (never splitting a record across blocks) and each
//! block is emitted as
//!
//! ```text
//! frame  raw_len:u32 | comp_len:u32 | crc32(compressed):u32 | compressed bytes
//! ```
//!
//! The footer CRC covers the *physical* bytes (header + frames), so the
//! manifest's per-part digest and the footer-first validity check work
//! identically for both versions; the per-frame CRC additionally localizes
//! corruption to one block and fails decoding closed before the codec
//! sees garbage. A crash mid-capture leaves a file without a valid
//! footer; recovery (§3) detects this via [`CheckpointReader::open`] and
//! discards the file — which is exactly the paper's durability story for
//! failures during checkpointing: the previous checkpoints remain intact
//! because files are published atomically (tmp + rename, handled by
//! [`crate::manifest::CheckpointDir`]).
//!
//! Tombstones appear only in *partial* checkpoints (a record that existed
//! in an earlier checkpoint and was deleted before this one's point of
//! consistency). Within one file, a tombstone precedes any re-insertion of
//! the same key, so sequential replay (last event wins) is correct.

use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use calc_common::crc::Crc32;
use calc_common::types::{CommitSeq, Key, Value};
use calc_common::vfs::{OsVfs, Vfs, VfsFile, VfsRead};

use crate::codec::Codec;
use crate::throttle::Throttle;

const HEADER_MAGIC: &[u8; 8] = b"CALCCKPT";
const FOOTER_MAGIC: &[u8; 8] = b"CKPTEND.";
const VERSION: u32 = 1;
/// File version carrying a codec byte and framed compressed blocks.
const VERSION_COMPRESSED: u32 = 2;
/// header magic + version + kind + id + watermark.
const HEADER_LEN: usize = 8 + 4 + 1 + 8 + 8;
/// footer magic + count + crc.
const FOOTER_LEN: usize = 8 + 8 + 4;
/// v2 frame head: raw_len + comp_len + crc32 of the compressed bytes.
const FRAME_HEAD_LEN: usize = 4 + 4 + 4;
/// Target uncompressed bytes per compressed block. A record larger than
/// this gets a block of its own (records never split across blocks).
pub const BLOCK_TARGET: usize = 64 * 1024;
/// Upper bound accepted for a frame's raw or compressed length — torn
/// frame heads must not trigger absurd allocations.
const FRAME_LEN_LIMIT: u32 = 1 << 30;

/// Whether a checkpoint holds complete database state or only records
/// changed since the previous checkpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointKind {
    /// Complete snapshot.
    Full,
    /// Delta since the previous checkpoint (may contain tombstones).
    Partial,
}

impl CheckpointKind {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            CheckpointKind::Full => 0,
            CheckpointKind::Partial => 1,
        }
    }

    pub(crate) fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(CheckpointKind::Full),
            1 => Ok(CheckpointKind::Partial),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad checkpoint kind byte {b}"),
            )),
        }
    }
}

impl std::fmt::Display for CheckpointKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointKind::Full => f.write_str("full"),
            CheckpointKind::Partial => f.write_str("part"),
        }
    }
}

/// One record read back from a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordEntry {
    /// A record value.
    Value(Key, Value),
    /// A deletion marker (partial checkpoints only).
    Tombstone(Key),
}

impl RecordEntry {
    /// The record's key.
    pub fn key(&self) -> Key {
        match self {
            RecordEntry::Value(k, _) => *k,
            RecordEntry::Tombstone(k) => *k,
        }
    }
}

/// Streaming checkpoint writer. Writes go through an optional byte
/// throttle (the simulated disk). Call [`CheckpointWriter::finish`] to
/// seal the footer; dropping without finishing leaves an invalid file, as
/// a crash would.
pub struct CheckpointWriter {
    out: Box<dyn VfsFile>,
    path: PathBuf,
    crc: Crc32,
    count: u64,
    bytes: u64,
    /// Bytes the file would occupy uncompressed (equal to `bytes` under
    /// codec `none`): header + raw record stream + footer.
    raw_bytes: u64,
    codec: Codec,
    /// Uncompressed record bytes buffered for the next frame (v2 only).
    block: Vec<u8>,
    throttle: Arc<Throttle>,
    /// Unthrottled bytes accumulated since the last throttle charge;
    /// charged in chunks to keep throttle locking off the per-record path.
    pending_charge: usize,
    /// Foreground load signal for adaptive scan pacing (attached by
    /// [`crate::manifest::CheckpointDir::begin_parts`] when pacing is on).
    pacer: Option<Arc<calc_common::load::LoadSignal>>,
    /// Records since the last pacing check.
    pace_stride: u32,
    finished: bool,
}

const CHARGE_CHUNK: usize = 256 * 1024;

/// Records between pacing checks: one atomic load every `PACE_STRIDE`
/// records keeps the signal off the per-record hot path.
const PACE_STRIDE: u32 = 1024;

impl CheckpointWriter {
    /// Creates a writer at `path` on the real filesystem.
    pub fn create(
        path: &Path,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
        throttle: Arc<Throttle>,
    ) -> io::Result<Self> {
        Self::create_with_vfs(&OsVfs, path, kind, id, watermark, throttle)
    }

    /// Creates a writer at `path` through an arbitrary [`Vfs`], in the
    /// legacy uncompressed format (codec `none`).
    pub fn create_with_vfs(
        vfs: &dyn Vfs,
        path: &Path,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
        throttle: Arc<Throttle>,
    ) -> io::Result<Self> {
        Self::create_with_vfs_codec(vfs, path, kind, id, watermark, throttle, Codec::None)
    }

    /// Creates a writer at `path` through an arbitrary [`Vfs`] with the
    /// given block codec. [`Codec::None`] writes the version-1 format
    /// byte-identically; any other codec writes version 2 with framed
    /// compressed blocks.
    pub fn create_with_vfs_codec(
        vfs: &dyn Vfs,
        path: &Path,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
        throttle: Arc<Throttle>,
        codec: Codec,
    ) -> io::Result<Self> {
        let file = vfs.create(path)?;
        let mut w = CheckpointWriter {
            out: file,
            path: path.to_path_buf(),
            crc: Crc32::new(),
            count: 0,
            bytes: 0,
            raw_bytes: 0,
            codec,
            block: Vec::new(),
            throttle,
            pending_charge: 0,
            pacer: None,
            pace_stride: 0,
            finished: false,
        };
        let version = if codec == Codec::None {
            VERSION
        } else {
            VERSION_COMPRESSED
        };
        let mut header = Vec::with_capacity(HEADER_LEN + 1);
        header.extend_from_slice(HEADER_MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        header.push(kind.to_byte());
        header.extend_from_slice(&id.to_le_bytes());
        header.extend_from_slice(&watermark.0.to_le_bytes());
        if codec != Codec::None {
            header.push(codec.to_byte());
        }
        w.write_all_tracked(&header)?;
        w.raw_bytes = header.len() as u64;
        Ok(w)
    }

    fn write_all_tracked(&mut self, buf: &[u8]) -> io::Result<()> {
        self.crc.update(buf);
        self.out.write_all(buf)?;
        self.bytes += buf.len() as u64;
        self.pending_charge += buf.len();
        if self.pending_charge >= CHARGE_CHUNK {
            self.throttle.consume(self.pending_charge);
            self.pending_charge = 0;
        }
        Ok(())
    }

    /// Routes record-stream bytes: straight to disk in v1, into the
    /// pending block in v2. `raw_bytes` counts them either way.
    fn append_record_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.raw_bytes += buf.len() as u64;
        if self.codec == Codec::None {
            self.write_all_tracked(buf)
        } else {
            self.block.extend_from_slice(buf);
            Ok(())
        }
    }

    /// Compresses and frames the pending block (v2 only). Called between
    /// records, so a record never straddles two frames.
    fn flush_block(&mut self) -> io::Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let raw = std::mem::take(&mut self.block);
        let comp = self.codec.compress(&raw);
        let mut head = [0u8; FRAME_HEAD_LEN];
        head[0..4].copy_from_slice(&(raw.len() as u32).to_le_bytes());
        head[4..8].copy_from_slice(&(comp.len() as u32).to_le_bytes());
        head[8..12].copy_from_slice(&calc_common::crc::crc32(&comp).to_le_bytes());
        self.write_all_tracked(&head)?;
        self.write_all_tracked(&comp)?;
        // Reuse the allocation for the next block.
        self.block = raw;
        self.block.clear();
        Ok(())
    }

    fn maybe_flush_block(&mut self) -> io::Result<()> {
        if self.codec != Codec::None && self.block.len() >= BLOCK_TARGET {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Attaches the foreground load signal: every [`PACE_STRIDE`] records
    /// the writer consults it and, under pressure, yields its scan
    /// quantum to foreground transactions (counted on the signal as a
    /// capture yield). This is the single interception point all capture
    /// paths share, so every strategy inherits load-aware pacing.
    pub fn set_pacer(&mut self, signal: Arc<calc_common::load::LoadSignal>) {
        self.pacer = Some(signal);
    }

    /// One pacing check per [`PACE_STRIDE`] records: under
    /// [`calc_common::load::LoadLevel::High`] the capture thread yields
    /// its timeslice; under overload it parks briefly so foreground
    /// commits get the cores. Capture always makes progress — pacing
    /// stretches a cycle, it never wedges one.
    #[inline]
    fn pace(&mut self) {
        self.pace_stride += 1;
        if self.pace_stride < PACE_STRIDE {
            return;
        }
        self.pace_stride = 0;
        let Some(signal) = &self.pacer else { return };
        use calc_common::load::LoadLevel;
        match signal.level() {
            LoadLevel::Overload => {
                signal.record_capture_yield();
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            LoadLevel::High => {
                signal.record_capture_yield();
                std::thread::yield_now();
            }
            LoadLevel::Idle | LoadLevel::Normal => {}
        }
    }

    /// Appends a record value.
    pub fn write_record(&mut self, key: Key, value: &[u8]) -> io::Result<()> {
        let mut head = [0u8; 13];
        head[0] = 0;
        head[1..9].copy_from_slice(&key.0.to_le_bytes());
        head[9..13].copy_from_slice(&(value.len() as u32).to_le_bytes());
        self.append_record_bytes(&head)?;
        self.append_record_bytes(value)?;
        self.count += 1;
        self.pace();
        self.maybe_flush_block()
    }

    /// Appends a tombstone.
    pub fn write_tombstone(&mut self, key: Key) -> io::Result<()> {
        let mut head = [0u8; 13];
        head[0] = 1;
        head[1..9].copy_from_slice(&key.0.to_le_bytes());
        self.append_record_bytes(&head)?;
        self.count += 1;
        self.pace();
        self.maybe_flush_block()
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        self.count
    }

    /// Bytes written so far (pre-footer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Seals the footer, flushes, and fsyncs. Returns the file's
    /// [`PartSummary`] (record count, byte size, and the record-stream
    /// CRC that doubles as the file's digest in multi-part manifests).
    pub fn finish(mut self) -> io::Result<PartSummary> {
        self.flush_block()?;
        let crc = self.crc.finish();
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(FOOTER_MAGIC);
        footer.extend_from_slice(&self.count.to_le_bytes());
        footer.extend_from_slice(&crc.to_le_bytes());
        self.out.write_all(&footer)?;
        self.bytes += footer.len() as u64;
        self.raw_bytes += footer.len() as u64;
        self.pending_charge += footer.len();
        self.throttle.consume(self.pending_charge);
        self.pending_charge = 0;
        self.out.sync()?;
        self.finished = true;
        Ok(PartSummary {
            records: self.count,
            bytes: self.bytes,
            raw_bytes: self.raw_bytes,
            crc,
        })
    }

    /// The file path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What [`CheckpointWriter::finish`] sealed: the file's record count,
/// total bytes (header + records + footer), and record-stream CRC. The
/// CRC is the same value stored in the file's own footer, so a manifest
/// can record it as the part's digest without re-reading the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartSummary {
    /// Records + tombstones written.
    pub records: u64,
    /// Total file size in bytes (compressed size under a real codec).
    pub bytes: u64,
    /// Size the file would have uncompressed; equals `bytes` under codec
    /// `none`. `raw_bytes / bytes` is the compression ratio.
    pub raw_bytes: u64,
    /// CRC32 over the physical record stream (the footer CRC).
    pub crc: u32,
}

/// Validated metadata from a checkpoint file's header + footer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileHeader {
    /// Full or partial.
    pub kind: CheckpointKind,
    /// Checkpoint interval id.
    pub id: u64,
    /// Virtual-point-of-consistency watermark: commits with `seq <=
    /// watermark` are reflected, none after. (The watermark is the
    /// sequence of the RESOLVE transition token, so commits strictly
    /// before it are `<` it; `<=` holds because tokens consume sequences.)
    pub watermark: CommitSeq,
    /// Record + tombstone count.
    pub records: u64,
    /// Block codec the record stream is wrapped in ([`Codec::None`] for
    /// version-1 files).
    pub codec: Codec,
}

/// Streaming, CRC-validating checkpoint reader.
pub struct CheckpointReader {
    input: BufReader<Box<dyn VfsRead>>,
    header: FileHeader,
    remaining: u64,
    crc: Crc32,
    expected_crc: u32,
    /// Decompressed bytes of the current block and the read cursor into
    /// it (v2 only; empty under codec `none`).
    block: Vec<u8>,
    block_pos: usize,
}

impl std::fmt::Debug for CheckpointReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointReader")
            .field("header", &self.header)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl CheckpointReader {
    /// Opens a checkpoint file on the real filesystem.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_vfs(&OsVfs, path)
    }

    /// Opens and validates a checkpoint file through an arbitrary
    /// [`Vfs`]: header magic/version, footer magic, and record count. The
    /// CRC is verified incrementally; it is checked when the last record
    /// is consumed (or via [`CheckpointReader::read_all`]).
    pub fn open_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        let len = vfs.len(path)?;
        let mut file = vfs.open_read(path)?;
        if len < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Err(invalid("file too short for header + footer"));
        }
        // Footer first: it is the commit point of the file.
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact(&mut footer)?;
        if &footer[..8] != FOOTER_MAGIC {
            return Err(invalid("missing footer (crash during capture?)"));
        }
        let records = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let expected_crc = u32::from_le_bytes(footer[16..20].try_into().unwrap());

        file.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        if &header[..8] != HEADER_MAGIC {
            return Err(invalid("bad header magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION && version != VERSION_COMPRESSED {
            return Err(invalid(&format!("unsupported version {version}")));
        }
        let kind = CheckpointKind::from_byte(header[12])?;
        let id = u64::from_le_bytes(header[13..21].try_into().unwrap());
        let watermark = CommitSeq(u64::from_le_bytes(header[21..29].try_into().unwrap()));

        let mut crc = Crc32::new();
        crc.update(&header);
        let codec = if version == VERSION_COMPRESSED {
            let mut codec_byte = [0u8; 1];
            file.read_exact(&mut codec_byte)?;
            crc.update(&codec_byte);
            Codec::from_byte(codec_byte[0])?
        } else {
            Codec::None
        };
        Ok(CheckpointReader {
            input: BufReader::with_capacity(1 << 20, file),
            header: FileHeader {
                kind,
                id,
                watermark,
                records,
                codec,
            },
            remaining: records,
            crc,
            expected_crc,
            block: Vec::new(),
            block_pos: 0,
        })
    }

    /// The validated header.
    pub fn header(&self) -> FileHeader {
        self.header
    }

    /// The footer's CRC digest (not yet verified against the body). A
    /// manifest compares this against its recorded per-part digest before
    /// paying for the full [`CheckpointReader::verify`] scan.
    pub fn expected_crc(&self) -> u32 {
        self.expected_crc
    }

    /// Loads and validates the next compressed frame into `self.block`
    /// (v2 only). The per-frame CRC is checked *before* the codec runs,
    /// so a corrupted block fails closed here.
    fn fill_block(&mut self) -> io::Result<()> {
        let mut head = [0u8; FRAME_HEAD_LEN];
        self.input.read_exact(&mut head)?;
        self.crc.update(&head);
        let raw_len = u32::from_le_bytes(head[0..4].try_into().unwrap());
        let comp_len = u32::from_le_bytes(head[4..8].try_into().unwrap());
        let block_crc = u32::from_le_bytes(head[8..12].try_into().unwrap());
        if raw_len == 0 || raw_len > FRAME_LEN_LIMIT || comp_len == 0 || comp_len > FRAME_LEN_LIMIT
        {
            return Err(invalid("implausible compressed frame head"));
        }
        let mut comp = vec![0u8; comp_len as usize];
        self.input.read_exact(&mut comp)?;
        self.crc.update(&comp);
        if calc_common::crc::crc32(&comp) != block_crc {
            return Err(invalid("compressed block CRC mismatch"));
        }
        self.block = self.header.codec.decompress(&comp, raw_len as usize)?;
        self.block_pos = 0;
        Ok(())
    }

    /// Copies `n` bytes out of the current block, refilling it from the
    /// next frame when exhausted. Records never straddle frames, so a
    /// refill mid-record means the file is corrupt.
    fn read_from_block(&mut self, buf: &mut [u8]) -> io::Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        if self.block_pos == self.block.len() {
            self.fill_block()?;
        }
        let end = self.block_pos + buf.len();
        if end > self.block.len() {
            return Err(invalid("record straddles a compressed block boundary"));
        }
        buf.copy_from_slice(&self.block[self.block_pos..end]);
        self.block_pos = end;
        Ok(())
    }

    /// Reads the next record; `None` at end. The final call verifies the
    /// CRC and fails if the body was corrupted.
    pub fn next_record(&mut self) -> io::Result<Option<RecordEntry>> {
        if self.remaining == 0 {
            if self.block_pos != self.block.len() {
                return Err(invalid("trailing bytes after last record in block"));
            }
            if self.crc.finish() != self.expected_crc {
                return Err(invalid("CRC mismatch — corrupted checkpoint body"));
            }
            return Ok(None);
        }
        let compressed = self.header.codec != Codec::None;
        let mut head = [0u8; 13];
        if compressed {
            self.read_from_block(&mut head)?;
        } else {
            self.input.read_exact(&mut head)?;
            self.crc.update(&head);
        }
        let flag = head[0];
        let key = Key(u64::from_le_bytes(head[1..9].try_into().unwrap()));
        let len = u32::from_le_bytes(head[9..13].try_into().unwrap()) as usize;
        self.remaining -= 1;
        match flag {
            1 => Ok(Some(RecordEntry::Tombstone(key))),
            0 => {
                let mut buf = vec![0u8; len];
                if compressed {
                    self.read_from_block(&mut buf)?;
                } else {
                    self.input.read_exact(&mut buf)?;
                    self.crc.update(&buf);
                }
                Ok(Some(RecordEntry::Value(key, buf.into_boxed_slice())))
            }
            other => Err(invalid(&format!("bad record flag {other}"))),
        }
    }

    /// Consumes every record without materializing values, verifying the
    /// CRC. A file whose footer survived but whose body was corrupted or
    /// torn fails here, not at load time.
    pub fn verify(mut self) -> io::Result<FileHeader> {
        while self.next_record()?.is_some() {}
        Ok(self.header)
    }

    /// Reads every record, verifying the CRC.
    pub fn read_all(mut self) -> io::Result<Vec<RecordEntry>> {
        let mut out = Vec::with_capacity(self.header.records as usize);
        while let Some(e) = self.next_record()? {
            out.push(e);
        }
        Ok(out)
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "calc-file-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn unlimited() -> Arc<Throttle> {
        Arc::new(Throttle::unlimited())
    }

    #[test]
    fn roundtrip_values_and_tombstones() {
        let path = tmpdir().join("rt.calc");
        let mut w = CheckpointWriter::create(
            &path,
            CheckpointKind::Partial,
            7,
            CommitSeq(42),
            unlimited(),
        )
        .unwrap();
        w.write_tombstone(Key(100)).unwrap();
        w.write_record(Key(1), b"alpha").unwrap();
        w.write_record(Key(2), b"").unwrap();
        let summary = w.finish().unwrap();
        assert_eq!(summary.records, 3);
        assert!(summary.bytes > 0);

        let r = CheckpointReader::open(&path).unwrap();
        let h = r.header();
        assert_eq!(h.kind, CheckpointKind::Partial);
        assert_eq!(h.id, 7);
        assert_eq!(h.watermark, CommitSeq(42));
        assert_eq!(h.records, 3);
        let entries = r.read_all().unwrap();
        assert_eq!(
            entries,
            vec![
                RecordEntry::Tombstone(Key(100)),
                RecordEntry::Value(Key(1), b"alpha".to_vec().into_boxed_slice()),
                RecordEntry::Value(Key(2), Vec::new().into_boxed_slice()),
            ]
        );
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let path = tmpdir().join("crash.calc");
        {
            let mut w = CheckpointWriter::create(
                &path,
                CheckpointKind::Full,
                1,
                CommitSeq(1),
                unlimited(),
            )
            .unwrap();
            w.write_record(Key(1), b"half").unwrap();
            // Dropped without finish(): simulated crash mid-capture.
        }
        let err = CheckpointReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupted_body_fails_crc() {
        let path = tmpdir().join("corrupt.calc");
        let mut w =
            CheckpointWriter::create(&path, CheckpointKind::Full, 1, CommitSeq(1), unlimited())
                .unwrap();
        for k in 0..100u64 {
            w.write_record(Key(k), &k.to_le_bytes()).unwrap();
        }
        w.finish().unwrap();
        // Flip a byte in the middle of the body.
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let r = CheckpointReader::open(&path).unwrap();
        let err = r.read_all().unwrap_err();
        assert!(err.to_string().contains("CRC") || err.kind() == io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmpdir().join("trunc.calc");
        let mut w =
            CheckpointWriter::create(&path, CheckpointKind::Full, 1, CommitSeq(1), unlimited())
                .unwrap();
        w.write_record(Key(1), &[0u8; 100]).unwrap();
        w.finish().unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 30]).unwrap();
        assert!(CheckpointReader::open(&path).is_err());
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let path = tmpdir().join("empty.calc");
        let w = CheckpointWriter::create(
            &path,
            CheckpointKind::Partial,
            3,
            CommitSeq(9),
            unlimited(),
        )
        .unwrap();
        w.finish().unwrap();
        let entries = CheckpointReader::open(&path).unwrap().read_all().unwrap();
        assert!(entries.is_empty());
    }

    /// Writes `n` records through `codec` and reads them back.
    fn codec_roundtrip(name: &str, codec: Codec, n: u64) {
        let path = tmpdir().join(format!("codec-{name}.calc"));
        let mut w = CheckpointWriter::create_with_vfs_codec(
            &OsVfs,
            &path,
            CheckpointKind::Partial,
            9,
            CommitSeq(99),
            unlimited(),
            codec,
        )
        .unwrap();
        w.write_tombstone(Key(u64::MAX)).unwrap();
        for k in 0..n {
            let v = vec![(k % 7) as u8; (k as usize % 400) + 1];
            w.write_record(Key(k), &v).unwrap();
        }
        let summary = w.finish().unwrap();
        assert_eq!(summary.records, n + 1);
        if codec == Codec::None {
            assert_eq!(summary.raw_bytes, summary.bytes);
        }

        let r = CheckpointReader::open(&path).unwrap();
        assert_eq!(r.header().codec, codec);
        assert_eq!(r.header().records, n + 1);
        let entries = r.read_all().unwrap();
        assert_eq!(entries.len() as u64, n + 1);
        assert_eq!(entries[0], RecordEntry::Tombstone(Key(u64::MAX)));
        for (k, e) in (0..n).zip(&entries[1..]) {
            let expect = vec![(k % 7) as u8; (k as usize % 400) + 1];
            assert_eq!(*e, RecordEntry::Value(Key(k), expect.into_boxed_slice()));
        }
    }

    #[test]
    fn compressed_roundtrip_small_and_multiblock() {
        // 2_000 records × ~200 B average ≫ BLOCK_TARGET: multiple frames.
        codec_roundtrip("rle-small", Codec::Rle, 5);
        codec_roundtrip("rle-multiblock", Codec::Rle, 2_000);
        codec_roundtrip("none-control", Codec::None, 50);
    }

    #[test]
    fn compressed_file_shrinks_repetitive_payloads() {
        let path = tmpdir().join("shrink.calc");
        let mut w = CheckpointWriter::create_with_vfs_codec(
            &OsVfs,
            &path,
            CheckpointKind::Full,
            1,
            CommitSeq(1),
            unlimited(),
            Codec::Rle,
        )
        .unwrap();
        for k in 0..1000u64 {
            w.write_record(Key(k), &[0u8; 64]).unwrap();
        }
        let s = w.finish().unwrap();
        assert!(
            s.bytes * 4 < s.raw_bytes,
            "zero payloads compressed poorly: {} vs {} raw",
            s.bytes,
            s.raw_bytes
        );
        assert_eq!(std::fs::metadata(&path).unwrap().len(), s.bytes);
    }

    #[test]
    fn codec_none_stays_byte_identical_v1() {
        let a = tmpdir().join("v1-legacy.calc");
        let b = tmpdir().join("v1-explicit.calc");
        for path in [&a, &b] {
            let mut w = if path == &a {
                CheckpointWriter::create(path, CheckpointKind::Full, 4, CommitSeq(8), unlimited())
                    .unwrap()
            } else {
                CheckpointWriter::create_with_vfs_codec(
                    &OsVfs,
                    path,
                    CheckpointKind::Full,
                    4,
                    CommitSeq(8),
                    unlimited(),
                    Codec::None,
                )
                .unwrap()
            };
            w.write_record(Key(1), b"value").unwrap();
            w.finish().unwrap();
        }
        let bytes_a = std::fs::read(&a).unwrap();
        assert_eq!(bytes_a, std::fs::read(&b).unwrap());
        assert_eq!(
            u32::from_le_bytes(bytes_a[8..12].try_into().unwrap()),
            VERSION,
            "codec none must keep writing version-1 files"
        );
    }

    #[test]
    fn corrupt_compressed_block_fails_closed() {
        let path = tmpdir().join("corrupt-block.calc");
        let mut w = CheckpointWriter::create_with_vfs_codec(
            &OsVfs,
            &path,
            CheckpointKind::Full,
            1,
            CommitSeq(1),
            unlimited(),
            Codec::Rle,
        )
        .unwrap();
        for k in 0..5000u64 {
            w.write_record(Key(k), &k.to_le_bytes()).unwrap();
        }
        w.finish().unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        // Footer survives, so open succeeds; decoding must fail at the
        // corrupted frame (per-frame CRC), not decode garbage.
        let r = CheckpointReader::open(&path).unwrap();
        let err = r.read_all().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_compressed_file_is_rejected() {
        let path = tmpdir().join("trunc-v2.calc");
        let mut w = CheckpointWriter::create_with_vfs_codec(
            &OsVfs,
            &path,
            CheckpointKind::Full,
            1,
            CommitSeq(1),
            unlimited(),
            Codec::Rle,
        )
        .unwrap();
        w.write_record(Key(1), &[9u8; 500]).unwrap();
        w.finish().unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 25]).unwrap();
        assert!(CheckpointReader::open(&path).is_err());
    }

    #[test]
    fn empty_compressed_checkpoint_roundtrips() {
        let path = tmpdir().join("empty-v2.calc");
        let w = CheckpointWriter::create_with_vfs_codec(
            &OsVfs,
            &path,
            CheckpointKind::Partial,
            3,
            CommitSeq(9),
            unlimited(),
            Codec::Rle,
        )
        .unwrap();
        w.finish().unwrap();
        let r = CheckpointReader::open(&path).unwrap();
        assert_eq!(r.header().codec, Codec::Rle);
        assert!(r.read_all().unwrap().is_empty());
    }

    #[test]
    fn large_values_roundtrip() {
        let path = tmpdir().join("large.calc");
        let mut w =
            CheckpointWriter::create(&path, CheckpointKind::Full, 1, CommitSeq(1), unlimited())
                .unwrap();
        let big = vec![0xAB; 1 << 20];
        w.write_record(Key(1), &big).unwrap();
        w.finish().unwrap();
        let entries = CheckpointReader::open(&path).unwrap().read_all().unwrap();
        match &entries[0] {
            RecordEntry::Value(k, v) => {
                assert_eq!(*k, Key(1));
                assert_eq!(v.len(), 1 << 20);
            }
            _ => panic!("expected value"),
        }
    }
}
