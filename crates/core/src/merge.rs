//! Background collapsing of partial checkpoints (§2.3.1, §3.2).
//!
//! "The collapsing process itself is a simple merge of two or more recent
//! partial checkpoints, where the latest version is always used if a
//! record appears in multiple partial checkpoints. Old checkpoints are
//! discarded only once they have been collapsed. Thus a system failure
//! during the collapsing process ... has no effect on durability."
//!
//! We implement the variant the paper settles on (§3.2): rather than
//! occasionally taking expensive full checkpoints, the merger collapses
//! *the most recent full checkpoint plus all newer partials* into a new
//! full checkpoint — a process that runs entirely asynchronously in a
//! low-priority background thread. The engine triggers it after every
//! `merge_batch` partial checkpoints (the 4/8/16 knob of Figure 4).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use calc_common::types::{Key, Value};
use calc_common::vfs::{OsVfs, Vfs};

use crate::file::{CheckpointKind, CheckpointReader, RecordEntry};
use crate::manifest::{CheckpointDir, CheckpointMeta};
use crate::partition::{capture_parts, ShardPartition};

/// Outcome of one collapse run.
#[derive(Clone, Debug)]
pub struct MergeStats {
    /// Files merged (1 full + N partials).
    pub inputs: usize,
    /// Id of the new full checkpoint (== last partial's id).
    pub new_full_id: u64,
    /// Records in the new full checkpoint.
    pub records: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Old files deleted after publication.
    pub removed: usize,
    /// Wall-clock time.
    pub duration: Duration,
}

/// Applies one checkpoint entry to an in-memory state map (last event
/// wins; tombstones delete).
pub fn apply_entry(state: &mut BTreeMap<Key, Value>, entry: RecordEntry) {
    match entry {
        RecordEntry::Value(k, v) => {
            state.insert(k, v);
        }
        RecordEntry::Tombstone(k) => {
            state.remove(&k);
        }
    }
}

/// Streams a full checkpoint plus ordered partials into a single state
/// map. Shared by the background merger and crash recovery.
pub fn materialize_chain(
    full: &CheckpointMeta,
    partials: &[CheckpointMeta],
) -> io::Result<BTreeMap<Key, Value>> {
    materialize_chain_with_vfs(&OsVfs, full, partials)
}

/// [`materialize_chain`] reading through an arbitrary [`Vfs`].
pub fn materialize_chain_with_vfs(
    vfs: &dyn Vfs,
    full: &CheckpointMeta,
    partials: &[CheckpointMeta],
) -> io::Result<BTreeMap<Key, Value>> {
    let mut state = BTreeMap::new();
    for entry in full.read_all_with_vfs(vfs)? {
        apply_entry(&mut state, entry);
    }
    for p in partials {
        for entry in p.read_all_with_vfs(vfs)? {
            apply_entry(&mut state, entry);
        }
    }
    Ok(state)
}

/// Reads one checkpoint file and buckets its entries by key hash,
/// preserving in-file order within each bucket.
fn bucket_file(vfs: &dyn Vfs, path: &Path, shards: usize) -> io::Result<Vec<Vec<RecordEntry>>> {
    let mut out = vec![Vec::new(); shards];
    for entry in CheckpointReader::open_with_vfs(vfs, path)?.read_all()? {
        out[(entry.key().0 as usize) % shards].push(entry);
    }
    Ok(out)
}

/// Wall-clock split of a sharded materialization, surfaced through
/// recovery's progress stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaterializeTiming {
    /// Phase A: reading part files and bucketing entries by key hash.
    pub read: Duration,
    /// Phase B: per-shard last-event-wins merge.
    pub merge: Duration,
}

/// One file's entries bucketed by key-hash shard, parked in a slot until
/// phase B merges it in chain order.
type BucketSlot = Mutex<Option<io::Result<Vec<Vec<RecordEntry>>>>>;

/// Shard-parallel [`materialize_chain`]: loads every part of the chain in
/// parallel and merges per key-hash shard, returning `threads` sub-maps
/// whose disjoint union is the chain's state (shard `r` holds exactly the
/// keys with `key % threads == r`), plus the per-phase timing.
///
/// Part-index stripes are **not** stable across checkpoints (the store
/// grows, dirty sets differ), so merging part `k` of one file into part
/// `k` of the next would be wrong. Instead phase A reads files in
/// parallel, bucketing entries by key hash while preserving in-file
/// order; phase B merges each shard's buckets in chain order (full first,
/// then partials ascending, parts in index order within a file set) with
/// last-event-wins semantics — the same order the serial path applies.
pub fn materialize_chain_sharded_with_vfs(
    vfs: &dyn Vfs,
    full: &CheckpointMeta,
    partials: &[CheckpointMeta],
    threads: usize,
) -> io::Result<(Vec<BTreeMap<Key, Value>>, MaterializeTiming)> {
    let shards = threads.max(1);
    let mut paths: Vec<&Path> = full.parts.iter().map(|p| p.path.as_path()).collect();
    for p in partials {
        paths.extend(p.parts.iter().map(|q| q.path.as_path()));
    }
    let mut timing = MaterializeTiming::default();
    let read_start = Instant::now();

    // Phase A: parallel per-file read + hash bucketing.
    let buckets: Vec<Vec<Vec<RecordEntry>>> = if shards == 1 || paths.len() <= 1 {
        let mut out = Vec::with_capacity(paths.len());
        for path in &paths {
            out.push(bucket_file(vfs, path, shards)?);
        }
        out
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<BucketSlot> = paths.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..shards.min(paths.len()) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(path) = paths.get(i) else { break };
                    let r = bucket_file(vfs, path, shards);
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
        });
        let mut out = Vec::with_capacity(paths.len());
        for slot in slots {
            out.push(slot.into_inner().unwrap().expect("worker filled slot")?);
        }
        out
    };

    timing.read = read_start.elapsed();
    let merge_start = Instant::now();

    // Transpose to per-shard bucket lists, keeping chain order.
    let mut per_shard: Vec<Vec<Vec<RecordEntry>>> =
        (0..shards).map(|_| Vec::with_capacity(buckets.len())).collect();
    for file_buckets in buckets {
        for (r, b) in file_buckets.into_iter().enumerate() {
            per_shard[r].push(b);
        }
    }

    // Phase B: per-shard last-event-wins merge, one thread per shard.
    let merge_shard = |chunks: Vec<Vec<RecordEntry>>| -> BTreeMap<Key, Value> {
        let mut m = BTreeMap::new();
        for chunk in chunks {
            for entry in chunk {
                apply_entry(&mut m, entry);
            }
        }
        m
    };
    let maps = if shards == 1 {
        let only = per_shard.pop().expect("one shard");
        vec![merge_shard(only)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .map(|chunks| s.spawn(move || merge_shard(chunks)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("merge thread panicked"))
                .collect::<Vec<_>>()
        })
    };
    timing.merge = merge_start.elapsed();
    Ok((maps, timing))
}

/// Collapses the newest full checkpoint with all newer partials into a new
/// full checkpoint, then garbage-collects the inputs. Returns `None` if
/// there is nothing to collapse (no full checkpoint, or no newer
/// partials).
pub fn collapse(dir: &CheckpointDir) -> io::Result<Option<MergeStats>> {
    let start = Instant::now();
    let Some((full, partials)) = dir.recovery_chain()? else {
        return Ok(None);
    };
    if partials.is_empty() {
        return Ok(None);
    }
    let state = materialize_chain_with_vfs(dir.vfs().as_ref(), &full, &partials)?;
    let last = partials.last().expect("nonempty");
    let entries: Vec<(&Key, &Value)> = state.iter().collect();
    let threads = dir.checkpoint_threads();
    let split = ShardPartition::over(entries.len(), threads);
    let summary = capture_parts(
        dir,
        CheckpointKind::Full,
        last.id,
        last.watermark,
        &[],
        threads,
        |k, w, _cancel| {
            for &(key, value) in &entries[split.range(k)] {
                w.write_record(*key, value)?;
            }
            Ok(())
        },
    )?;
    let new_path = dir
        .path()
        .join(CheckpointDir::manifest_file_name(last.id, CheckpointKind::Full));
    // Only now that the replacement is durable do the inputs go away.
    let removed = dir.gc_through(last.id, &new_path)?;
    Ok(Some(MergeStats {
        inputs: 1 + partials.len(),
        new_full_id: last.id,
        records: summary.records,
        bytes: summary.bytes,
        removed,
        duration: start.elapsed(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throttle::Throttle;
    use calc_common::types::CommitSeq;
    use std::sync::Arc;

    fn dir(name: &str) -> CheckpointDir {
        let d = std::env::temp_dir().join(format!(
            "calc-merge-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
    }

    fn write_full(d: &CheckpointDir, id: u64, recs: &[(u64, &[u8])]) {
        let mut p = d.begin(CheckpointKind::Full, id, CommitSeq(id * 10)).unwrap();
        for (k, v) in recs {
            p.writer().write_record(Key(*k), v).unwrap();
        }
        p.publish().unwrap();
    }

    fn write_partial(d: &CheckpointDir, id: u64, recs: &[(u64, Option<&[u8]>)]) {
        let mut p = d
            .begin(CheckpointKind::Partial, id, CommitSeq(id * 10))
            .unwrap();
        // Tombstones first, as the capture thread does.
        for (k, v) in recs {
            if v.is_none() {
                p.writer().write_tombstone(Key(*k)).unwrap();
            }
        }
        for (k, v) in recs {
            if let Some(v) = v {
                p.writer().write_record(Key(*k), v).unwrap();
            }
        }
        p.publish().unwrap();
    }

    #[test]
    fn collapse_merges_newest_wins_and_gcs() {
        let d = dir("basic");
        write_full(&d, 0, &[(1, b"a0"), (2, b"b0"), (3, b"c0")]);
        write_partial(&d, 1, &[(1, Some(b"a1"))]);
        write_partial(&d, 2, &[(1, Some(b"a2")), (3, None), (4, Some(b"d2"))]);
        let stats = collapse(&d).unwrap().unwrap();
        assert_eq!(stats.inputs, 3);
        assert_eq!(stats.new_full_id, 2);
        assert_eq!(stats.records, 3); // 1,2,4 (3 tombstoned)
        assert_eq!(stats.removed, 3);

        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].kind, CheckpointKind::Full);
        assert_eq!(metas[0].watermark, CommitSeq(20));
        let entries = metas[0].read_all().unwrap();
        let got: Vec<(u64, Vec<u8>)> = entries
            .into_iter()
            .map(|e| match e {
                RecordEntry::Value(k, v) => (k.0, v.to_vec()),
                _ => panic!("tombstone in full checkpoint"),
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (1, b"a2".to_vec()),
                (2, b"b0".to_vec()),
                (4, b"d2".to_vec())
            ]
        );
    }

    #[test]
    fn collapse_noop_without_partials() {
        let d = dir("noop");
        write_full(&d, 0, &[(1, b"a")]);
        assert!(collapse(&d).unwrap().is_none());
        assert!(collapse(&dir("empty")).unwrap().is_none());
    }

    #[test]
    fn tombstone_then_reinsert_in_same_partial() {
        let d = dir("reinsert");
        write_full(&d, 0, &[(1, b"old")]);
        // Record 1 deleted pre-point then re-inserted pre-point: the file
        // carries tombstone first, then the new value.
        write_partial(&d, 1, &[(1, None), (1, Some(b"new"))]);
        collapse(&d).unwrap().unwrap();
        let (full, _) = d.recovery_chain().unwrap().unwrap();
        let entries = full.read_all().unwrap();
        assert_eq!(
            entries,
            vec![RecordEntry::Value(Key(1), b"new".to_vec().into_boxed_slice())]
        );
    }

    #[test]
    fn repeated_collapse_is_incremental() {
        let d = dir("repeat");
        write_full(&d, 0, &[(1, b"v0")]);
        write_partial(&d, 1, &[(1, Some(b"v1"))]);
        collapse(&d).unwrap().unwrap();
        write_partial(&d, 2, &[(2, Some(b"w2"))]);
        write_partial(&d, 3, &[(1, Some(b"v3"))]);
        let stats = collapse(&d).unwrap().unwrap();
        assert_eq!(stats.new_full_id, 3);
        let state = {
            let (full, partials) = d.recovery_chain().unwrap().unwrap();
            materialize_chain(&full, &partials).unwrap()
        };
        assert_eq!(state.len(), 2);
        assert_eq!(&state[&Key(1)][..], b"v3");
        assert_eq!(&state[&Key(2)][..], b"w2");
    }

    #[test]
    fn sharded_materialization_matches_serial() {
        let d = dir("sharded");
        d.set_checkpoint_threads(3);
        write_full(&d, 0, &[(1, b"a0"), (2, b"b0"), (3, b"c0"), (64, b"z0")]);
        write_partial(&d, 1, &[(1, Some(b"a1")), (3, None)]);
        write_partial(&d, 2, &[(3, Some(b"c2")), (2, None), (65, Some(b"y2"))]);
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        let serial = materialize_chain(&full, &partials).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let (maps, _timing) =
                materialize_chain_sharded_with_vfs(&OsVfs, &full, &partials, threads).unwrap();
            assert_eq!(maps.len(), threads);
            // Shard r holds exactly the keys hashing to r, and the union
            // equals the serial result.
            let mut union = BTreeMap::new();
            for (r, m) in maps.into_iter().enumerate() {
                for (k, v) in m {
                    assert_eq!(k.0 as usize % threads, r, "key {k:?} in wrong shard");
                    assert!(union.insert(k, v).is_none(), "key {k:?} in two shards");
                }
            }
            assert_eq!(union, serial, "threads={threads}");
        }
    }

    #[test]
    fn collapse_of_multipart_inputs_writes_multipart_full() {
        let d = dir("collapse-parts");
        d.set_checkpoint_threads(4);
        write_full(&d, 0, &[(1, b"a0"), (2, b"b0")]);
        write_partial(&d, 1, &[(1, Some(b"a1")), (3, Some(b"c1"))]);
        let stats = collapse(&d).unwrap().unwrap();
        assert_eq!(stats.new_full_id, 1);
        assert_eq!(stats.records, 3);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].parts.len(), 4, "collapse honours checkpoint_threads");
        let state = materialize_chain(&metas[0], &[]).unwrap();
        assert_eq!(&state[&Key(1)][..], b"a1");
        assert_eq!(&state[&Key(2)][..], b"b0");
        assert_eq!(&state[&Key(3)][..], b"c1");
    }

    #[test]
    fn crash_before_gc_leaves_recoverable_state() {
        // Simulate: merge wrote the new full but "crashed" before GC —
        // both old and new files present. Recovery must still pick the
        // newest full and end with identical state.
        let d = dir("crashgc");
        write_full(&d, 0, &[(1, b"a"), (2, b"b")]);
        write_partial(&d, 1, &[(2, Some(b"b1"))]);
        // Manual "merge without gc":
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        let state = materialize_chain(&full, &partials).unwrap();
        let mut p = d.begin(CheckpointKind::Full, 1, CommitSeq(10)).unwrap();
        for (k, v) in &state {
            p.writer().write_record(*k, v).unwrap();
        }
        p.publish().unwrap();
        // All four files exist; recovery chain = full@1, no partials after.
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 1);
        assert!(partials.is_empty());
        let recovered = materialize_chain(&full, &partials).unwrap();
        assert_eq!(recovered, state);
    }
}
