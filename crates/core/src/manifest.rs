//! Checkpoint directory management.
//!
//! Checkpoints live in one directory, named `ckpt-{id:010}-{full|part}.calc`.
//! A checkpoint is *published* by writing to a dotted temp name and
//! renaming — atomic on POSIX — so a crash at any instant leaves either no
//! file or a complete one (and [`crate::file::CheckpointReader`] catches
//! the rare torn-write case via the footer + CRC).
//!
//! Validity is determined by scanning, not by a separate manifest file:
//! every `.calc` file whose header, footer, and body CRC validate is live. Garbage
//! collection (after the merger collapses partials, §2.3.1) deletes files
//! only once their replacement is durably published — "old checkpoints are
//! discarded only once they have been collapsed."

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use calc_common::types::CommitSeq;
use calc_common::vfs::{OsVfs, Vfs};

use crate::file::{CheckpointKind, CheckpointReader, CheckpointWriter};
use crate::throttle::Throttle;

/// Metadata of one published, validated checkpoint file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Checkpoint interval id.
    pub id: u64,
    /// Full or partial.
    pub kind: CheckpointKind,
    /// Virtual-point-of-consistency watermark.
    pub watermark: CommitSeq,
    /// Records + tombstones in the file.
    pub records: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Path on disk.
    pub path: PathBuf,
}

/// A managed checkpoint directory.
pub struct CheckpointDir {
    dir: PathBuf,
    throttle: Arc<Throttle>,
    vfs: Arc<dyn Vfs>,
    /// Files [`CheckpointDir::scan`] found invalid and renamed to
    /// `*.quarantine`.
    quarantined: AtomicU64,
}

/// An in-flight checkpoint: a [`CheckpointWriter`] plus the publication
/// rename.
pub struct PendingCheckpoint {
    writer: CheckpointWriter,
    final_path: PathBuf,
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl PendingCheckpoint {
    /// The underlying record writer.
    pub fn writer(&mut self) -> &mut CheckpointWriter {
        &mut self.writer
    }

    /// Seals and atomically publishes the checkpoint. Returns
    /// `(records, bytes)`.
    ///
    /// Publication is a three-step durability chain: `finish()` fsyncs
    /// the file's bytes, the rename makes the final name visible, and
    /// the parent-directory fsync makes the rename itself durable. A
    /// rename without the directory fsync can be lost wholesale on power
    /// failure, un-publishing a checkpoint the engine already reported
    /// durable (and may already have GC'd predecessors of).
    pub fn publish(self) -> io::Result<(u64, u64)> {
        let tmp = self.writer.path().to_path_buf();
        let stats = self.writer.finish()?;
        self.vfs.rename(&tmp, &self.final_path)?;
        self.vfs.sync_dir(&self.dir)?;
        Ok(stats)
    }

    /// Abandons the checkpoint, removing the temp file.
    pub fn abandon(self) {
        let tmp = self.writer.path().to_path_buf();
        drop(self.writer);
        let _ = self.vfs.remove_file(&tmp);
    }
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory on the real
    /// filesystem.
    pub fn open(dir: &Path, throttle: Arc<Throttle>) -> io::Result<Self> {
        Self::open_with_vfs(dir, throttle, Arc::new(OsVfs))
    }

    /// Opens (creating if needed) a checkpoint directory through an
    /// arbitrary [`Vfs`].
    pub fn open_with_vfs(
        dir: &Path,
        throttle: Arc<Throttle>,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<Self> {
        vfs.create_dir_all(dir)?;
        Ok(CheckpointDir {
            dir: dir.to_path_buf(),
            throttle,
            vfs,
            quarantined: AtomicU64::new(0),
        })
    }

    /// Number of invalid checkpoint files this handle's scans have
    /// quarantined (renamed to `*.quarantine`).
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Moves an invalid checkpoint file out of the scan namespace by
    /// renaming it to `<name>.quarantine`, preserving the bytes for
    /// post-mortem inspection. Rename failure (e.g. read-only disk during
    /// recovery) degrades to skipping the file, exactly the old behaviour.
    fn quarantine(&self, path: &Path) {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            return;
        };
        let dest = self.dir.join(format!("{name}.quarantine"));
        let _ = self.vfs.rename(path, &dest);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// The filesystem this directory lives on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The shared disk throttle.
    pub fn throttle(&self) -> &Arc<Throttle> {
        &self.throttle
    }

    fn file_name(id: u64, kind: CheckpointKind) -> String {
        format!("ckpt-{id:010}-{kind}.calc")
    }

    /// Starts a new checkpoint of the given identity. The returned handle
    /// writes to a temp file; nothing is visible until
    /// [`PendingCheckpoint::publish`].
    pub fn begin(
        &self,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
    ) -> io::Result<PendingCheckpoint> {
        let final_path = self.dir.join(Self::file_name(id, kind));
        let tmp_path = self.dir.join(format!(".tmp-{}", Self::file_name(id, kind)));
        let writer = CheckpointWriter::create_with_vfs(
            self.vfs.as_ref(),
            &tmp_path,
            kind,
            id,
            watermark,
            self.throttle.clone(),
        )?;
        Ok(PendingCheckpoint {
            writer,
            final_path,
            dir: self.dir.clone(),
            vfs: self.vfs.clone(),
        })
    }

    /// Scans the directory for valid published checkpoints, ascending by
    /// `(id, kind)` with Full ordered before Partial at equal id (a merged
    /// full supersedes the same-id partial).
    pub fn scan(&self) -> io::Result<Vec<CheckpointMeta>> {
        let mut out = Vec::new();
        for path in self.vfs.read_dir(&self.dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if !name.starts_with("ckpt-") || !name.ends_with(".calc") {
                continue;
            }
            let reader = match CheckpointReader::open_with_vfs(self.vfs.as_ref(), &path) {
                Ok(r) => r,
                Err(_) => {
                    // Crashed mid-capture: quarantine rather than silently
                    // skipping, so the corruption is visible in metrics and
                    // never rescanned.
                    self.quarantine(&path);
                    continue;
                }
            };
            // Footer magic alone is not proof of integrity: a bit flip or
            // torn write in the body leaves the footer intact, so validate
            // the full CRC before treating the file as live.
            let h = match reader.verify() {
                Ok(h) => h,
                Err(_) => {
                    // Corrupt body.
                    self.quarantine(&path);
                    continue;
                }
            };
            out.push(CheckpointMeta {
                id: h.id,
                kind: h.kind,
                watermark: h.watermark,
                records: h.records,
                bytes: self.vfs.len(&path)?,
                path,
            });
        }
        out.sort_by_key(|m| (m.id, matches!(m.kind, CheckpointKind::Partial)));
        Ok(out)
    }

    /// The recovery chain: the newest valid full checkpoint plus every
    /// valid partial with a larger id, ascending. `None` if no full
    /// checkpoint exists.
    pub fn recovery_chain(&self) -> io::Result<Option<(CheckpointMeta, Vec<CheckpointMeta>)>> {
        let all = self.scan()?;
        let Some(full) = all
            .iter()
            .filter(|m| m.kind == CheckpointKind::Full)
            .max_by_key(|m| m.id)
            .cloned()
        else {
            return Ok(None);
        };
        let partials = all
            .into_iter()
            .filter(|m| m.kind == CheckpointKind::Partial && m.id > full.id)
            .collect();
        Ok(Some((full, partials)))
    }

    /// Deletes checkpoint files that are superseded: everything with
    /// `id <= through_id` except the given replacement path.
    pub fn gc_through(&self, through_id: u64, keep: &Path) -> io::Result<usize> {
        let mut removed = 0;
        for meta in self.scan()? {
            if meta.id <= through_id && meta.path != keep {
                self.vfs.remove_file(&meta.path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            // Make the unlinks durable before reporting GC complete, so a
            // later crash cannot resurrect a superseded checkpoint that
            // recovery would then prefer over the replacement.
            self.vfs.sync_dir(&self.dir)?;
        }
        Ok(removed)
    }
}

impl std::fmt::Debug for CheckpointDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CheckpointDir({})", self.dir.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_common::types::Key;

    fn dir(name: &str) -> CheckpointDir {
        let d = std::env::temp_dir().join(format!(
            "calc-manifest-{}-{}-{name}",
            std::process::id(),
            rand_suffix()
        ));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
    }

    fn rand_suffix() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as u64
    }

    fn publish(d: &CheckpointDir, kind: CheckpointKind, id: u64, n: u64) {
        let mut p = d.begin(kind, id, CommitSeq(id * 100)).unwrap();
        for k in 0..n {
            p.writer().write_record(Key(k), b"v").unwrap();
        }
        p.publish().unwrap();
    }

    #[test]
    fn publish_then_scan() {
        let d = dir("scan");
        publish(&d, CheckpointKind::Full, 1, 5);
        publish(&d, CheckpointKind::Partial, 2, 2);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].id, 1);
        assert_eq!(metas[0].kind, CheckpointKind::Full);
        assert_eq!(metas[0].records, 5);
        assert_eq!(metas[1].id, 2);
        assert_eq!(metas[1].watermark, CommitSeq(200));
    }

    #[test]
    fn abandoned_and_unpublished_files_invisible() {
        let d = dir("abandon");
        let p = d.begin(CheckpointKind::Full, 1, CommitSeq(1)).unwrap();
        p.abandon();
        // In-flight (not yet published) writer: temp file exists but scan
        // ignores it.
        let mut p2 = d.begin(CheckpointKind::Full, 2, CommitSeq(2)).unwrap();
        p2.writer().write_record(Key(1), b"x").unwrap();
        assert!(d.scan().unwrap().is_empty());
        p2.publish().unwrap();
        assert_eq!(d.scan().unwrap().len(), 1);
    }

    #[test]
    fn crashed_file_is_skipped() {
        let d = dir("crash");
        publish(&d, CheckpointKind::Full, 1, 1);
        // Simulate a crash: a published-looking name with no footer.
        std::fs::write(d.path().join("ckpt-0000000002-full.calc"), b"CALCCKPTgarbage")
            .unwrap();
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].id, 1);
    }

    #[test]
    fn corrupt_file_is_quarantined_and_counted() {
        let d = dir("quarantine");
        publish(&d, CheckpointKind::Full, 1, 1);
        let bad = d.path().join("ckpt-0000000002-full.calc");
        std::fs::write(&bad, b"CALCCKPTgarbage").unwrap();
        assert_eq!(d.quarantined_count(), 0);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(d.quarantined_count(), 1);
        // The file moved out of the scan namespace: bytes preserved under
        // *.quarantine, original name gone, and a re-scan finds nothing new.
        assert!(!bad.exists());
        assert!(d
            .path()
            .join("ckpt-0000000002-full.calc.quarantine")
            .exists());
        assert_eq!(d.scan().unwrap().len(), 1);
        assert_eq!(d.quarantined_count(), 1);
    }

    #[test]
    fn recovery_chain_picks_latest_full_and_newer_partials() {
        let d = dir("chain");
        publish(&d, CheckpointKind::Full, 0, 3);
        publish(&d, CheckpointKind::Partial, 1, 1);
        publish(&d, CheckpointKind::Partial, 2, 1);
        publish(&d, CheckpointKind::Full, 2, 4); // merged full at id 2
        publish(&d, CheckpointKind::Partial, 3, 1);
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 2);
        assert_eq!(full.kind, CheckpointKind::Full);
        let ids: Vec<u64> = partials.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn recovery_chain_none_without_full() {
        let d = dir("nofull");
        publish(&d, CheckpointKind::Partial, 1, 1);
        assert!(d.recovery_chain().unwrap().is_none());
    }

    #[test]
    fn gc_removes_superseded_files() {
        let d = dir("gc");
        publish(&d, CheckpointKind::Full, 0, 1);
        publish(&d, CheckpointKind::Partial, 1, 1);
        publish(&d, CheckpointKind::Partial, 2, 1);
        publish(&d, CheckpointKind::Full, 2, 2); // replacement
        let keep = d.path().join("ckpt-0000000002-full.calc");
        let removed = d.gc_through(2, &keep).unwrap();
        assert_eq!(removed, 3);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].path, keep);
    }
}
