//! Checkpoint directory management.
//!
//! A checkpoint is either:
//!
//! * **multi-part** (the native format): `N` part files named
//!   `ckpt-{id:010}-{kind}.part-{k}`, each a self-contained record file
//!   with its own header/footer/CRC, plus a manifest
//!   `ckpt-{id:010}-{kind}.manifest` recording the part count and each
//!   part's record count, byte size, and CRC digest. Parts are written
//!   directly at their final names but are *invisible* until the manifest
//!   is published (written to a dotted temp name, fsynced, renamed —
//!   atomic on POSIX — and made durable with a parent-directory fsync).
//!   The manifest rename is the commit point of the whole cycle.
//! * **legacy single-file**: `ckpt-{id:010}-{kind}.calc`, one record file
//!   published by temp-write + rename. Still readable (and still written
//!   by a few callers), so old directories recover unchanged.
//!
//! Validity is determined by scanning: a manifest whose own CRC holds and
//! whose every part exists, validates, and matches its recorded digest is
//! live; anything less quarantines the *whole cycle* (manifest and all
//! surviving parts renamed to `*.quarantine`) so recovery falls back to
//! the previous checkpoint instead of loading half a snapshot. Part files
//! with no manifest are uncommitted debris from an aborted cycle: scans
//! ignore them and garbage collection removes them. GC (after the merger
//! collapses partials, §2.3.1) deletes checkpoints only once their
//! replacement is durably published — "old checkpoints are discarded only
//! once they have been collapsed."

use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use calc_common::crc::crc32;
use calc_common::load::{LoadLevel, LoadSignal};
use calc_common::types::CommitSeq;
use calc_common::vfs::{OsVfs, Vfs};

use crate::codec::Codec;
use crate::file::{CheckpointKind, CheckpointReader, CheckpointWriter, RecordEntry};
use crate::throttle::Throttle;

const MANIFEST_MAGIC: &[u8; 8] = b"CALCMFST";
const MANIFEST_VERSION: u32 = 1;
/// Manifest version carrying a codec byte and per-part raw (uncompressed)
/// byte counts. Written only when the cycle's codec is not `none`, so
/// uncompressed directories stay byte-identical to version 1.
const MANIFEST_VERSION_CODEC: u32 = 2;
/// magic + version + kind + id + watermark + parent + part count +
/// trailing crc.
const MANIFEST_FIXED_LEN: usize = 8 + 4 + 1 + 8 + 8 + 8 + 4 + 4;
/// Version-2 fixed section: version 1's plus the codec byte.
const MANIFEST_FIXED_LEN_V2: usize = MANIFEST_FIXED_LEN + 1;
/// records + bytes + crc per part.
const MANIFEST_PART_LEN: usize = 8 + 8 + 4;
/// Version-2 part entry: records + bytes + raw_bytes + crc.
const MANIFEST_PART_LEN_V2: usize = 8 + 8 + 8 + 4;
/// Encoded `parent` when the checkpoint had no published predecessor.
const MANIFEST_NO_PARENT: u64 = u64::MAX;

/// One part file of a published checkpoint (a legacy single-file
/// checkpoint is represented as one part).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartMeta {
    /// Path of the part file.
    pub path: PathBuf,
    /// Records + tombstones in this part.
    pub records: u64,
    /// Part file size in bytes.
    pub bytes: u64,
}

/// The id/watermark a cycle *claims* on disk, whether or not its data
/// validates — see [`CheckpointDir::claims`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointClaim {
    /// Checkpoint cycle id.
    pub id: u64,
    /// Full or partial.
    pub kind: CheckpointKind,
    /// Claimed commit watermark (0 when unreadable).
    pub watermark: CommitSeq,
}

/// Metadata of one published, validated checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Checkpoint interval id.
    pub id: u64,
    /// Full or partial.
    pub kind: CheckpointKind,
    /// Virtual-point-of-consistency watermark.
    pub watermark: CommitSeq,
    /// Records + tombstones across all parts.
    pub records: u64,
    /// Data bytes across all parts.
    pub bytes: u64,
    /// Id of the checkpoint that was newest-published when this one was
    /// captured — the coverage baseline a partial's dirty window starts
    /// at. `None` for legacy files (format predates the field) and for
    /// checkpoints captured into an empty directory. Recovery uses it to
    /// detect holes in the partial chain: a partial whose parent is
    /// missing from the surviving chain must not be applied.
    pub parent: Option<u64>,
    /// The manifest path (multi-part) or the data file path (legacy).
    pub path: PathBuf,
    /// Block codec the parts were written with ([`Codec::None`] for
    /// version-1 manifests and legacy files).
    pub codec: Codec,
    /// Uncompressed record-stream bytes across all parts. Equals `bytes`
    /// when `codec` is `none`; `raw_bytes as f64 / bytes as f64` is the
    /// cycle's compression ratio.
    pub raw_bytes: u64,
    /// The data files, in part order. Recovery must apply them in this
    /// order: tombstones are written to part 0 ahead of every value.
    pub parts: Vec<PartMeta>,
}

impl CheckpointMeta {
    /// Reads every record across all parts, in part order.
    pub fn read_all_with_vfs(&self, vfs: &dyn Vfs) -> io::Result<Vec<RecordEntry>> {
        let mut out = Vec::with_capacity(self.records as usize);
        for part in &self.parts {
            out.extend(CheckpointReader::open_with_vfs(vfs, &part.path)?.read_all()?);
        }
        Ok(out)
    }

    /// Reads every record across all parts on the real filesystem.
    pub fn read_all(&self) -> io::Result<Vec<RecordEntry>> {
        self.read_all_with_vfs(&OsVfs)
    }
}

/// What a publish produced: totals across every part of the cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishSummary {
    /// Records + tombstones across all parts.
    pub records: u64,
    /// Data bytes across all parts (manifest overhead excluded).
    pub bytes: u64,
    /// Uncompressed record-stream bytes across all parts (equals `bytes`
    /// under codec `none`).
    pub raw_bytes: u64,
    /// Number of part files published.
    pub parts: usize,
}

/// A managed checkpoint directory.
pub struct CheckpointDir {
    dir: PathBuf,
    throttle: Arc<Throttle>,
    vfs: Arc<dyn Vfs>,
    /// Files [`CheckpointDir::scan`] found invalid and renamed to
    /// `*.quarantine`.
    quarantined: AtomicU64,
    /// How many part files (and capture threads) new checkpoints use.
    threads: AtomicUsize,
    /// Block codec new checkpoints are written with (wire byte, see
    /// [`Codec::to_byte`]). Readers are self-describing, so changing the
    /// codec between cycles is always safe.
    codec: AtomicU8,
    /// Newest published checkpoint id, encoded as `id + 1` (`0` = none
    /// published yet) so [`AtomicU64::fetch_max`] keeps it monotone.
    /// Raised by every publish and by every scan; captured into each new
    /// cycle's manifest as its `parent`.
    last_published: Arc<AtomicU64>,
    /// Foreground load signal for adaptive capture pacing (set once at
    /// boot when pacing is on). When present, [`CheckpointDir::checkpoint_threads`]
    /// clamps effective parallelism under load and part writers yield
    /// scan quanta to foreground traffic.
    load: std::sync::OnceLock<Arc<LoadSignal>>,
}

/// An in-flight legacy single-file checkpoint: a [`CheckpointWriter`]
/// plus the publication rename.
pub struct PendingCheckpoint {
    writer: CheckpointWriter,
    final_path: PathBuf,
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    id: u64,
    last_published: Arc<AtomicU64>,
}

impl PendingCheckpoint {
    /// The underlying record writer.
    pub fn writer(&mut self) -> &mut CheckpointWriter {
        &mut self.writer
    }

    /// Seals and atomically publishes the checkpoint. Returns
    /// `(records, bytes)`.
    ///
    /// Publication is a three-step durability chain: `finish()` fsyncs
    /// the file's bytes, the rename makes the final name visible, and
    /// the parent-directory fsync makes the rename itself durable. A
    /// rename without the directory fsync can be lost wholesale on power
    /// failure, un-publishing a checkpoint the engine already reported
    /// durable (and may already have GC'd predecessors of).
    pub fn publish(self) -> io::Result<(u64, u64)> {
        let tmp = self.writer.path().to_path_buf();
        let summary = self.writer.finish()?;
        self.vfs.rename(&tmp, &self.final_path)?;
        self.vfs.sync_dir(&self.dir)?;
        self.last_published.fetch_max(self.id + 1, Ordering::Relaxed);
        Ok((summary.records, summary.bytes))
    }

    /// Abandons the checkpoint, removing the temp file.
    pub fn abandon(self) {
        let tmp = self.writer.path().to_path_buf();
        drop(self.writer);
        let _ = self.vfs.remove_file(&tmp);
    }
}

/// An in-flight multi-part checkpoint. The part writers are handed out
/// separately (one per capture thread); this handle owns the publication
/// step: finish every part, then write + rename the manifest as the
/// cycle's single atomic commit point.
pub struct PendingPartsCheckpoint {
    kind: CheckpointKind,
    id: u64,
    watermark: CommitSeq,
    parent: Option<u64>,
    codec: Codec,
    part_paths: Vec<PathBuf>,
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    last_published: Arc<AtomicU64>,
}

impl PendingPartsCheckpoint {
    /// Seals every part and atomically publishes the cycle.
    ///
    /// Each part is fsynced by its own `finish()`; the manifest is then
    /// written to a dotted temp name, fsynced, renamed, and the parent
    /// directory fsynced. Until the manifest rename is durable the part
    /// files are invisible to [`CheckpointDir::scan`], so a crash at any
    /// instant leaves either the complete cycle or no cycle at all.
    pub fn publish(self, writers: Vec<CheckpointWriter>) -> io::Result<PublishSummary> {
        match self.try_publish(writers) {
            Ok(s) => Ok(s),
            Err(e) => {
                // Nothing published: remove the debris (parts at final
                // names, possibly a temp manifest) so GC never has to.
                let manifest_name = CheckpointDir::manifest_file_name(self.id, self.kind);
                let _ = self.vfs.remove_file(&self.dir.join(format!(".tmp-{manifest_name}")));
                for p in &self.part_paths {
                    let _ = self.vfs.remove_file(p);
                }
                Err(e)
            }
        }
    }

    fn try_publish(&self, writers: Vec<CheckpointWriter>) -> io::Result<PublishSummary> {
        debug_assert_eq!(writers.len(), self.part_paths.len());
        let mut digests = Vec::with_capacity(writers.len());
        for w in writers {
            digests.push(w.finish()?);
        }
        let records = digests.iter().map(|d| d.records).sum();
        let bytes = digests.iter().map(|d| d.bytes).sum();
        let raw_bytes = digests.iter().map(|d| d.raw_bytes).sum();
        let parts = digests.len();

        let manifest_name = CheckpointDir::manifest_file_name(self.id, self.kind);
        let final_path = self.dir.join(&manifest_name);
        let tmp_path = self.dir.join(format!(".tmp-{manifest_name}"));
        // Codec `none` keeps writing version-1 manifests byte-identical to
        // every predecessor of this format; only compressed cycles need
        // the version-2 codec byte and per-part raw sizes.
        let compressed = self.codec != Codec::None;
        let mut body = Vec::with_capacity(MANIFEST_FIXED_LEN_V2 + parts * MANIFEST_PART_LEN_V2);
        body.extend_from_slice(MANIFEST_MAGIC);
        if compressed {
            body.extend_from_slice(&MANIFEST_VERSION_CODEC.to_le_bytes());
            body.push(self.codec.to_byte());
        } else {
            body.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        }
        body.push(self.kind.to_byte());
        body.extend_from_slice(&self.id.to_le_bytes());
        body.extend_from_slice(&self.watermark.0.to_le_bytes());
        body.extend_from_slice(&self.parent.unwrap_or(MANIFEST_NO_PARENT).to_le_bytes());
        body.extend_from_slice(&(parts as u32).to_le_bytes());
        for d in &digests {
            body.extend_from_slice(&d.records.to_le_bytes());
            body.extend_from_slice(&d.bytes.to_le_bytes());
            if compressed {
                body.extend_from_slice(&d.raw_bytes.to_le_bytes());
            }
            body.extend_from_slice(&d.crc.to_le_bytes());
        }
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());

        let mut f = self.vfs.create(&tmp_path)?;
        f.write_all(&body)?;
        f.sync()?;
        drop(f);
        self.vfs.rename(&tmp_path, &final_path)?;
        self.vfs.sync_dir(&self.dir)?;
        self.last_published.fetch_max(self.id + 1, Ordering::Relaxed);
        Ok(PublishSummary {
            records,
            bytes,
            raw_bytes,
            parts,
        })
    }

    /// Abandons the cycle: removes every part file already created. Safe
    /// because nothing was published — the manifest never existed, so the
    /// parts were never visible.
    pub fn abandon(self) {
        for p in &self.part_paths {
            let _ = self.vfs.remove_file(p);
        }
    }

    /// The final path the manifest will be published at.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir
            .join(CheckpointDir::manifest_file_name(self.id, self.kind))
    }
}

/// Which checkpoint namespace a directory entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NameClass {
    Legacy,
    Manifest,
    Part(u32),
}

/// Parses `ckpt-{id:010}-{kind}.{calc|manifest|part-k}`.
fn parse_ckpt_name(name: &str) -> Option<(u64, CheckpointKind, NameClass)> {
    let rest = name.strip_prefix("ckpt-")?;
    let (id_str, rest) = rest.split_at_checked(10)?;
    let id: u64 = id_str.parse().ok()?;
    let rest = rest.strip_prefix('-')?;
    let (kind, rest) = if let Some(r) = rest.strip_prefix("full") {
        (CheckpointKind::Full, r)
    } else if let Some(r) = rest.strip_prefix("part") {
        (CheckpointKind::Partial, r)
    } else {
        return None;
    };
    let class = if rest == ".calc" {
        NameClass::Legacy
    } else if rest == ".manifest" {
        NameClass::Manifest
    } else if let Some(k) = rest.strip_prefix(".part-") {
        NameClass::Part(k.parse().ok()?)
    } else {
        return None;
    };
    Some((id, kind, class))
}

/// One part's entry in a decoded manifest.
#[derive(Clone, Copy)]
struct ManifestPart {
    records: u64,
    bytes: u64,
    /// Uncompressed size; equals `bytes` in version-1 manifests.
    raw_bytes: u64,
    crc: u32,
}

/// A decoded manifest body.
struct ManifestDoc {
    kind: CheckpointKind,
    id: u64,
    watermark: CommitSeq,
    parent: Option<u64>,
    codec: Codec,
    parts: Vec<ManifestPart>,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn decode_manifest(bytes: &[u8]) -> io::Result<ManifestDoc> {
    if bytes.len() < MANIFEST_FIXED_LEN {
        return Err(invalid("manifest too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(body) != expected {
        return Err(invalid("manifest CRC mismatch"));
    }
    if &body[..8] != MANIFEST_MAGIC {
        return Err(invalid("bad manifest magic"));
    }
    let version = u32::from_le_bytes(body[8..12].try_into().unwrap());
    // Version 2 inserts one codec byte after the version and one raw-size
    // field per part entry; everything else is laid out identically.
    let (codec, fixed_len, part_len) = match version {
        MANIFEST_VERSION => (Codec::None, MANIFEST_FIXED_LEN, MANIFEST_PART_LEN),
        MANIFEST_VERSION_CODEC => {
            if body.len() + 4 < MANIFEST_FIXED_LEN_V2 {
                return Err(invalid("manifest too short"));
            }
            (
                Codec::from_byte(body[12])?,
                MANIFEST_FIXED_LEN_V2,
                MANIFEST_PART_LEN_V2,
            )
        }
        _ => return Err(invalid("unsupported manifest version")),
    };
    let at = if version == MANIFEST_VERSION { 12 } else { 13 };
    let kind = CheckpointKind::from_byte(body[at])?;
    let id = u64::from_le_bytes(body[at + 1..at + 9].try_into().unwrap());
    let watermark = CommitSeq(u64::from_le_bytes(body[at + 9..at + 17].try_into().unwrap()));
    let parent = match u64::from_le_bytes(body[at + 17..at + 25].try_into().unwrap()) {
        MANIFEST_NO_PARENT => None,
        p => Some(p),
    };
    let count = u32::from_le_bytes(body[at + 25..at + 29].try_into().unwrap()) as usize;
    if count == 0 || body.len() != fixed_len - 4 + count * part_len {
        return Err(invalid("manifest part table size mismatch"));
    }
    let table = at + 29;
    let mut parts = Vec::with_capacity(count);
    for k in 0..count {
        let at = table + k * part_len;
        let records = u64::from_le_bytes(body[at..at + 8].try_into().unwrap());
        let bytes = u64::from_le_bytes(body[at + 8..at + 16].try_into().unwrap());
        let (raw_bytes, crc_at) = if version == MANIFEST_VERSION {
            (bytes, at + 16)
        } else {
            (
                u64::from_le_bytes(body[at + 16..at + 24].try_into().unwrap()),
                at + 24,
            )
        };
        parts.push(ManifestPart {
            records,
            bytes,
            raw_bytes,
            crc: u32::from_le_bytes(body[crc_at..crc_at + 4].try_into().unwrap()),
        });
    }
    Ok(ManifestDoc {
        kind,
        id,
        watermark,
        parent,
        codec,
        parts,
    })
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory on the real
    /// filesystem.
    pub fn open(dir: &Path, throttle: Arc<Throttle>) -> io::Result<Self> {
        Self::open_with_vfs(dir, throttle, Arc::new(OsVfs))
    }

    /// Opens (creating if needed) a checkpoint directory through an
    /// arbitrary [`Vfs`].
    pub fn open_with_vfs(
        dir: &Path,
        throttle: Arc<Throttle>,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<Self> {
        vfs.create_dir_all(dir)?;
        Ok(CheckpointDir {
            dir: dir.to_path_buf(),
            throttle,
            vfs,
            quarantined: AtomicU64::new(0),
            threads: AtomicUsize::new(1),
            codec: AtomicU8::new(Codec::None.to_byte()),
            last_published: Arc::new(AtomicU64::new(0)),
            load: std::sync::OnceLock::new(),
        })
    }

    /// Attaches the foreground load signal (once, at boot): capture
    /// parallelism and per-part scan pacing become load-aware. Without a
    /// signal the directory behaves exactly as configured.
    pub fn set_load_signal(&self, signal: Arc<LoadSignal>) {
        let _ = self.load.set(signal);
    }

    /// The attached load signal, if adaptive pacing is on.
    pub fn load_signal(&self) -> Option<&Arc<LoadSignal>> {
        self.load.get()
    }

    /// Sets the block codec future checkpoints are written with. Existing
    /// checkpoints are untouched — files and manifests are
    /// self-describing, so mixed-codec directories recover fine.
    pub fn set_codec(&self, codec: Codec) {
        self.codec.store(codec.to_byte(), Ordering::Relaxed);
    }

    /// The block codec new checkpoints use.
    pub fn codec(&self) -> Codec {
        // The byte was stored from a Codec, so it always decodes.
        Codec::from_byte(self.codec.load(Ordering::Relaxed)).unwrap_or(Codec::None)
    }

    /// Id of the newest checkpoint this handle has published or seen in a
    /// scan. `None` until either happens.
    pub fn last_published(&self) -> Option<u64> {
        match self.last_published.load(Ordering::Relaxed) {
            0 => None,
            raw => Some(raw - 1),
        }
    }

    /// Sets how many part files (one capture thread each) new checkpoints
    /// are split into. Clamped to at least 1.
    pub fn set_checkpoint_threads(&self, threads: usize) {
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// The *effective* part count / capture thread pool size: the
    /// configured value, clamped down by the attached load signal so
    /// capture parallelism never competes with an overloaded foreground.
    /// Every strategy, the merger, and recovery replay size their pools
    /// through this one accessor, so load-aware clamping covers all of
    /// them:
    ///
    /// * [`LoadLevel::Overload`] → 1 thread (capture proceeds, serially);
    /// * [`LoadLevel::High`] → half the configured threads;
    /// * otherwise → the configured value.
    pub fn checkpoint_threads(&self) -> usize {
        let configured = self.configured_checkpoint_threads();
        match self.load.get().map(|s| s.level()) {
            Some(LoadLevel::Overload) => 1,
            Some(LoadLevel::High) => (configured / 2).max(1),
            _ => configured,
        }
    }

    /// The configured part count, before any load-aware clamping.
    pub fn configured_checkpoint_threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed).max(1)
    }

    /// Number of invalid checkpoint files this handle's scans have
    /// quarantined (renamed to `*.quarantine`).
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Moves an invalid checkpoint file out of the scan namespace by
    /// renaming it to `<name>.quarantine`, preserving the bytes for
    /// post-mortem inspection. Rename failure (e.g. read-only disk during
    /// recovery) degrades to skipping the file, exactly the old behaviour.
    fn quarantine(&self, path: &Path) {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            return;
        };
        let dest = self.dir.join(format!("{name}.quarantine"));
        let _ = self.vfs.rename(path, &dest);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// The filesystem this directory lives on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The shared disk throttle.
    pub fn throttle(&self) -> &Arc<Throttle> {
        &self.throttle
    }

    /// Legacy single-file checkpoint name.
    pub fn file_name(id: u64, kind: CheckpointKind) -> String {
        format!("ckpt-{id:010}-{kind}.calc")
    }

    /// Manifest name of a multi-part checkpoint.
    pub fn manifest_file_name(id: u64, kind: CheckpointKind) -> String {
        format!("ckpt-{id:010}-{kind}.manifest")
    }

    /// Name of part `k` of a multi-part checkpoint.
    pub fn part_file_name(id: u64, kind: CheckpointKind, k: usize) -> String {
        format!("ckpt-{id:010}-{kind}.part-{k}")
    }

    /// Starts a new legacy single-file checkpoint. The returned handle
    /// writes to a temp file; nothing is visible until
    /// [`PendingCheckpoint::publish`].
    pub fn begin(
        &self,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
    ) -> io::Result<PendingCheckpoint> {
        let final_path = self.dir.join(Self::file_name(id, kind));
        let tmp_path = self.dir.join(format!(".tmp-{}", Self::file_name(id, kind)));
        let writer = CheckpointWriter::create_with_vfs_codec(
            self.vfs.as_ref(),
            &tmp_path,
            kind,
            id,
            watermark,
            self.throttle.clone(),
            self.codec(),
        )?;
        Ok(PendingCheckpoint {
            writer,
            final_path,
            dir: self.dir.clone(),
            vfs: self.vfs.clone(),
            id,
            last_published: self.last_published.clone(),
        })
    }

    /// Starts a new multi-part checkpoint with `parts` part files,
    /// returning the pending handle and one writer per part (to be
    /// distributed over capture threads). Part files are created at
    /// their final names but stay invisible until the manifest publishes;
    /// if any create fails, the ones already created are removed.
    pub fn begin_parts(
        &self,
        kind: CheckpointKind,
        id: u64,
        watermark: CommitSeq,
        parts: usize,
    ) -> io::Result<(PendingPartsCheckpoint, Vec<CheckpointWriter>)> {
        let parts = parts.max(1);
        let codec = self.codec();
        let mut part_paths = Vec::with_capacity(parts);
        let mut writers = Vec::with_capacity(parts);
        for k in 0..parts {
            let path = self.dir.join(Self::part_file_name(id, kind, k));
            match CheckpointWriter::create_with_vfs_codec(
                self.vfs.as_ref(),
                &path,
                kind,
                id,
                watermark,
                self.throttle.clone(),
                codec,
            ) {
                Ok(mut w) => {
                    if let Some(signal) = self.load.get() {
                        w.set_pacer(signal.clone());
                    }
                    part_paths.push(path);
                    writers.push(w);
                }
                Err(e) => {
                    drop(writers);
                    for p in &part_paths {
                        let _ = self.vfs.remove_file(p);
                    }
                    return Err(e);
                }
            }
        }
        Ok((
            PendingPartsCheckpoint {
                kind,
                id,
                watermark,
                // The coverage baseline: whatever was newest-published
                // when this capture began is what a partial's dirty
                // window is relative to.
                parent: self.last_published(),
                codec,
                part_paths,
                dir: self.dir.clone(),
                vfs: self.vfs.clone(),
                last_published: self.last_published.clone(),
            },
            writers,
        ))
    }

    /// Validates one manifest's cycle. Returns the meta, or `None` after
    /// quarantining whichever files of the cycle exist.
    fn validate_manifest(&self, path: &Path, id: u64, kind: CheckpointKind) -> Option<CheckpointMeta> {
        let doc = (|| -> io::Result<ManifestDoc> {
            let mut buf = Vec::new();
            self.vfs.open_read(path)?.read_to_end(&mut buf)?;
            let doc = decode_manifest(&buf)?;
            if doc.id != id || doc.kind != kind {
                return Err(invalid("manifest identity does not match its name"));
            }
            Ok(doc)
        })();
        let doc = match doc {
            Ok(d) => d,
            Err(_) => {
                // An unreadable manifest condemns only itself: its part
                // names cannot be trusted, and orphaned parts are invisible
                // anyway.
                self.quarantine(path);
                return None;
            }
        };
        let mut parts = Vec::with_capacity(doc.parts.len());
        let mut ok = true;
        for (k, &ManifestPart { records, bytes, crc, .. }) in doc.parts.iter().enumerate() {
            let part_path = self.dir.join(Self::part_file_name(id, kind, k));
            let valid = CheckpointReader::open_with_vfs(self.vfs.as_ref(), &part_path)
                .and_then(|r| {
                    if r.expected_crc() != crc {
                        return Err(invalid("part digest does not match manifest"));
                    }
                    r.verify()
                })
                .map(|h| {
                    h.id == id
                        && h.kind == kind
                        && h.watermark == doc.watermark
                        && h.records == records
                        && h.codec == doc.codec
                })
                .unwrap_or(false);
            if !valid {
                ok = false;
                break;
            }
            parts.push(PartMeta {
                path: part_path,
                records,
                bytes,
            });
        }
        if !ok {
            // One missing or corrupt part condemns the whole cycle: a
            // snapshot with a hole is worse than falling back to the
            // previous checkpoint plus a longer replay.
            for k in 0..doc.parts.len() {
                let p = self.dir.join(Self::part_file_name(id, kind, k));
                if self.vfs.len(&p).is_ok() {
                    self.quarantine(&p);
                }
            }
            self.quarantine(path);
            return None;
        }
        Some(CheckpointMeta {
            id,
            kind,
            watermark: doc.watermark,
            records: parts.iter().map(|p| p.records).sum(),
            bytes: parts.iter().map(|p| p.bytes).sum(),
            parent: doc.parent,
            path: path.to_path_buf(),
            codec: doc.codec,
            raw_bytes: doc.parts.iter().map(|p| p.raw_bytes).sum(),
            parts,
        })
    }

    /// Scans the directory for valid published checkpoints, ascending by
    /// `(id, kind)` with Full ordered before Partial at equal id (a merged
    /// full supersedes the same-id partial). Multi-part cycles with a
    /// missing or corrupt part are quarantined wholesale; part files with
    /// no manifest are uncommitted debris and are ignored.
    pub fn scan(&self) -> io::Result<Vec<CheckpointMeta>> {
        let mut out = Vec::new();
        for path in self.vfs.read_dir(&self.dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            let Some((id, kind, class)) = parse_ckpt_name(&name) else {
                continue;
            };
            match class {
                NameClass::Part(_) => continue,
                NameClass::Manifest => {
                    if let Some(meta) = self.validate_manifest(&path, id, kind) {
                        out.push(meta);
                    }
                }
                NameClass::Legacy => {
                    let reader = match CheckpointReader::open_with_vfs(self.vfs.as_ref(), &path) {
                        Ok(r) => r,
                        Err(_) => {
                            // Crashed mid-capture: quarantine rather than
                            // silently skipping, so the corruption is visible
                            // in metrics and never rescanned.
                            self.quarantine(&path);
                            continue;
                        }
                    };
                    // Footer magic alone is not proof of integrity: a bit
                    // flip or torn write in the body leaves the footer
                    // intact, so validate the full CRC before treating the
                    // file as live.
                    let h = match reader.verify() {
                        Ok(h) => h,
                        Err(_) => {
                            self.quarantine(&path);
                            continue;
                        }
                    };
                    let bytes = self.vfs.len(&path)?;
                    out.push(CheckpointMeta {
                        id: h.id,
                        kind: h.kind,
                        watermark: h.watermark,
                        records: h.records,
                        bytes,
                        // Legacy headers predate the parent field; the
                        // recovery chain falls back to requiring dense ids.
                        parent: None,
                        path: path.clone(),
                        codec: h.codec,
                        // Single files carry no manifest, so the raw size
                        // of a compressed one is unknown; report the disk
                        // size (ratio 1.0) rather than guessing.
                        raw_bytes: bytes,
                        parts: vec![PartMeta {
                            path,
                            records: h.records,
                            bytes,
                        }],
                    });
                }
            }
        }
        out.sort_by_key(|m| (m.id, matches!(m.kind, CheckpointKind::Partial)));
        if let Some(max_id) = out.iter().map(|m| m.id).max() {
            self.last_published.fetch_max(max_id + 1, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// A cheap claims-only listing: the id and claimed watermark of every
    /// cycle with any durable trace in the directory, read from manifest
    /// documents and file *names* without validating part payloads —
    /// O(cycles), not O(data). Unlike [`CheckpointDir::scan`], cycles deep
    /// validation would quarantine still appear here: their claims are
    /// exactly what standby promotion must seal the id/seq spaces above,
    /// whether or not the data behind them is intact. Orphan parts and
    /// unreadable manifests contribute their name-derived id with a
    /// watermark claim of 0.
    pub fn claims(&self) -> io::Result<Vec<CheckpointClaim>> {
        let mut out: Vec<CheckpointClaim> = Vec::new();
        for path in self.vfs.read_dir(&self.dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            let Some((id, kind, class)) = parse_ckpt_name(&name) else {
                continue;
            };
            let watermark = match class {
                NameClass::Part(_) => CommitSeq(0),
                NameClass::Manifest => {
                    let doc = (|| -> io::Result<ManifestDoc> {
                        let mut buf = Vec::new();
                        self.vfs.open_read(&path)?.read_to_end(&mut buf)?;
                        decode_manifest(&buf)
                    })();
                    doc.map(|d| d.watermark).unwrap_or(CommitSeq(0))
                }
                NameClass::Legacy => CheckpointReader::open_with_vfs(self.vfs.as_ref(), &path)
                    .map(|r| r.header().watermark)
                    .unwrap_or(CommitSeq(0)),
            };
            out.push(CheckpointClaim {
                id,
                kind,
                watermark,
            });
        }
        // A cycle's parts and manifest all claim the same (id, kind);
        // keep the highest watermark claim for each (the manifest's, when
        // readable).
        out.sort_by_key(|c| {
            (
                c.id,
                matches!(c.kind, CheckpointKind::Partial),
                std::cmp::Reverse(c.watermark.0),
            )
        });
        out.dedup_by_key(|c| (c.id, c.kind));
        Ok(out)
    }

    /// The recovery chain: the newest valid full checkpoint plus the
    /// longest *unbroken* run of newer partials, ascending. `None` if no
    /// full checkpoint exists.
    ///
    /// Unbroken means each partial's recorded `parent` is the previous
    /// chain element (ids may legally skip — a failed cycle consumes an id
    /// and rolls its coverage into the next one). A partial whose parent
    /// is missing — lost or quarantined by a crash — starts a hole: its
    /// dirty window begins at the missing checkpoint, so applying it (or
    /// anything after it) would silently drop every write only the missing
    /// checkpoint captured. Everything from the hole on is excluded;
    /// command-log replay from the shorter chain's watermark covers the
    /// difference. Legacy files carry no parent and fall back to requiring
    /// dense ids.
    pub fn recovery_chain(&self) -> io::Result<Option<(CheckpointMeta, Vec<CheckpointMeta>)>> {
        let all = self.scan()?;
        let Some(full) = all
            .iter()
            .filter(|m| m.kind == CheckpointKind::Full)
            .max_by_key(|m| m.id)
            .cloned()
        else {
            return Ok(None);
        };
        let mut partials: Vec<CheckpointMeta> = Vec::new();
        let mut prev = full.id;
        for m in all {
            if m.kind != CheckpointKind::Partial || m.id <= full.id {
                continue;
            }
            let linked = match m.parent {
                Some(parent) => parent == prev,
                None => m.id == prev + 1,
            };
            if !linked {
                break;
            }
            prev = m.id;
            partials.push(m);
        }
        Ok(Some((full, partials)))
    }

    /// Deletes checkpoints that are superseded: every published cycle
    /// with `id <= through_id` except the replacement at `keep` (its
    /// parts included), plus orphaned part files in the same id range.
    /// Returns the number of *checkpoints* (not files) removed.
    pub fn gc_through(&self, through_id: u64, keep: &Path) -> io::Result<usize> {
        let mut removed = 0;
        let mut kept_parts: Vec<PathBuf> = Vec::new();
        for meta in self.scan()? {
            if meta.path == keep {
                kept_parts = meta.parts.iter().map(|p| p.path.clone()).collect();
                continue;
            }
            if meta.id <= through_id {
                for part in &meta.parts {
                    self.vfs.remove_file(&part.path)?;
                }
                if meta.path != meta.parts[0].path {
                    self.vfs.remove_file(&meta.path)?;
                }
                removed += 1;
            }
        }
        // Orphaned parts (no manifest claimed them — debris from aborted
        // or crashed cycles) in the superseded id range go too. In-flight
        // cycles are safe: their ids are allocated after everything
        // published, so they sort above `through_id`.
        for path in self.vfs.read_dir(&self.dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if let Some((id, _, NameClass::Part(_))) = parse_ckpt_name(&name) {
                if id <= through_id && !kept_parts.contains(&path) {
                    let _ = self.vfs.remove_file(&path);
                }
            }
        }
        if removed > 0 {
            // Make the unlinks durable before reporting GC complete, so a
            // later crash cannot resurrect a superseded checkpoint that
            // recovery would then prefer over the replacement.
            self.vfs.sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Retention: keeps the newest `keep` full checkpoints (clamped to at
    /// least 1) and every cycle at or above the oldest kept full's id,
    /// deleting everything older. Returns the number of checkpoints
    /// removed.
    ///
    /// Safety argument: the live recovery chain is the newest full plus
    /// partials *newer* than it ([`CheckpointDir::recovery_chain`]), and
    /// with `keep >= 1` the cutoff is at or below the newest full's id —
    /// so no deleted cycle (all strictly below the cutoff) can be the
    /// chain's root or any of its parents. Superseded partials between
    /// kept fulls survive too, preserving every fallback chain among the
    /// kept fulls: if the newest full is later found corrupt and
    /// quarantined, recovery still has `keep - 1` older complete chains.
    pub fn prune_chains(&self, keep: usize) -> io::Result<usize> {
        let keep = keep.max(1);
        let all = self.scan()?;
        let mut full_ids: Vec<u64> = all
            .iter()
            .filter(|m| m.kind == CheckpointKind::Full)
            .map(|m| m.id)
            .collect();
        full_ids.sort_unstable();
        full_ids.dedup();
        if full_ids.len() <= keep {
            return Ok(0);
        }
        let cutoff = full_ids[full_ids.len() - keep];
        let mut removed = 0;
        for meta in &all {
            if meta.id >= cutoff {
                continue;
            }
            for part in &meta.parts {
                self.vfs.remove_file(&part.path)?;
            }
            if meta.path != meta.parts[0].path {
                self.vfs.remove_file(&meta.path)?;
            }
            removed += 1;
        }
        // Orphaned parts below the cutoff are debris from aborted or
        // crashed cycles; in-flight cycles allocate ids above everything
        // published, so they all sort at or above the cutoff.
        for path in self.vfs.read_dir(&self.dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if let Some((id, _, NameClass::Part(_))) = parse_ckpt_name(&name) {
                if id < cutoff {
                    let _ = self.vfs.remove_file(&path);
                }
            }
        }
        if removed > 0 {
            self.vfs.sync_dir(&self.dir)?;
        }
        Ok(removed)
    }
}

impl std::fmt::Debug for CheckpointDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CheckpointDir({})", self.dir.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_common::types::Key;

    fn dir(name: &str) -> CheckpointDir {
        let d = std::env::temp_dir().join(format!(
            "calc-manifest-{}-{}-{name}",
            std::process::id(),
            rand_suffix()
        ));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
    }

    fn rand_suffix() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as u64
    }

    fn publish(d: &CheckpointDir, kind: CheckpointKind, id: u64, n: u64) {
        let mut p = d.begin(kind, id, CommitSeq(id * 100)).unwrap();
        for k in 0..n {
            p.writer().write_record(Key(k), b"v").unwrap();
        }
        p.publish().unwrap();
    }

    /// Publishes a multi-part checkpoint with `n` records striped over
    /// `parts` part files.
    fn publish_parts(d: &CheckpointDir, kind: CheckpointKind, id: u64, n: u64, parts: usize) {
        let (pending, mut writers) = d
            .begin_parts(kind, id, CommitSeq(id * 100), parts)
            .unwrap();
        for k in 0..n {
            writers[(k as usize) % parts]
                .write_record(Key(k), b"v")
                .unwrap();
        }
        pending.publish(writers).unwrap();
    }

    #[test]
    fn publish_then_scan() {
        let d = dir("scan");
        publish(&d, CheckpointKind::Full, 1, 5);
        publish(&d, CheckpointKind::Partial, 2, 2);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].id, 1);
        assert_eq!(metas[0].kind, CheckpointKind::Full);
        assert_eq!(metas[0].records, 5);
        assert_eq!(metas[1].id, 2);
        assert_eq!(metas[1].watermark, CommitSeq(200));
    }

    #[test]
    fn publish_parts_then_scan_counts_all_parts() {
        let d = dir("scan-parts");
        publish_parts(&d, CheckpointKind::Full, 1, 10, 3);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].id, 1);
        assert_eq!(metas[0].records, 10, "records summed over all parts");
        assert_eq!(metas[0].parts.len(), 3);
        assert_eq!(
            metas[0].bytes,
            metas[0].parts.iter().map(|p| p.bytes).sum::<u64>()
        );
        let entries = metas[0].read_all().unwrap();
        assert_eq!(entries.len(), 10);
        let mut keys: Vec<u64> = entries
            .iter()
            .map(|e| match e {
                RecordEntry::Value(k, _) => k.0,
                RecordEntry::Tombstone(k) => k.0,
            })
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..10u64).collect::<Vec<_>>());
    }

    /// The manifest/part round-trip property: for every part count
    /// (including 1) and several record shapes, publish → scan → read
    /// returns exactly what was written, in part order.
    #[test]
    fn manifest_part_roundtrip_property() {
        for parts in 1..=5usize {
            for n in [0u64, 1, 7, 64] {
                let d = dir(&format!("prop-{parts}-{n}"));
                let (pending, mut writers) = d
                    .begin_parts(CheckpointKind::Partial, 3, CommitSeq(77), parts)
                    .unwrap();
                let mut expected = Vec::new();
                // Tombstones ahead of values in part 0, values striped.
                writers[0].write_tombstone(Key(9999)).unwrap();
                expected.push(RecordEntry::Tombstone(Key(9999)));
                for k in 0..n {
                    let v = vec![(k % 251) as u8; (k as usize % 13) + 1];
                    writers[(k as usize) % parts].write_record(Key(k), &v).unwrap();
                }
                let summary = pending.publish(writers).unwrap();
                assert_eq!(summary.records, n + 1);
                assert_eq!(summary.parts, parts);
                let metas = d.scan().unwrap();
                assert_eq!(metas.len(), 1, "parts={parts} n={n}");
                assert_eq!(metas[0].records, n + 1);
                let got = metas[0].read_all().unwrap();
                assert_eq!(got.len() as u64, n + 1);
                assert_eq!(got[0], expected[0], "tombstone first in part 0");
                assert_eq!(d.quarantined_count(), 0);
            }
        }
    }

    #[test]
    fn abandoned_and_unpublished_files_invisible() {
        let d = dir("abandon");
        let p = d.begin(CheckpointKind::Full, 1, CommitSeq(1)).unwrap();
        p.abandon();
        // In-flight (not yet published) writer: temp file exists but scan
        // ignores it.
        let mut p2 = d.begin(CheckpointKind::Full, 2, CommitSeq(2)).unwrap();
        p2.writer().write_record(Key(1), b"x").unwrap();
        assert!(d.scan().unwrap().is_empty());
        p2.publish().unwrap();
        assert_eq!(d.scan().unwrap().len(), 1);
    }

    #[test]
    fn unpublished_parts_are_invisible_and_abandon_removes_them() {
        let d = dir("abandon-parts");
        let (pending, mut writers) = d
            .begin_parts(CheckpointKind::Full, 1, CommitSeq(1), 4)
            .unwrap();
        for (i, w) in writers.iter_mut().enumerate() {
            w.write_record(Key(i as u64), b"x").unwrap();
        }
        // Parts exist at final names but no manifest: invisible.
        assert!(d.path().join("ckpt-0000000001-full.part-0").exists());
        assert!(d.scan().unwrap().is_empty());
        assert_eq!(d.quarantined_count(), 0, "orphan parts are not corruption");
        drop(writers);
        pending.abandon();
        assert!(!d.path().join("ckpt-0000000001-full.part-0").exists());
    }

    #[test]
    fn crashed_file_is_skipped() {
        let d = dir("crash");
        publish(&d, CheckpointKind::Full, 1, 1);
        // Simulate a crash: a published-looking name with no footer.
        std::fs::write(d.path().join("ckpt-0000000002-full.calc"), b"CALCCKPTgarbage")
            .unwrap();
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].id, 1);
    }

    #[test]
    fn corrupt_file_is_quarantined_and_counted() {
        let d = dir("quarantine");
        publish(&d, CheckpointKind::Full, 1, 1);
        let bad = d.path().join("ckpt-0000000002-full.calc");
        std::fs::write(&bad, b"CALCCKPTgarbage").unwrap();
        assert_eq!(d.quarantined_count(), 0);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(d.quarantined_count(), 1);
        // The file moved out of the scan namespace: bytes preserved under
        // *.quarantine, original name gone, and a re-scan finds nothing new.
        assert!(!bad.exists());
        assert!(d
            .path()
            .join("ckpt-0000000002-full.calc.quarantine")
            .exists());
        assert_eq!(d.scan().unwrap().len(), 1);
        assert_eq!(d.quarantined_count(), 1);
    }

    #[test]
    fn corrupt_part_quarantines_the_whole_cycle() {
        let d = dir("part-corrupt");
        publish_parts(&d, CheckpointKind::Full, 1, 6, 3);
        publish_parts(&d, CheckpointKind::Full, 2, 6, 3);
        // Flip a byte in the middle of one part of the newest cycle.
        let victim = d.path().join("ckpt-0000000002-full.part-1");
        let mut data = std::fs::read(&victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&victim, &data).unwrap();
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1, "whole cycle rejected, not just one part");
        assert_eq!(metas[0].id, 1);
        // Manifest and all three parts of cycle 2 are quarantined.
        assert_eq!(d.quarantined_count(), 4);
        for name in [
            "ckpt-0000000002-full.manifest.quarantine",
            "ckpt-0000000002-full.part-0.quarantine",
            "ckpt-0000000002-full.part-1.quarantine",
            "ckpt-0000000002-full.part-2.quarantine",
        ] {
            assert!(d.path().join(name).exists(), "missing {name}");
        }
    }

    #[test]
    fn missing_part_quarantines_the_whole_cycle() {
        let d = dir("part-missing");
        publish_parts(&d, CheckpointKind::Full, 1, 6, 3);
        publish_parts(&d, CheckpointKind::Full, 2, 6, 3);
        std::fs::remove_file(d.path().join("ckpt-0000000002-full.part-2")).unwrap();
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].id, 1);
        // Manifest + the two surviving parts.
        assert_eq!(d.quarantined_count(), 3);
    }

    #[test]
    fn legacy_and_multipart_coexist_in_one_chain() {
        let d = dir("mixed");
        publish(&d, CheckpointKind::Full, 0, 3); // legacy base
        publish_parts(&d, CheckpointKind::Partial, 1, 4, 2);
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 0);
        assert_eq!(full.parts.len(), 1, "legacy checkpoint is one part");
        assert_eq!(partials.len(), 1);
        assert_eq!(partials[0].parts.len(), 2);
    }

    #[test]
    fn recovery_chain_picks_latest_full_and_newer_partials() {
        let d = dir("chain");
        publish(&d, CheckpointKind::Full, 0, 3);
        publish(&d, CheckpointKind::Partial, 1, 1);
        publish_parts(&d, CheckpointKind::Partial, 2, 1, 2);
        publish_parts(&d, CheckpointKind::Full, 2, 4, 2); // merged full at id 2
        publish(&d, CheckpointKind::Partial, 3, 1);
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 2);
        assert_eq!(full.kind, CheckpointKind::Full);
        let ids: Vec<u64> = partials.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn recovery_chain_stops_at_a_hole_in_the_partial_chain() {
        let d = dir("chain-hole");
        publish_parts(&d, CheckpointKind::Full, 0, 4, 2);
        publish_parts(&d, CheckpointKind::Partial, 1, 2, 2);
        publish_parts(&d, CheckpointKind::Partial, 2, 2, 2);
        publish_parts(&d, CheckpointKind::Partial, 3, 2, 2);
        // A crash un-publishes partial 2 (its manifest rename was never
        // made durable); partials 1 and 3 survive. Partial 3's dirty
        // window starts at partial 2, so applying it would silently drop
        // every write only partial 2 captured — the chain must stop at 1.
        for k in 0..2 {
            std::fs::remove_file(d.path().join(CheckpointDir::part_file_name(
                2,
                CheckpointKind::Partial,
                k,
            )))
            .unwrap();
        }
        std::fs::remove_file(
            d.path()
                .join(CheckpointDir::manifest_file_name(2, CheckpointKind::Partial)),
        )
        .unwrap();
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 0);
        let ids: Vec<u64> = partials.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![1], "partials after the hole must be dropped");
    }

    #[test]
    fn recovery_chain_tolerates_id_gaps_from_failed_cycles() {
        let d = dir("chain-gap");
        publish_parts(&d, CheckpointKind::Full, 0, 4, 2);
        publish_parts(&d, CheckpointKind::Partial, 1, 2, 2);
        // Cycle 2 failed (consumed its id, published nothing, rolled its
        // coverage into cycle 3) — cycle 3's parent is 1, so the chain
        // stays intact across the id gap.
        publish_parts(&d, CheckpointKind::Partial, 3, 2, 2);
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 0);
        let ids: Vec<u64> = partials.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(partials[1].parent, Some(1));
    }

    #[test]
    fn recovery_chain_none_without_full() {
        let d = dir("nofull");
        publish(&d, CheckpointKind::Partial, 1, 1);
        assert!(d.recovery_chain().unwrap().is_none());
    }

    #[test]
    fn gc_removes_superseded_files() {
        let d = dir("gc");
        publish(&d, CheckpointKind::Full, 0, 1);
        publish(&d, CheckpointKind::Partial, 1, 1);
        publish(&d, CheckpointKind::Partial, 2, 1);
        publish(&d, CheckpointKind::Full, 2, 2); // replacement
        let keep = d.path().join("ckpt-0000000002-full.calc");
        let removed = d.gc_through(2, &keep).unwrap();
        assert_eq!(removed, 3);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].path, keep);
    }

    #[test]
    fn compressed_parts_publish_scan_read_roundtrip() {
        let d = dir("codec-parts");
        publish_parts(&d, CheckpointKind::Full, 1, 8, 2); // v1 cycle
        d.set_codec(Codec::Rle);
        assert_eq!(d.codec(), Codec::Rle);
        let (pending, mut writers) = d
            .begin_parts(CheckpointKind::Partial, 2, CommitSeq(200), 3)
            .unwrap();
        for k in 0..30u64 {
            writers[(k % 3) as usize]
                .write_record(Key(k), &[0u8; 256])
                .unwrap();
        }
        let summary = pending.publish(writers).unwrap();
        assert!(summary.raw_bytes > summary.bytes, "zeros must compress");

        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].codec, Codec::None);
        assert_eq!(metas[0].raw_bytes, metas[0].bytes);
        assert_eq!(metas[1].codec, Codec::Rle);
        assert_eq!(metas[1].raw_bytes, summary.raw_bytes);
        assert_eq!(metas[1].bytes, summary.bytes);
        assert_eq!(metas[1].read_all().unwrap().len(), 30);
        assert_eq!(d.quarantined_count(), 0, "mixed-codec directory is fine");
    }

    #[test]
    fn corrupt_compressed_part_quarantines_the_whole_cycle() {
        let d = dir("codec-corrupt");
        d.set_codec(Codec::Rle);
        publish_parts(&d, CheckpointKind::Full, 1, 200, 2);
        publish_parts(&d, CheckpointKind::Full, 2, 200, 2);
        let victim = d.path().join("ckpt-0000000002-full.part-0");
        let mut data = std::fs::read(&victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&victim, &data).unwrap();
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].id, 1);
        assert_eq!(d.quarantined_count(), 3, "manifest + both parts");
    }

    #[test]
    fn prune_keeps_newest_fulls_and_their_partials() {
        let d = dir("prune");
        publish_parts(&d, CheckpointKind::Full, 0, 2, 2);
        publish_parts(&d, CheckpointKind::Partial, 1, 1, 2);
        publish_parts(&d, CheckpointKind::Full, 2, 2, 2);
        publish_parts(&d, CheckpointKind::Partial, 3, 1, 2);
        publish_parts(&d, CheckpointKind::Full, 4, 2, 2);
        publish_parts(&d, CheckpointKind::Partial, 5, 1, 2);
        // keep=2: cutoff at full id 2; cycle 0 and partial 1 go.
        assert_eq!(d.prune_chains(2).unwrap(), 2);
        let ids: Vec<(u64, CheckpointKind)> =
            d.scan().unwrap().iter().map(|m| (m.id, m.kind)).collect();
        assert_eq!(
            ids,
            vec![
                (2, CheckpointKind::Full),
                (3, CheckpointKind::Partial),
                (4, CheckpointKind::Full),
                (5, CheckpointKind::Partial),
            ]
        );
        // The live chain is intact after pruning.
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 4);
        assert_eq!(partials.len(), 1);
        // Pruning again is a no-op; keep=1 keeps only the live chain.
        assert_eq!(d.prune_chains(2).unwrap(), 0);
        assert_eq!(d.prune_chains(1).unwrap(), 2);
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 4);
        assert_eq!(partials[0].id, 5);
    }

    #[test]
    fn prune_never_removes_a_live_chain_parent() {
        // A partial chain hanging off the newest full must survive any
        // keep value, even keep=1 — the chain root is the newest full and
        // the cutoff can never exceed it.
        let d = dir("prune-live");
        publish_parts(&d, CheckpointKind::Full, 0, 2, 2);
        publish_parts(&d, CheckpointKind::Full, 1, 2, 2);
        publish_parts(&d, CheckpointKind::Partial, 2, 1, 2);
        publish_parts(&d, CheckpointKind::Partial, 3, 1, 2);
        assert_eq!(d.prune_chains(0).unwrap(), 1, "keep clamps to 1");
        let (full, partials) = d.recovery_chain().unwrap().unwrap();
        assert_eq!(full.id, 1);
        let ids: Vec<u64> = partials.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![2, 3], "live partial chain untouched");
    }

    #[test]
    fn prune_noop_with_few_fulls_and_removes_old_orphans() {
        let d = dir("prune-orphan");
        publish_parts(&d, CheckpointKind::Full, 1, 2, 2);
        assert_eq!(d.prune_chains(1).unwrap(), 0, "one full, keep 1");
        publish_parts(&d, CheckpointKind::Full, 5, 2, 2);
        // Orphan part debris below the cutoff (a crashed cycle 2).
        let orphan = d.path().join(CheckpointDir::part_file_name(
            2,
            CheckpointKind::Partial,
            0,
        ));
        std::fs::write(&orphan, b"debris").unwrap();
        assert_eq!(d.prune_chains(1).unwrap(), 1);
        assert!(!orphan.exists(), "orphan debris pruned with its id range");
        assert_eq!(d.scan().unwrap().len(), 1);
    }

    #[test]
    fn gc_removes_superseded_multipart_cycles_and_orphans() {
        let d = dir("gc-parts");
        publish_parts(&d, CheckpointKind::Full, 0, 2, 2);
        publish_parts(&d, CheckpointKind::Partial, 1, 2, 3);
        publish_parts(&d, CheckpointKind::Full, 1, 4, 2); // replacement
        // Orphan debris from an aborted cycle in the superseded range.
        let (pending, writers) = d
            .begin_parts(CheckpointKind::Partial, 0, CommitSeq(1), 2)
            .unwrap();
        drop(writers);
        std::mem::forget(pending); // crash: no abandon, no publish
        let keep = d.path().join(CheckpointDir::manifest_file_name(1, CheckpointKind::Full));
        let removed = d.gc_through(1, &keep).unwrap();
        assert_eq!(removed, 2);
        let metas = d.scan().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].path, keep);
        assert_eq!(metas[0].parts.len(), 2, "kept cycle's parts survive GC");
        // Every superseded data/manifest/orphan file is gone.
        let leftovers: Vec<String> = std::fs::read_dir(d.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| !n.starts_with("ckpt-0000000001-full"))
            .collect();
        assert!(leftovers.is_empty(), "GC left {leftovers:?}");
    }
}
