//! Block codecs for compressed checkpoint parts.
//!
//! Checkpoint files spend most of their bytes on record values, and
//! main-memory workloads (including this repo's benchmarks and the
//! paper's microbenchmark) carry highly repetitive payloads — padding,
//! zeroed fields, counters. "A Comparative Study of Consistent Snapshot
//! Algorithms for Main-Memory Database Systems" measures snapshot size as
//! a first-order cost axis, so the capture pipeline compresses the record
//! stream in framed blocks (see [`crate::file`] for the framing).
//!
//! The registry is offline, so the codec is in-tree: a byte-run-length
//! scheme ([`Codec::Rle`]) chosen for wholly deterministic output,
//! bounded worst-case expansion, and O(n) encode/decode. The enum leaves
//! room for heavier codecs later; `none` keeps the legacy uncompressed
//! format byte-identical.
//!
//! ## RLE wire format
//!
//! A compressed block is a sequence of ops, each a 3-byte head:
//!
//! ```text
//! literal: 0x00 | len:u16le | len raw bytes        (1 <= len <= 65535)
//! run:     0x01 | len:u16le | byte                 (4 <= len <= 65535)
//! ```
//!
//! Runs shorter than [`MIN_RUN`] fold into the surrounding literal (a
//! 3-byte run op must at least pay for its own head). Worst case
//! (incompressible input) the output is `ceil(n / 65535) * 3 + n` bytes —
//! under 0.005% overhead. Decoding validates op tags, head completeness,
//! and that the output length matches the caller's expected raw length,
//! so a torn or bit-flipped block fails closed as `InvalidData` rather
//! than decoding to garbage.

use std::io;

/// Minimum run length worth a run op: below this a run costs more than
/// the literal bytes it replaces.
const MIN_RUN: usize = 4;
/// Maximum op payload length (u16 length field).
const MAX_OP: usize = u16::MAX as usize;

const OP_LITERAL: u8 = 0x00;
const OP_RUN: u8 = 0x01;

/// A checkpoint block codec. The `codec` byte in file headers and
/// manifests is [`Codec::to_byte`]; `none` is the legacy uncompressed
/// format.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Codec {
    /// No compression — the legacy byte-identical record stream.
    #[default]
    None,
    /// In-tree byte run-length encoding (see module docs).
    Rle,
}

impl Codec {
    /// All codecs, for sweeps and tests.
    pub const ALL: [Codec; 2] = [Codec::None, Codec::Rle];

    /// The codec's wire byte (file header / manifest field).
    pub fn to_byte(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Rle => 1,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(Codec::None),
            1 => Ok(Codec::Rle),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown codec byte {b}"),
            )),
        }
    }

    /// The codec's configuration name (`CKPT_CODEC` values).
    pub fn name(self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::Rle => "rle",
        }
    }

    /// Parses a configuration name (case-insensitive).
    pub fn parse(s: &str) -> io::Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Ok(Codec::None),
            "rle" => Ok(Codec::Rle),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown codec {other:?} (expected none|rle)"),
            )),
        }
    }

    /// The codec requested by the `CKPT_CODEC` environment variable
    /// (`None` codec if unset or empty). An unknown value is an error —
    /// silently running uncompressed when the operator asked for
    /// compression would defeat the knob.
    pub fn from_env() -> io::Result<Self> {
        match std::env::var("CKPT_CODEC") {
            Ok(s) if !s.is_empty() => Self::parse(&s),
            _ => Ok(Codec::None),
        }
    }

    /// Compresses `raw`. For [`Codec::None`] this is a plain copy (the
    /// framing layer short-circuits before calling it).
    pub fn compress(self, raw: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => raw.to_vec(),
            Codec::Rle => rle_compress(raw),
        }
    }

    /// Decompresses `comp`, validating that exactly `raw_len` bytes come
    /// out. Fails closed (`InvalidData`) on any malformed input.
    pub fn decompress(self, comp: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
        let out = match self {
            Codec::None => {
                if comp.len() != raw_len {
                    return Err(bad("length mismatch in uncompressed block"));
                }
                comp.to_vec()
            }
            Codec::Rle => rle_decompress(comp, raw_len)?,
        };
        if out.len() != raw_len {
            return Err(bad("decompressed block length mismatch"));
        }
        Ok(out)
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Length of the run of identical bytes starting at `from` (capped at
/// `MAX_OP`).
fn run_len(raw: &[u8], from: usize) -> usize {
    let b = raw[from];
    let mut i = from + 1;
    let cap = raw.len().min(from + MAX_OP);
    while i < cap && raw[i] == b {
        i += 1;
    }
    i - from
}

fn push_literal(out: &mut Vec<u8>, lit: &[u8]) {
    for chunk in lit.chunks(MAX_OP) {
        out.push(OP_LITERAL);
        out.extend_from_slice(&(chunk.len() as u16).to_le_bytes());
        out.extend_from_slice(chunk);
    }
}

fn rle_compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 4 + 16);
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < raw.len() {
        let run = run_len(raw, i);
        if run >= MIN_RUN {
            push_literal(&mut out, &raw[lit_start..i]);
            out.push(OP_RUN);
            out.extend_from_slice(&(run as u16).to_le_bytes());
            out.push(raw[i]);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    push_literal(&mut out, &raw[lit_start..]);
    out
}

fn rle_decompress(comp: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < comp.len() {
        if i + 3 > comp.len() {
            return Err(bad("truncated RLE op head"));
        }
        let op = comp[i];
        let len = u16::from_le_bytes([comp[i + 1], comp[i + 2]]) as usize;
        i += 3;
        match op {
            OP_LITERAL => {
                if len == 0 || i + len > comp.len() {
                    return Err(bad("bad RLE literal length"));
                }
                out.extend_from_slice(&comp[i..i + len]);
                i += len;
            }
            OP_RUN => {
                if len == 0 || i >= comp.len() {
                    return Err(bad("bad RLE run length"));
                }
                let b = comp[i];
                i += 1;
                out.resize(out.len() + len, b);
            }
            other => return Err(bad(&format!("bad RLE op tag {other}"))),
        }
        if out.len() > raw_len {
            return Err(bad("RLE output exceeds declared raw length"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_common::rng::SplitMix;

    fn roundtrip(codec: Codec, raw: &[u8]) {
        let comp = codec.compress(raw);
        let back = codec.decompress(&comp, raw.len()).unwrap();
        assert_eq!(back, raw, "codec {codec} failed on {} bytes", raw.len());
    }

    #[test]
    fn parse_and_bytes_roundtrip() {
        for c in Codec::ALL {
            assert_eq!(Codec::parse(c.name()).unwrap(), c);
            assert_eq!(Codec::from_byte(c.to_byte()).unwrap(), c);
        }
        assert!(Codec::parse("lz9000").is_err());
        assert!(Codec::from_byte(200).is_err());
    }

    #[test]
    fn rle_edges_roundtrip() {
        for raw in [
            &b""[..],
            &b"x"[..],
            &b"abcdef"[..],
            &[0u8; 5][..],
            &[7u8; 100_000][..],
            &b"aaabbbbccccc"[..],
        ] {
            roundtrip(Codec::Rle, raw);
            roundtrip(Codec::None, raw);
        }
        // Run exactly at / below the fold threshold.
        roundtrip(Codec::Rle, b"xaaax");
        roundtrip(Codec::Rle, b"xaaaax");
        // Run longer than one op's length field.
        roundtrip(Codec::Rle, &vec![3u8; MAX_OP * 2 + 17]);
        // Literal longer than one op.
        let lit: Vec<u8> = (0..MAX_OP * 2 + 5).map(|i| (i % 251) as u8).collect();
        roundtrip(Codec::Rle, &lit);
    }

    #[test]
    fn rle_compresses_zero_heavy_input() {
        let raw = vec![0u8; 64 * 1024];
        let comp = Codec::Rle.compress(&raw);
        assert!(
            comp.len() * 100 < raw.len(),
            "64KiB of zeros compressed to {} bytes",
            comp.len()
        );
    }

    #[test]
    fn rle_randomized_roundtrip() {
        // Mixed-entropy inputs: random bytes drawn from a narrow alphabet
        // produce both runs and literals.
        for case in 0..64u64 {
            let mut rng = SplitMix::new(0xc0de_c0de_0000_0000 ^ case);
            let len = (rng.next_u64() % 4096) as usize;
            let alphabet = 1 + (rng.next_u64() % 7) as u8;
            let raw: Vec<u8> = (0..len).map(|_| (rng.next_u64() as u8) % alphabet).collect();
            let comp = Codec::Rle.compress(&raw);
            let back = Codec::Rle.decompress(&comp, raw.len()).unwrap_or_else(|e| {
                panic!("case {case}: decode failed: {e}");
            });
            assert_eq!(back, raw, "case {case} diverged");
        }
    }

    #[test]
    fn decompress_rejects_malformed_input() {
        // Truncated head.
        assert!(Codec::Rle.decompress(&[OP_LITERAL, 5], 5).is_err());
        // Literal overruns the buffer.
        assert!(Codec::Rle.decompress(&[OP_LITERAL, 9, 0, 1, 2], 9).is_err());
        // Unknown op tag.
        assert!(Codec::Rle.decompress(&[0x77, 1, 0, 9], 1).is_err());
        // Output longer than declared.
        let comp = Codec::Rle.compress(&[5u8; 100]);
        assert!(Codec::Rle.decompress(&comp, 10).is_err());
        // Output shorter than declared.
        assert!(Codec::Rle.decompress(&comp, 1000).is_err());
        // None codec length mismatch.
        assert!(Codec::None.decompress(b"abc", 4).is_err());
    }
}
