//! The five-phase controller (§2.2).
//!
//! CALC's `RunCheckpointer` drives the system through REST → PREPARE →
//! RESOLVE → CAPTURE → COMPLETE, where each transition may only happen
//! once "all active txns have start-phase == current phase". The
//! controller tracks, per phase, how many transactions that *started* in
//! that phase are still active, and provides the drain-wait. Transitions
//! append tokens to the commit log, which linearizes them against commit
//! tokens (so a transaction's commit phase is always well defined).
//!
//! The begin protocol closes the registration race: a transaction reads
//! the current stamp, increments that phase's counter, then re-reads the
//! stamp; if it changed, it backs off and retries. With `SeqCst` on both
//! sides, either the checkpointer's drain-check sees the increment or the
//! transaction's re-read sees the new phase — a transaction can never run
//! under a stale phase unnoticed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::utils::CachePadded;

use calc_common::phase::Phase;
use calc_common::types::CommitSeq;
use calc_txn::commitlog::{CommitLog, PhaseStamp};

/// Per-phase active-transaction accounting plus transition driving.
pub struct PhaseController {
    log: Arc<CommitLog>,
    active: [CachePadded<AtomicUsize>; Phase::COUNT],
}

impl PhaseController {
    /// Creates a controller over the given commit log.
    pub fn new(log: Arc<CommitLog>) -> Self {
        PhaseController {
            log,
            active: std::array::from_fn(|_| CachePadded::new(AtomicUsize::new(0))),
        }
    }

    /// The commit log the controller linearizes against.
    pub fn log(&self) -> &Arc<CommitLog> {
        &self.log
    }

    /// Registers a transaction: returns the stamp (cycle + phase) it
    /// started under. Must be paired with [`PhaseController::end`].
    pub fn begin(&self) -> PhaseStamp {
        loop {
            let stamp = self.log.current_stamp();
            self.active[stamp.phase.index()].fetch_add(1, Ordering::SeqCst);
            if self.log.current_stamp() == stamp {
                return stamp;
            }
            self.active[stamp.phase.index()].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Deregisters a transaction started with the given stamp.
    pub fn end(&self, stamp: PhaseStamp) {
        let prev = self.active[stamp.phase.index()].fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "phase counter underflow");
    }

    /// Number of active transactions that started in `phase`.
    pub fn active_in(&self, phase: Phase) -> usize {
        self.active[phase.index()].load(Ordering::SeqCst)
    }

    /// Appends a phase-transition token (linearized against commits) and
    /// returns its sequence. Entering RESOLVE marks the virtual point of
    /// consistency; the returned sequence is the checkpoint watermark.
    pub fn transition(&self, to: Phase) -> CommitSeq {
        let seq = self.log.append_phase_transition(to);
        // Widen the window between publishing the new stamp and whatever
        // the checkpointer does next — the racy interval where commits
        // straddle the transition.
        calc_common::perturb::point(calc_common::perturb::Site::PhaseTransition);
        seq
    }

    /// Blocks until every active transaction has `start-phase == current`
    /// — i.e. the counters of all other phases are zero. Sleeps briefly
    /// between polls; only the checkpointer thread waits here.
    pub fn drain_others(&self, current: Phase) {
        let mut spins = 0u32;
        loop {
            let others_active = Phase::ALL
                .iter()
                .any(|&p| p != current && self.active_in(p) > 0);
            if !others_active {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

impl std::fmt::Debug for PhaseController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PhaseController(phase={}", self.log.current_phase())?;
        for p in Phase::ALL {
            let n = self.active_in(p);
            if n > 0 {
                write!(f, ", {p}:{n}")?;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn controller() -> PhaseController {
        PhaseController::new(Arc::new(CommitLog::new(false)))
    }

    #[test]
    fn begin_end_counts() {
        let pc = controller();
        let s1 = pc.begin();
        assert_eq!(s1.phase, Phase::Rest);
        assert_eq!(pc.active_in(Phase::Rest), 1);
        let s2 = pc.begin();
        assert_eq!(pc.active_in(Phase::Rest), 2);
        pc.end(s1);
        pc.end(s2);
        assert_eq!(pc.active_in(Phase::Rest), 0);
    }

    #[test]
    fn begin_after_transition_lands_in_new_phase() {
        let pc = controller();
        pc.transition(Phase::Prepare);
        let s = pc.begin();
        assert_eq!(s.phase, Phase::Prepare);
        assert_eq!(pc.active_in(Phase::Prepare), 1);
        assert_eq!(pc.active_in(Phase::Rest), 0);
        pc.end(s);
    }

    #[test]
    fn drain_others_waits_for_stragglers() {
        let pc = Arc::new(controller());
        let straggler = pc.begin(); // Rest-started
        pc.transition(Phase::Prepare);
        let drained = Arc::new(AtomicBool::new(false));

        let pc2 = pc.clone();
        let d2 = drained.clone();
        let waiter = std::thread::spawn(move || {
            pc2.drain_others(Phase::Prepare);
            d2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !drained.load(Ordering::SeqCst),
            "drain returned while a rest-started txn was active"
        );
        pc.end(straggler);
        waiter.join().unwrap();
        assert!(drained.load(Ordering::SeqCst));
    }

    #[test]
    fn drain_ignores_current_phase_txns() {
        let pc = controller();
        pc.transition(Phase::Prepare);
        let s = pc.begin(); // Prepare-started
        // Must return immediately: only prepare-started txns are active.
        pc.drain_others(Phase::Prepare);
        pc.end(s);
    }

    #[test]
    fn full_cycle_watermark_at_resolve() {
        let pc = controller();
        pc.transition(Phase::Prepare);
        pc.drain_others(Phase::Prepare);
        let watermark = pc.transition(Phase::Resolve);
        assert!(watermark.0 > 0);
        pc.drain_others(Phase::Resolve);
        pc.transition(Phase::Capture);
        pc.transition(Phase::Complete);
        pc.drain_others(Phase::Complete);
        pc.transition(Phase::Rest);
        assert_eq!(pc.log().current_stamp().cycle, 1);
    }

    #[test]
    fn concurrent_begin_end_with_transitions_never_undercounts() {
        let pc = Arc::new(controller());
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..6)
            .map(|_| {
                let pc = pc.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let s = pc.begin();
                        std::hint::spin_loop();
                        pc.end(s);
                    }
                })
            })
            .collect();
        // Drive several full cycles with proper drains.
        for _ in 0..5 {
            pc.transition(Phase::Prepare);
            pc.drain_others(Phase::Prepare);
            pc.transition(Phase::Resolve);
            pc.drain_others(Phase::Resolve);
            pc.transition(Phase::Capture);
            pc.transition(Phase::Complete);
            pc.drain_others(Phase::Complete);
            pc.transition(Phase::Rest);
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        for p in Phase::ALL {
            assert_eq!(pc.active_in(p), 0, "leaked active count in {p}");
        }
    }
}
