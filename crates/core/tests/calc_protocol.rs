//! Protocol-level consistency tests for CALC and pCALC.
//!
//! **The central invariant of the paper (§2.1):** a checkpoint taken at a
//! virtual point of consistency must reflect *every* change made by
//! transactions that committed before the point, and *no* change made by
//! transactions that committed after it.
//!
//! The harness runs worker threads that execute write transactions under
//! real exclusive locks while the checkpointer runs complete CALC cycles
//! concurrently. Every committed write is journaled with its commit
//! sequence; after the run, each checkpoint file is compared against the
//! state reconstructed by replaying the journal up to the checkpoint's
//! watermark. Written values are pure functions of (thread, iteration), so
//! the reconstruction is exact regardless of interleaving.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use calc_common::rng::SplitMix;
use calc_common::types::{CommitSeq, Key, TxnId, Value};
use calc_core::calc::CalcStrategy;
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::merge::{apply_entry, materialize_chain};
use calc_core::strategy::{CheckpointStrategy, NoopEnv, UndoImage, UndoRec};
use calc_core::throttle::Throttle;
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::CommitLog;
use calc_txn::locks::{LockManager, LockMode};
use calc_txn::proc::ProcId;

/// One journaled committed operation.
#[derive(Clone, Debug)]
enum Op {
    Put(Key, Value),
    Insert(Key, Value),
    Delete(Key),
}

struct Journal {
    entries: parking_lot::Mutex<Vec<(CommitSeq, Vec<Op>)>>,
}

impl Journal {
    fn new() -> Self {
        Journal {
            entries: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// State after applying all commits with `seq <= watermark`.
    fn state_at(&self, initial: &BTreeMap<Key, Value>, watermark: CommitSeq) -> BTreeMap<Key, Value> {
        let mut entries = self.entries.lock().clone();
        entries.sort_by_key(|(s, _)| *s);
        let mut state = initial.clone();
        for (seq, ops) in entries {
            if seq > watermark {
                break;
            }
            for op in ops {
                match op {
                    Op::Put(k, v) | Op::Insert(k, v) => {
                        state.insert(k, v);
                    }
                    Op::Delete(k) => {
                        state.remove(&k);
                    }
                }
            }
        }
        state
    }
}

fn checkpoint_state(meta: &calc_core::manifest::CheckpointMeta) -> BTreeMap<Key, Value> {
    let mut state = BTreeMap::new();
    for e in meta.read_all().unwrap() {
        apply_entry(&mut state, e);
    }
    state
}

fn dirs(name: &str) -> CheckpointDir {
    let d = std::env::temp_dir().join(format!(
        "calc-protocol-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&d);
    CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
}

struct Harness {
    strategy: Arc<CalcStrategy>,
    log: Arc<CommitLog>,
    locks: Arc<LockManager>,
    journal: Arc<Journal>,
    initial: BTreeMap<Key, Value>,
}

fn build(partial: bool, n_keys: u64) -> Harness {
    let log = Arc::new(CommitLog::new(false));
    let config = StoreConfig::for_records((n_keys as usize) * 4, 32);
    let strategy = Arc::new(if partial {
        CalcStrategy::partial(config, log.clone())
    } else {
        CalcStrategy::full(config, log.clone())
    });
    let mut initial = BTreeMap::new();
    for k in 0..n_keys {
        let v: Value = format!("init-{k}").into_bytes().into_boxed_slice();
        strategy.load_initial(Key(k), &v).unwrap();
        initial.insert(Key(k), v);
    }
    Harness {
        strategy,
        log,
        locks: Arc::new(LockManager::new(64)),
        journal: Arc::new(Journal::new()),
        initial,
    }
}

/// Runs one worker transaction: updates `n_writes` random keys in
/// `0..key_space` with deterministic values; with probability
/// `p_insert_delete`, also inserts/deletes keys in the extended range.
/// Aborts (rolls back, uncommitted) with probability `p_abort`.
#[allow(clippy::too_many_arguments)]
fn run_txn(
    h: &Harness,
    rng: &mut SplitMix,
    thread: u64,
    iter: u64,
    key_space: u64,
    n_writes: usize,
    p_insert_delete: f64,
    p_abort: f64,
) {
    let mut keys: Vec<Key> = (0..n_writes)
        .map(|_| Key(rng.next_below(key_space)))
        .collect();
    // Occasionally target the extended keyspace with inserts/deletes.
    let ext_key = Key(key_space + rng.next_below(key_space / 4 + 1));
    let do_ext = rng.chance(p_insert_delete);
    if do_ext {
        keys.push(ext_key);
    }
    let lockset: Vec<(Key, LockMode)> = keys.iter().map(|&k| (k, LockMode::Exclusive)).collect();
    let guard = h.locks.acquire(&lockset);

    let mut token = h.strategy.txn_begin();
    let mut undo: Vec<UndoRec> = Vec::new();
    let mut ops: Vec<Op> = Vec::new();

    for (i, &k) in keys.iter().enumerate() {
        if k == ext_key && do_ext {
            // Insert if absent, delete if present.
            if h.strategy.get(k).is_some() {
                let old = h.strategy.apply_delete(&mut token, k).unwrap().unwrap();
                undo.push(UndoRec {
                    key: k,
                    img: UndoImage::Reinsert(old),
                });
                ops.push(Op::Delete(k));
            } else {
                let v = format!("ins-{thread}-{iter}").into_bytes();
                assert!(h.strategy.apply_insert(&mut token, k, &v).unwrap());
                undo.push(UndoRec {
                    key: k,
                    img: UndoImage::Remove,
                });
                ops.push(Op::Insert(k, v.into_boxed_slice()));
            }
        } else {
            let v = format!("v-{thread}-{iter}-{i}").into_bytes();
            match h.strategy.apply_write(&mut token, k, &v) {
                Ok(old) => {
                    undo.push(UndoRec {
                        key: k,
                        img: UndoImage::Restore(old.expect("updates hit existing keys")),
                    });
                    ops.push(Op::Put(k, v.into_boxed_slice()));
                }
                Err(_) => {
                    // Key deleted by an earlier op of this txn or another
                    // txn's committed delete (duplicate key in our set
                    // after a delete). Skip.
                }
            }
        }
    }

    if rng.chance(p_abort) {
        undo.reverse();
        h.strategy.on_abort(&mut token, &undo);
    } else {
        let (seq, stamp) = h
            .log
            .append_commit(TxnId(thread * 1_000_000 + iter), ProcId(0), Arc::from(&b""[..]));
        h.strategy.on_commit(&mut token, seq, stamp);
        h.journal.entries.lock().push((seq, ops));
    }
    drop(guard);
    h.strategy.txn_end(token);
}

#[allow(clippy::too_many_arguments)]
fn stress(
    partial: bool,
    n_keys: u64,
    threads: u64,
    checkpoints: usize,
    p_insert_delete: f64,
    p_abort: f64,
    name: &str,
    seed: u64,
) {
    let h = Arc::new(build(partial, n_keys));
    let dir = Arc::new(dirs(name));
    if partial {
        // pCALC needs a full ancestor for recovery-chain materialization.
        h.strategy.write_base_checkpoint(&dir).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = SplitMix::new(seed * 1000 + t);
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    run_txn(&h, &mut rng, t, iter, n_keys, 4, p_insert_delete, p_abort);
                    iter += 1;
                }
            })
        })
        .collect();

    let mut stats = Vec::new();
    for _ in 0..checkpoints {
        std::thread::sleep(std::time::Duration::from_millis(30));
        stats.push(h.strategy.checkpoint(&NoopEnv, &dir).unwrap());
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // Verify every checkpoint against the journal prefix at its watermark.
    let metas = dir.scan().unwrap();
    assert!(!metas.is_empty());
    if partial {
        // Cumulatively materialize base + partials up to each id.
        let all = metas;
        let base = all
            .iter()
            .find(|m| m.kind == CheckpointKind::Full)
            .expect("base full checkpoint");
        for (i, upto) in all
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind == CheckpointKind::Partial)
        {
            let chain: Vec<_> = all[..=i]
                .iter()
                .filter(|m| m.kind == CheckpointKind::Partial)
                .cloned()
                .collect();
            let got = materialize_chain(base, &chain).unwrap();
            let expected = h.journal.state_at(&h.initial, upto.watermark);
            assert_eq!(
                got.len(),
                expected.len(),
                "partial chain through id {} size mismatch",
                upto.id
            );
            assert_eq!(got, expected, "partial chain through id {} diverged", upto.id);
        }
    } else {
        for meta in metas {
            let got = checkpoint_state(&meta);
            let expected = h.journal.state_at(&h.initial, meta.watermark);
            assert_eq!(
                got.len(),
                expected.len(),
                "checkpoint {} (watermark {}) size mismatch",
                meta.id,
                meta.watermark
            );
            assert_eq!(got, expected, "checkpoint {} diverged", meta.id);
        }
    }

    // Post-run hygiene: no leaked stable versions and, after everything
    // drained, memory is back to live-only.
    let m = h.strategy.memory();
    assert_eq!(
        m.extra_count, 0,
        "stable versions leaked after checkpoint cycles"
    );
}

#[test]
fn calc_full_updates_only() {
    stress(false, 200, 4, 3, 0.0, 0.0, "full-upd", 1);
}

#[test]
fn calc_full_with_inserts_and_deletes() {
    stress(false, 200, 4, 3, 0.4, 0.0, "full-insdel", 2);
}

#[test]
fn calc_full_with_aborts() {
    stress(false, 200, 4, 3, 0.3, 0.2, "full-abort", 3);
}

#[test]
fn pcalc_partial_updates_only() {
    stress(true, 200, 4, 4, 0.0, 0.0, "part-upd", 4);
}

#[test]
fn pcalc_partial_with_inserts_and_deletes() {
    stress(true, 200, 4, 4, 0.4, 0.0, "part-insdel", 5);
}

#[test]
fn pcalc_partial_with_aborts() {
    stress(true, 200, 4, 4, 0.3, 0.2, "part-abort", 6);
}

#[test]
fn calc_checkpoint_of_quiet_system_equals_state() {
    // No concurrent writers at all: checkpoint == full current state.
    let h = build(false, 50);
    let dir = dirs("quiet");
    let stats = h.strategy.checkpoint(&NoopEnv, &dir).unwrap();
    assert_eq!(stats.records, 50);
    let metas = dir.scan().unwrap();
    let got = checkpoint_state(&metas[0]);
    assert_eq!(got, h.initial);
}

#[test]
fn pcalc_quiet_system_produces_empty_partial() {
    let h = build(true, 50);
    let dir = dirs("quiet-partial");
    h.strategy.write_base_checkpoint(&dir).unwrap();
    let stats = h.strategy.checkpoint(&NoopEnv, &dir).unwrap();
    assert_eq!(
        stats.records, 0,
        "nothing changed since the base checkpoint"
    );
    assert_eq!(stats.kind, CheckpointKind::Partial);
}

#[test]
fn consecutive_checkpoints_remain_consistent() {
    // Several back-to-back cycles on the same strategy instance: polarity
    // swaps and bit hygiene must survive arbitrarily many cycles.
    let h = build(false, 100);
    let dir = dirs("consecutive");
    for round in 0..5u64 {
        // Mutate a few records between checkpoints (single-threaded).
        let mut token = h.strategy.txn_begin();
        for k in 0..10 {
            let v = format!("round-{round}-{k}").into_bytes();
            h.strategy
                .apply_write(&mut token, Key(k), &v)
                .unwrap();
        }
        let (seq, stamp) = h
            .log
            .append_commit(TxnId(round), ProcId(0), Arc::from(&b""[..]));
        h.strategy.on_commit(&mut token, seq, stamp);
        h.strategy.txn_end(token);

        h.strategy.checkpoint(&NoopEnv, &dir).unwrap();
    }
    let metas = dir.scan().unwrap();
    assert_eq!(metas.len(), 5);
    // The newest checkpoint reflects the final state.
    let last = metas.last().unwrap();
    let got = checkpoint_state(last);
    for k in 0..10u64 {
        assert_eq!(
            got[&Key(k)],
            format!("round-4-{k}").into_bytes().into_boxed_slice()
        );
    }
    for k in 10..100u64 {
        assert_eq!(got[&Key(k)], h.initial[&Key(k)]);
    }
}

/// Spins until the commit log reports `phase`, panicking after ~10s.
fn spin_until_phase(log: &CommitLog, phase: calc_common::phase::Phase) {
    for _ in 0..1_000_000 {
        if log.current_stamp().phase == phase {
            return;
        }
        std::thread::yield_now();
    }
    panic!("phase {phase:?} never reached");
}

/// Regression: a PREPARE-started transaction that inserts a key and then
/// updates it in the same transaction must not copy its *own uncommitted
/// insert* as a provisional pre-image. When such a transaction commits in
/// RESOLVE (after the point of consistency), the commit hook marks its
/// slots; with the bogus stable version in place the capture scan would
/// emit the transaction's own value as the "point value" — resurrecting a
/// key that was absent at the point. Found by the conformance harness
/// (pCALC ghost record under checkpoint contention); affects full CALC
/// identically.
fn self_insert_preimage_case(partial: bool) {
    use calc_common::phase::Phase;
    let h = Arc::new(build(partial, 4));
    let dir = Arc::new(dirs(if partial { "selfins-p" } else { "selfins-f" }));
    if partial {
        h.strategy.write_base_checkpoint(&dir).unwrap();
    }
    let ghost = Key(100); // absent at the point of consistency

    // Rest-started holder: keeps the PREPARE drain open so the next
    // txn_begin is guaranteed to land in PREPARE.
    let t0 = h.strategy.txn_begin();
    let (hc, dc) = (h.clone(), dir.clone());
    let checkpointer =
        std::thread::spawn(move || hc.strategy.checkpoint(&NoopEnv, &dc).unwrap().watermark);

    spin_until_phase(&h.log, Phase::Prepare);
    let mut t1 = h.strategy.txn_begin();
    assert_eq!(t1.stamp.phase, Phase::Prepare);
    assert!(h.strategy.apply_insert(&mut t1, ghost, b"own-insert").unwrap());
    h.strategy.apply_write(&mut t1, ghost, b"own-update").unwrap();

    // Release the PREPARE drain; the checkpointer takes the point of
    // consistency and then blocks in the RESOLVE drain on t1.
    h.strategy.txn_end(t0);
    spin_until_phase(&h.log, Phase::Resolve);
    let (seq, stamp) = h
        .log
        .append_commit(TxnId(0xBAD), ProcId(0), Arc::from(&b""[..]));
    assert_eq!(stamp.phase, Phase::Resolve);
    h.strategy.on_commit(&mut t1, seq, stamp);
    h.strategy.txn_end(t1);

    let watermark = checkpointer.join().unwrap();
    assert!(seq > watermark, "commit must land after the point");

    // The checkpoint file at `watermark` must not mention the ghost key
    // (neither a value nor a tombstone — it never existed at the point).
    let metas = dir.scan().unwrap();
    let state = checkpoint_state(metas.last().unwrap());
    assert!(
        !state.contains_key(&ghost),
        "transaction's own uncommitted insert leaked into the checkpoint"
    );
    // The live record itself survives with the final value.
    assert_eq!(
        h.strategy.get(ghost).as_deref(),
        Some(&b"own-update"[..]),
        "live record lost"
    );
}

#[test]
fn full_checkpoint_excludes_self_inserted_preimage() {
    self_insert_preimage_case(false);
}

#[test]
fn partial_checkpoint_excludes_self_inserted_preimage() {
    self_insert_preimage_case(true);
}

/// Regression: a transaction that *starts* during COMPLETE is never
/// drained before `SwapAvailableAndNotAvailable`, so its insert's status
/// bit is written under the old polarity. Without swap-generation
/// settling, the bit read "available with no stable version" after the
/// swap and the *next* capture scan dropped the record from a checkpoint
/// whose watermark covered its commit. Found by the conformance harness
/// (TPC-C order rows missing from full CALC checkpoints).
fn complete_started_insert_case(partial: bool) {
    use calc_common::phase::Phase;
    let h = Arc::new(build(partial, 4));
    let dir = Arc::new(dirs(if partial { "lateins-p" } else { "lateins-f" }));
    if partial {
        h.strategy.write_base_checkpoint(&dir).unwrap();
    }
    let key = Key(300);

    let t0 = h.strategy.txn_begin(); // Rest-started: holds the PREPARE drain
    let (hc, dc) = (h.clone(), dir.clone());
    let checkpointer =
        std::thread::spawn(move || hc.strategy.checkpoint(&NoopEnv, &dc).unwrap().watermark);

    spin_until_phase(&h.log, Phase::Prepare);
    let t1 = h.strategy.txn_begin(); // Prepare-started: holds the RESOLVE drain
    h.strategy.txn_end(t0);
    spin_until_phase(&h.log, Phase::Resolve);
    let t2 = h.strategy.txn_begin(); // Resolve-started: holds the COMPLETE drain
    h.strategy.txn_end(t1);
    spin_until_phase(&h.log, Phase::Complete);

    // The polarity swap (full) / cleanup (partial) cannot run until t2
    // ends, so this insert deterministically lands inside the COMPLETE
    // window, before the swap.
    let mut t3 = h.strategy.txn_begin();
    assert_eq!(t3.stamp.phase, Phase::Complete);
    assert!(h.strategy.apply_insert(&mut t3, key, b"late-insert").unwrap());
    let (seq, stamp) = h
        .log
        .append_commit(TxnId(0x1A7E), ProcId(0), Arc::from(&b""[..]));
    assert_eq!(stamp.phase, Phase::Complete);
    h.strategy.on_commit(&mut t3, seq, stamp);
    h.strategy.txn_end(t3);
    h.strategy.txn_end(t2);
    let wm1 = checkpointer.join().unwrap();
    assert!(seq > wm1, "commit must be outside the first checkpoint");

    // The next checkpoint's watermark covers the commit, so the record
    // must be captured.
    let stats = h.strategy.checkpoint(&NoopEnv, &dir).unwrap();
    assert!(stats.watermark >= seq);
    let metas = dir.scan().unwrap();
    let state = checkpoint_state(metas.last().unwrap());
    assert_eq!(
        state.get(&key).map(|v| &v[..]),
        Some(&b"late-insert"[..]),
        "COMPLETE-started insert missing from the covering checkpoint"
    );
}

#[test]
fn full_checkpoint_captures_complete_started_insert() {
    complete_started_insert_case(false);
}

#[test]
fn partial_checkpoint_captures_complete_started_insert() {
    complete_started_insert_case(true);
}

#[test]
fn memory_returns_to_baseline_after_checkpoint() {
    // CALC's memory claim (Figure 6): extra copies only exist during the
    // checkpoint window.
    let h = Arc::new(build(false, 500));
    let dir = dirs("membase");
    let stop = Arc::new(AtomicBool::new(false));
    let h2 = h.clone();
    let stop2 = stop.clone();
    let writer = std::thread::spawn(move || {
        let mut rng = SplitMix::new(77);
        let mut iter = 0;
        while !stop2.load(Ordering::Relaxed) {
            run_txn(&h2, &mut rng, 0, iter, 500, 8, 0.0, 0.0);
            iter += 1;
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    let before = h.strategy.memory();
    assert_eq!(before.extra_count, 0, "no stables outside checkpoint window");
    h.strategy.checkpoint(&NoopEnv, &dir).unwrap();
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let after = h.strategy.memory();
    assert_eq!(after.extra_count, 0, "stables all erased by capture");
    assert_eq!(after.live_count, 500);
}
