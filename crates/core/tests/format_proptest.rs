//! Randomized tests for the checkpoint file format and the
//! partial-checkpoint merge semantics, generated from seeded `SplitMix`
//! streams (the offline build has no proptest). Deterministic per seed;
//! failures print the seed.

use std::collections::BTreeMap;
use std::sync::Arc;

use calc_common::rng::SplitMix;
use calc_common::types::{CommitSeq, Key, Value};
use calc_core::file::{CheckpointKind, CheckpointReader, CheckpointWriter, RecordEntry};
use calc_core::manifest::CheckpointDir;
use calc_core::merge::{apply_entry, collapse, materialize_chain};
use calc_core::throttle::Throttle;
use calc_core::Codec;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "calc-format-prop-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

#[derive(Clone, Debug)]
enum Entry {
    Value(u64, Vec<u8>),
    Tombstone(u64),
}

fn gen_bytes(rng: &mut SplitMix, max_len: u64) -> Vec<u8> {
    let len = rng.next_below(max_len) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn gen_entry(rng: &mut SplitMix) -> Entry {
    // 4:1 value-to-tombstone ratio, matching the original distribution.
    if rng.next_below(5) < 4 {
        Entry::Value(rng.next_u64(), gen_bytes(rng, 200))
    } else {
        Entry::Tombstone(rng.next_u64())
    }
}

const SEED_BASE: u64 = 0xf02a_7001_0000_0000;

/// Arbitrary record sequences round-trip through the file format
/// byte-for-byte, in order.
#[test]
fn file_format_roundtrips() {
    for case in 0..48u64 {
        let seed = SEED_BASE ^ case;
        let mut rng = SplitMix::new(seed);
        let entries: Vec<Entry> = {
            let n = rng.next_below(80) as usize;
            (0..n).map(|_| gen_entry(&mut rng)).collect()
        };
        let id = rng.next_u64();
        let watermark = rng.next_u64();
        let partial = rng.chance(0.5);

        let path = tmp("rt");
        let kind = if partial {
            CheckpointKind::Partial
        } else {
            CheckpointKind::Full
        };
        let mut w = CheckpointWriter::create(
            &path,
            kind,
            id,
            CommitSeq(watermark),
            Arc::new(Throttle::unlimited()),
        )
        .unwrap();
        for e in &entries {
            match e {
                Entry::Value(k, v) => w.write_record(Key(*k), v).unwrap(),
                Entry::Tombstone(k) => w.write_tombstone(Key(*k)).unwrap(),
            }
        }
        let summary = w.finish().unwrap();
        assert_eq!(summary.records as usize, entries.len(), "seed {seed:#x}");

        let r = CheckpointReader::open(&path).unwrap();
        let h = r.header();
        assert_eq!(h.id, id, "seed {seed:#x}");
        assert_eq!(h.watermark, CommitSeq(watermark), "seed {seed:#x}");
        assert_eq!(h.kind, kind, "seed {seed:#x}");
        let got = r.read_all().unwrap();
        assert_eq!(got.len(), entries.len(), "seed {seed:#x}");
        for (g, e) in got.iter().zip(entries.iter()) {
            match (g, e) {
                (RecordEntry::Value(k, v), Entry::Value(ek, ev)) => {
                    assert_eq!(k.0, *ek, "seed {seed:#x}");
                    assert_eq!(&v[..], &ev[..], "seed {seed:#x}");
                }
                (RecordEntry::Tombstone(k), Entry::Tombstone(ek)) => {
                    assert_eq!(k.0, *ek, "seed {seed:#x}");
                }
                _ => panic!("seed {seed:#x}: entry kind mismatch"),
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Truncating a finished file at ANY byte boundary makes it invalid
/// (open fails) or, at minimum, never yields wrong data silently.
#[test]
fn any_truncation_is_detected() {
    for case in 0..48u64 {
        let seed = SEED_BASE ^ (0x100 + case);
        let mut rng = SplitMix::new(seed);
        let n_records = 1 + rng.next_below(19) as usize;
        let cut_frac = rng.next_f64();

        let path = tmp("trunc");
        let mut w = CheckpointWriter::create(
            &path,
            CheckpointKind::Full,
            1,
            CommitSeq(1),
            Arc::new(Throttle::unlimited()),
        )
        .unwrap();
        for k in 0..n_records as u64 {
            w.write_record(Key(k), &[k as u8; 33]).unwrap();
        }
        w.finish().unwrap();
        let data = std::fs::read(&path).unwrap();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        if cut >= data.len() {
            // Cutting nothing is the valid file; skip this case.
            std::fs::remove_file(&path).ok();
            continue;
        }
        std::fs::write(&path, &data[..cut]).unwrap();
        match CheckpointReader::open(&path) {
            Err(_) => {} // rejected at open: good
            Ok(r) => {
                // Footer bytes happened to survive? Only possible if the
                // cut removed nothing meaningful — then reading must
                // still fail (CRC) or produce exactly the full content.
                match r.read_all() {
                    Err(_) => {}
                    Ok(entries) => {
                        assert_eq!(entries.len(), n_records, "seed {seed:#x}");
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// merge::collapse is semantically identical to sequential map replay:
/// full ∘ partial₁ ∘ … ∘ partialₙ.
#[test]
fn collapse_equals_model_replay() {
    for case in 0..48u64 {
        let seed = SEED_BASE ^ (0x200 + case);
        let mut rng = SplitMix::new(seed);
        let base: BTreeMap<u64, Vec<u8>> = {
            let n = rng.next_below(16) as usize;
            (0..n)
                .map(|_| (rng.next_below(32), gen_bytes(&mut rng, 24)))
                .collect()
        };
        let partials: Vec<Vec<Entry>> = {
            let n = 1 + rng.next_below(4) as usize;
            (0..n)
                .map(|_| {
                    let m = rng.next_below(12) as usize;
                    (0..m)
                        // Restrict keys to a small space so overlaps happen.
                        .map(|_| match gen_entry(&mut rng) {
                            Entry::Value(k, v) => Entry::Value(k % 32, v),
                            Entry::Tombstone(k) => Entry::Tombstone(k % 32),
                        })
                        .collect()
                })
                .collect()
        };

        let root = tmp("collapse");
        let dir = CheckpointDir::open(&root, Arc::new(Throttle::unlimited())).unwrap();
        // Base full checkpoint.
        let mut p = dir.begin(CheckpointKind::Full, 0, CommitSeq(0)).unwrap();
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        for (k, v) in &base {
            p.writer().write_record(Key(*k), v).unwrap();
            model.insert(Key(*k), v.clone().into_boxed_slice());
        }
        p.publish().unwrap();
        // Partials.
        for (i, entries) in partials.iter().enumerate() {
            let id = i as u64 + 1;
            let mut p = dir.begin(CheckpointKind::Partial, id, CommitSeq(id)).unwrap();
            for e in entries {
                match e {
                    Entry::Value(k, v) => {
                        p.writer().write_record(Key(*k), v).unwrap();
                        apply_entry(
                            &mut model,
                            RecordEntry::Value(Key(*k), v.clone().into_boxed_slice()),
                        );
                    }
                    Entry::Tombstone(k) => {
                        p.writer().write_tombstone(Key(*k)).unwrap();
                        apply_entry(&mut model, RecordEntry::Tombstone(Key(*k)));
                    }
                }
            }
            p.publish().unwrap();
        }
        // Collapse and compare to the model.
        collapse(&dir).unwrap().unwrap();
        let (full, rest) = dir.recovery_chain().unwrap().unwrap();
        assert!(rest.is_empty(), "seed {seed:#x}");
        let got = materialize_chain(&full, &[]).unwrap();
        assert_eq!(got, model, "seed {seed:#x}");
        std::fs::remove_dir_all(&root).ok();
    }
}

/// Arbitrary record batches round-trip through the framed block format
/// across every codec and part count, including empty parts and
/// zero/one-byte records (ISSUE 6). Order and bytes are preserved
/// part-by-part, and the published manifest reports the codec.
#[test]
fn compressed_parts_roundtrip_across_codecs() {
    for case in 0..48u64 {
        let seed = SEED_BASE ^ (0x300 + case);
        let mut rng = SplitMix::new(seed);
        let codec = if rng.chance(0.5) { Codec::Rle } else { Codec::None };
        let parts = 1 + rng.next_below(4) as usize;
        let batches: Vec<Vec<Entry>> = (0..parts)
            .map(|_| {
                if rng.chance(0.15) {
                    return Vec::new(); // empty-part edge
                }
                let n = 1 + rng.next_below(60) as usize;
                (0..n)
                    .map(|_| match rng.next_below(4) {
                        // 1-byte and 0-byte values stress block boundaries.
                        0 => Entry::Value(rng.next_u64(), vec![rng.next_u64() as u8]),
                        1 => Entry::Value(rng.next_u64(), Vec::new()),
                        // Long uniform runs stress the RLE op encoder.
                        2 => Entry::Value(
                            rng.next_u64(),
                            vec![0xab; 1 + rng.next_below(300) as usize],
                        ),
                        _ => gen_entry(&mut rng),
                    })
                    .collect()
            })
            .collect();

        let root = tmp("codec-parts");
        let dir = CheckpointDir::open(&root, Arc::new(Throttle::unlimited())).unwrap();
        dir.set_codec(codec);
        let id = 7u64;
        let (pending, mut writers) = dir
            .begin_parts(CheckpointKind::Full, id, CommitSeq(42), parts)
            .unwrap();
        for (k, batch) in batches.iter().enumerate() {
            for e in batch {
                match e {
                    Entry::Value(key, v) => writers[k].write_record(Key(*key), v).unwrap(),
                    Entry::Tombstone(key) => writers[k].write_tombstone(Key(*key)).unwrap(),
                }
            }
        }
        let summary = pending.publish(writers).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(summary.records as usize, total, "seed {seed:#x}");
        if codec == Codec::None {
            assert_eq!(summary.raw_bytes, summary.bytes, "seed {seed:#x}");
        }

        let metas = dir.scan().unwrap();
        let meta = metas.iter().find(|m| m.id == id).expect("cycle visible");
        assert_eq!(meta.codec, codec, "seed {seed:#x}");

        for (k, batch) in batches.iter().enumerate() {
            let path = root.join(CheckpointDir::part_file_name(id, CheckpointKind::Full, k));
            let r = CheckpointReader::open(&path).unwrap();
            let got = r.read_all().unwrap();
            assert_eq!(got.len(), batch.len(), "seed {seed:#x} part {k}");
            for (g, e) in got.iter().zip(batch.iter()) {
                match (g, e) {
                    (RecordEntry::Value(gk, gv), Entry::Value(ek, ev)) => {
                        assert_eq!(gk.0, *ek, "seed {seed:#x}");
                        assert_eq!(&gv[..], &ev[..], "seed {seed:#x}");
                    }
                    (RecordEntry::Tombstone(gk), Entry::Tombstone(ek)) => {
                        assert_eq!(gk.0, *ek, "seed {seed:#x}");
                    }
                    _ => panic!("seed {seed:#x}: entry kind mismatch"),
                }
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
