//! Property-based tests for the checkpoint file format and the
//! partial-checkpoint merge semantics.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use calc_common::types::{CommitSeq, Key, Value};
use calc_core::file::{CheckpointKind, CheckpointReader, CheckpointWriter, RecordEntry};
use calc_core::manifest::CheckpointDir;
use calc_core::merge::{apply_entry, collapse, materialize_chain};
use calc_core::throttle::Throttle;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "calc-format-prop-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

#[derive(Clone, Debug)]
enum Entry {
    Value(u64, Vec<u8>),
    Tombstone(u64),
}

fn entry_strategy() -> impl Strategy<Value = Entry> {
    prop_oneof![
        4 => (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(k, v)| Entry::Value(k, v)),
        1 => any::<u64>().prop_map(Entry::Tombstone),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary record sequences round-trip through the file format
    /// byte-for-byte, in order.
    #[test]
    fn file_format_roundtrips(
        entries in proptest::collection::vec(entry_strategy(), 0..80),
        id in any::<u64>(),
        watermark in any::<u64>(),
        partial in any::<bool>(),
    ) {
        let path = tmp("rt");
        let kind = if partial { CheckpointKind::Partial } else { CheckpointKind::Full };
        let mut w = CheckpointWriter::create(
            &path, kind, id, CommitSeq(watermark), Arc::new(Throttle::unlimited()),
        ).unwrap();
        for e in &entries {
            match e {
                Entry::Value(k, v) => w.write_record(Key(*k), v).unwrap(),
                Entry::Tombstone(k) => w.write_tombstone(Key(*k)).unwrap(),
            }
        }
        let (count, _) = w.finish().unwrap();
        prop_assert_eq!(count as usize, entries.len());

        let r = CheckpointReader::open(&path).unwrap();
        let h = r.header();
        prop_assert_eq!(h.id, id);
        prop_assert_eq!(h.watermark, CommitSeq(watermark));
        prop_assert_eq!(h.kind, kind);
        let got = r.read_all().unwrap();
        prop_assert_eq!(got.len(), entries.len());
        for (g, e) in got.iter().zip(entries.iter()) {
            match (g, e) {
                (RecordEntry::Value(k, v), Entry::Value(ek, ev)) => {
                    prop_assert_eq!(k.0, *ek);
                    prop_assert_eq!(&v[..], &ev[..]);
                }
                (RecordEntry::Tombstone(k), Entry::Tombstone(ek)) => {
                    prop_assert_eq!(k.0, *ek);
                }
                _ => prop_assert!(false, "entry kind mismatch"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncating a finished file at ANY byte boundary makes it invalid
    /// (open fails) or, at minimum, never yields wrong data silently.
    #[test]
    fn any_truncation_is_detected(
        n_records in 1usize..20,
        cut_frac in 0.0f64..1.0,
    ) {
        let path = tmp("trunc");
        let mut w = CheckpointWriter::create(
            &path, CheckpointKind::Full, 1, CommitSeq(1), Arc::new(Throttle::unlimited()),
        ).unwrap();
        for k in 0..n_records as u64 {
            w.write_record(Key(k), &[k as u8; 33]).unwrap();
        }
        w.finish().unwrap();
        let data = std::fs::read(&path).unwrap();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < data.len()); // cutting nothing is the valid file
        std::fs::write(&path, &data[..cut]).unwrap();
        match CheckpointReader::open(&path) {
            Err(_) => {} // rejected at open: good
            Ok(r) => {
                // Footer bytes happened to survive? Only possible if the
                // cut removed nothing meaningful — then reading must
                // still fail (CRC) or produce exactly the full content.
                match r.read_all() {
                    Err(_) => {}
                    Ok(entries) => {
                        prop_assert_eq!(entries.len(), n_records);
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// merge::collapse is semantically identical to sequential map replay:
    /// full ∘ partial₁ ∘ … ∘ partialₙ.
    #[test]
    fn collapse_equals_model_replay(
        base in proptest::collection::btree_map(0u64..32, proptest::collection::vec(any::<u8>(), 0..24), 0..16),
        partials in proptest::collection::vec(
            proptest::collection::vec(entry_strategy().prop_map(|e| match e {
                // Restrict keys to a small space so overlaps happen.
                Entry::Value(k, v) => Entry::Value(k % 32, v),
                Entry::Tombstone(k) => Entry::Tombstone(k % 32),
            }), 0..12),
            1..5,
        ),
    ) {
        let root = tmp("collapse");
        let dir = CheckpointDir::open(&root, Arc::new(Throttle::unlimited())).unwrap();
        // Base full checkpoint.
        let mut p = dir.begin(CheckpointKind::Full, 0, CommitSeq(0)).unwrap();
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        for (k, v) in &base {
            p.writer().write_record(Key(*k), v).unwrap();
            model.insert(Key(*k), v.clone().into_boxed_slice());
        }
        p.publish().unwrap();
        // Partials.
        for (i, entries) in partials.iter().enumerate() {
            let id = i as u64 + 1;
            let mut p = dir.begin(CheckpointKind::Partial, id, CommitSeq(id)).unwrap();
            for e in entries {
                match e {
                    Entry::Value(k, v) => {
                        p.writer().write_record(Key(*k), v).unwrap();
                        apply_entry(&mut model, RecordEntry::Value(Key(*k), v.clone().into_boxed_slice()));
                    }
                    Entry::Tombstone(k) => {
                        p.writer().write_tombstone(Key(*k)).unwrap();
                        apply_entry(&mut model, RecordEntry::Tombstone(Key(*k)));
                    }
                }
            }
            p.publish().unwrap();
        }
        // Collapse and compare to the model.
        collapse(&dir).unwrap().unwrap();
        let (full, rest) = dir.recovery_chain().unwrap().unwrap();
        prop_assert!(rest.is_empty());
        let got = materialize_chain(&full, &[]).unwrap();
        prop_assert_eq!(got, model);
        std::fs::remove_dir_all(&root).ok();
    }
}
