//! Seeded schedule perturbation for concurrency stress tests.
//!
//! The interesting concurrency bugs in a checkpointing engine live in
//! windows a few instructions wide: between a lock grant and the first
//! read, between a live write and its stable-version install, between a
//! phase-transition token and the commits racing past it. Wall-clock
//! scheduling almost never lands a thread inside those windows, so a
//! stress test that merely "runs a lot of threads" explores a tiny,
//! repetitive corner of the interleaving space.
//!
//! This module plants cheap *jitter points* at those windows. When
//! disabled (the default, and the only state production code ever sees)
//! a point is one relaxed atomic load and a predicted-untaken branch.
//! When a conformance test enables perturbation with a seed, each point
//! consults a per-thread splitmix64 stream — keyed off the global seed,
//! a per-thread salt, the site, and a per-thread visit counter — and
//! either does nothing, spins, yields, or briefly sleeps. The *decision
//! sequence* is a pure function of the seed, so a failing run's schedule
//! pressure is reproducible by seed even though the OS scheduler still
//! has the final word on interleaving.
//!
//! The global enable/seed state is process-wide; test harnesses that use
//! it must serialize runs (see `calc-conform`).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
/// Monotone id source for per-thread salts.
static NEXT_THREAD_SALT: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_SALT: Cell<u64> = const { Cell::new(0) };
    static VISITS: Cell<u64> = const { Cell::new(0) };
}

/// A place in the engine where schedule jitter may be injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Site {
    /// Just before a lock-manager grant completes (the new holder is about
    /// to proceed).
    LockGrant,
    /// Just before a lock release wakes waiters.
    LockRelease,
    /// Just before a live→stable version copy is installed in the dual
    /// store.
    StableInstall,
    /// Just after a checkpoint phase-transition token is appended.
    PhaseTransition,
    /// Owner hand-off points of the shard-owned executor: a request
    /// dispatched to its owning worker, a fence participant parking, and
    /// a coordinator releasing its fence.
    OwnerHandoff,
}

impl Site {
    #[inline]
    fn salt(self) -> u64 {
        match self {
            Site::LockGrant => 0x9e37_79b9_0000_0001,
            Site::LockRelease => 0x9e37_79b9_0000_0002,
            Site::StableInstall => 0x9e37_79b9_0000_0003,
            Site::PhaseTransition => 0x9e37_79b9_0000_0004,
            Site::OwnerHandoff => 0x9e37_79b9_0000_0005,
        }
    }
}

/// Enables perturbation process-wide with the given seed.
pub fn enable(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables perturbation process-wide.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether perturbation is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A jitter point. Call this at a scheduling-sensitive site; it is free
/// (one relaxed load) unless a test has called [`enable`].
#[inline]
pub fn point(site: Site) {
    if ENABLED.load(Ordering::Relaxed) {
        jitter(site);
    }
}

#[inline(always)]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cold]
fn jitter(site: Site) {
    let salt = THREAD_SALT.with(|s| {
        if s.get() == 0 {
            s.set(NEXT_THREAD_SALT.fetch_add(1, Ordering::Relaxed));
        }
        s.get()
    });
    let visit = VISITS.with(|v| {
        let n = v.get();
        v.set(n.wrapping_add(1));
        n
    });
    let h = mix(
        SEED.load(Ordering::Relaxed)
            ^ site.salt()
            ^ salt.wrapping_mul(0xd6e8_feb8_6659_fd93)
            ^ visit.rotate_left(32),
    );
    // 1/4 yield, 1/8 spin ≤ 256 iterations, 1/32 sleep ≤ 100 µs; the rest
    // fall through untouched. The mix keeps the pressure high enough to
    // shuffle interleavings without collapsing throughput.
    match h & 0x1f {
        0..=7 => std::thread::yield_now(),
        8..=11 => {
            let spins = (h >> 8) & 0xff;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        12 => {
            let micros = (h >> 8) % 100;
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_points_are_noops() {
        assert!(!is_enabled());
        for _ in 0..1000 {
            point(Site::LockGrant);
            point(Site::StableInstall);
        }
    }

    #[test]
    fn enable_disable_roundtrip() {
        enable(42);
        assert!(is_enabled());
        for _ in 0..200 {
            point(Site::PhaseTransition);
            point(Site::LockRelease);
        }
        disable();
        assert!(!is_enabled());
    }
}
