//! A log-bucketed latency histogram (HDR-style).
//!
//! Figure 5 of the paper plots latency CDFs spanning five orders of
//! magnitude (sub-millisecond transactions up to multi-second queueing
//! collapse during quiesce periods). A linear histogram cannot cover that
//! range; this one uses 16 sub-buckets per power of two, giving ≤ ~6%
//! relative error per bucket across the full `u64` nanosecond range, with
//! lock-free recording from worker threads.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BUCKET_BITS: u32 = 4; // 16 sub-buckets per octave
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
const N_BUCKETS: usize = ((64 - SUB_BUCKET_BITS as usize) << SUB_BUCKET_BITS) + SUB_BUCKETS as usize;

/// Concurrent histogram over `u64` values (typically nanoseconds).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
    let mantissa = (value >> (exp - SUB_BUCKET_BITS)) & (SUB_BUCKETS - 1);
    (((exp - SUB_BUCKET_BITS + 1) as u64) * SUB_BUCKETS + mantissa) as usize
}

/// Representative (lower-bound) value for a bucket.
#[inline]
fn bucket_floor(index: usize) -> u64 {
    let idx = index as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let octave = idx / SUB_BUCKETS - 1;
    let mantissa = idx % SUB_BUCKETS;
    (SUB_BUCKETS + mantissa) << octave
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Maximum observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `[0,1]` (bucket lower bound; 0 if empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_floor(i);
            }
        }
        self.max()
    }

    /// Full CDF as `(value, cumulative_fraction)` pairs over non-empty
    /// buckets — the series plotted in Figure 5.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let total = self.count();
        if total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                seen += c;
                out.push((bucket_floor(i), seen as f64 / total as f64));
            }
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Clears all recorded data.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(n={}, mean={:.1}, p50={}, p99={}, max={})",
            self.count(),
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_nondecreasing() {
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 1_000_000, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < N_BUCKETS);
            last = idx;
        }
    }

    #[test]
    fn bucket_floor_is_lower_bound_within_6pct() {
        for v in [1u64, 10, 100, 12345, 999_999, 123_456_789] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v, "{floor} > {v}");
            assert!(
                (v - floor) as f64 / v as f64 <= 1.0 / 16.0 + 1e-9,
                "error too large for {v}: floor {floor}"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((450_000..=550_000).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((930_000..=1_000_000).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h = Histogram::new();
        for v in [5u64, 5, 10, 100, 100, 100, 5000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut last = 0.0;
        for &(_, frac) in &cdf {
            assert!(frac >= last);
            last = frac;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn empty_histogram_quantile_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.cdf().is_empty());
    }
}
