//! A tiny deterministic pseudo-random generator (splitmix64 / xoshiro256**)
//! for places where run-to-run reproducibility matters: workload key
//! generation, property-test scaffolding, and the deterministic replay
//! tests. (`rand` is used where statistical quality matters; this exists so
//! that core crates can stay dependency-light and tests can pin exact
//! sequences.)

/// xoshiro256** seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct SplitMix {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SplitMix {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut st = seed;
        SplitMix {
            s: std::array::from_fn(|_| splitmix64(&mut st)),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free-ish reduction (slight bias
        // is irrelevant at our bounds).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix::new(1);
        let mut b = SplitMix::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix::new(5);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
