//! A minimal virtual filesystem boundary for everything the engine
//! persists: checkpoint files, the command log, and the directory
//! operations (rename, remove, fsync) their durability arguments lean on.
//!
//! Production code uses [`OsVfs`], a passthrough to `std::fs` that adds
//! the one primitive std lacks: [`Vfs::sync_dir`], fsyncing a *directory*
//! so that renames and unlinks inside it are durable — POSIX makes a
//! `rename` atomic but not persistent until the parent directory's entry
//! array reaches disk.
//!
//! Tests use [`crate::simfs::SimVfs`], an in-memory filesystem that
//! models exactly which bytes and directory entries would survive a
//! crash at any instant, and can inject seeded faults (torn writes,
//! dropped fsyncs, crashes around rename) at a chosen operation index.

use std::fmt::Debug;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// A writable file handle. Writes are buffered/volatile until
/// [`VfsFile::sync`]; only synced bytes are guaranteed to survive a crash.
pub trait VfsFile: Send {
    /// Appends bytes (files are written append-only in this system).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Pushes buffered bytes to the file (OS page cache); NOT durable.
    fn flush(&mut self) -> io::Result<()>;
    /// Makes every byte written so far durable (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// A readable, seekable file handle.
pub trait VfsRead: Read + Seek + Send {}
impl<T: Read + Seek + Send> VfsRead for T {}

/// The filesystem operations the engine's durability story is built on.
pub trait Vfs: Send + Sync + Debug {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens a file for reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRead>>;
    /// Atomically renames `from` to `to` (same directory). Durable only
    /// after [`Vfs::sync_dir`] on the parent.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks a file. Durable only after [`Vfs::sync_dir`] on the parent.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Lists the files in a directory (full paths).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Fsyncs a directory, making completed renames/creates/removes of
    /// entries inside it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Current size of a file in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
}

/// Passthrough [`Vfs`] over the real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsVfs;

struct OsFile(BufWriter<File>);

impl VfsFile for OsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.flush()?;
        self.0.get_ref().sync_all()
    }
}

impl Vfs for OsVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OsFile(BufWriter::with_capacity(
            1 << 20,
            File::create(path)?,
        ))))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRead>> {
        Ok(Box::new(File::open(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        // Directory handles are not fsync-able on this platform; renames
        // are as durable as the OS makes them.
        Ok(())
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::SeekFrom;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "calc-vfs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn os_vfs_roundtrip() {
        let vfs = OsVfs;
        let d = tmpdir();
        let tmp = d.join(".tmp-file");
        let fin = d.join("file");
        {
            let mut f = vfs.create(&tmp).unwrap();
            f.write_all(b"hello ").unwrap();
            f.write_all(b"world").unwrap();
            f.sync().unwrap();
        }
        vfs.rename(&tmp, &fin).unwrap();
        vfs.sync_dir(&d).unwrap();
        assert_eq!(vfs.len(&fin).unwrap(), 11);
        let mut r = vfs.open_read(&fin).unwrap();
        let mut buf = String::new();
        r.read_to_string(&mut buf).unwrap();
        assert_eq!(buf, "hello world");
        r.seek(SeekFrom::Start(6)).unwrap();
        let mut tail = String::new();
        r.read_to_string(&mut tail).unwrap();
        assert_eq!(tail, "world");
        assert!(vfs.read_dir(&d).unwrap().contains(&fin));
        vfs.remove_file(&fin).unwrap();
        assert!(vfs.len(&fin).is_err());
    }
}
