//! Core identifier and value types shared across the workspace.

use std::fmt;

/// A record's primary key.
///
/// The storage engine is a single flat keyspace of 64-bit keys. Workloads
/// that need composite keys (TPC-C) bit-pack them into the `u64` with a
/// table tag in the high bits — see `calc-workload::tpcc::keys`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u64);

impl Key {
    /// Returns the raw 64-bit representation.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:#x})", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Key {
    #[inline]
    fn from(v: u64) -> Self {
        Key(v)
    }
}

/// An owned record value: a variable-length byte string.
///
/// Values are deliberately *owned copies* (`Box<[u8]>`), not refcounted
/// buffers. The paper's cost model charges CALC one live→stable memcpy per
/// record on the first post-checkpoint write (§2.2) and charges IPP/Zig-Zag
/// for full extra copies of the database (Figure 6); refcounted sharing
/// would silently erase both of those costs from our measurements.
pub type Value = Box<[u8]>;

/// Identifier of a transaction, assigned at submission time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Monotone position in the commit log. A checkpoint's *virtual point of
/// consistency* is expressed as a watermark of this type: every transaction
/// with a commit sequence ≤ the watermark is reflected in the checkpoint,
/// and none after.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct CommitSeq(pub u64);

impl CommitSeq {
    /// The sequence before any transaction has committed.
    pub const ZERO: CommitSeq = CommitSeq(0);

    /// Next sequence value.
    #[inline]
    pub fn next(self) -> CommitSeq {
        CommitSeq(self.0 + 1)
    }
}

impl fmt::Display for CommitSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_display() {
        let k = Key::from(0xdead_beef_u64);
        assert_eq!(k.raw(), 0xdead_beef);
        assert_eq!(format!("{k}"), "3735928559");
        assert_eq!(format!("{k:?}"), "Key(0xdeadbeef)");
    }

    #[test]
    fn commit_seq_ordering() {
        let a = CommitSeq(1);
        let b = a.next();
        assert!(b > a);
        assert_eq!(b, CommitSeq(2));
        assert_eq!(CommitSeq::ZERO.next(), CommitSeq(1));
    }

    #[test]
    fn key_ordering_matches_u64() {
        let mut keys = vec![Key(3), Key(1), Key(2)];
        keys.sort();
        assert_eq!(keys, vec![Key(1), Key(2), Key(3)]);
    }
}
