//! Cheap load signals and admission control.
//!
//! [`LoadSignal`] is a lock-free bundle of exponentially-weighted moving
//! averages (throughput, commit latency) plus gauges and counters
//! (in-flight requests, shed counts, capture yields) that the engine's
//! commit path and the server's request handlers feed. Everything is a
//! relaxed atomic: observations are a handful of instructions, readers
//! never block writers, and a lost update under a race only blurs a
//! signal that is approximate by design.
//!
//! [`Gate`] is the admission-control half: a bounded in-flight permit
//! counter with deadline-bounded acquisition. A request that cannot get a
//! permit before its queue deadline is *shed* — the caller answers
//! "busy" instead of queueing without bound — and the shed is counted on
//! the shared signal so operators and the checkpoint pacer see the
//! pressure.
//!
//! The derived [`LoadLevel`] is what adaptive checkpoint pacing consults:
//! capture workers reduce effective parallelism and yield their scan
//! quanta under [`LoadLevel::High`] and [`LoadLevel::Overload`] so
//! checkpointing costs bounded foreground throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Sentinel for "never recorded" in nanosecond slots.
const NEVER: u64 = u64::MAX;

/// Throughput-fold window: commits are counted per window and folded
/// into the tps EWMA when it closes.
const WINDOW: Duration = Duration::from_millis(100);

/// How long after the last admission-pressure event (a shed, or a waiter
/// blocked on a full gate) the signal still reports [`LoadLevel::Overload`].
const PRESSURE_HOLD: Duration = Duration::from_secs(1);

/// Coarse load bands derived from the signal — what the checkpoint pacer
/// and operators consume instead of raw EWMAs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadLevel {
    /// No traffic worth pacing around.
    Idle,
    /// Traffic well inside capacity.
    Normal,
    /// Approaching capacity: background work should start yielding.
    High,
    /// At or beyond capacity (or actively shedding): background work
    /// should get out of the way.
    Overload,
}

impl LoadLevel {
    /// Stable lowercase name (used by the HEALTH wire verb).
    pub fn as_str(self) -> &'static str {
        match self {
            LoadLevel::Idle => "idle",
            LoadLevel::Normal => "normal",
            LoadLevel::High => "high",
            LoadLevel::Overload => "overload",
        }
    }
}

impl std::fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared load signal: EWMA throughput and latency fed from the commit
/// path, an in-flight gauge fed from the admission gate, and shed/yield
/// counters. See the module docs for the accuracy contract (approximate,
/// race-tolerant, never blocking).
pub struct LoadSignal {
    started: Instant,
    /// Engine capacity estimate in commits/sec (0 = unknown). Set from
    /// configuration or a calibration run; the tps EWMA is judged
    /// against it.
    capacity_tps: AtomicU64,
    /// Requests currently inside the admission gate.
    inflight: AtomicU64,
    /// The gate's permit capacity (0 = unbounded), for ratio-based level
    /// derivation when no tps capacity is configured.
    inflight_capacity: AtomicU64,
    /// Start of the open throughput window (nanos since `started`).
    win_start_nanos: AtomicU64,
    /// Commits observed in the open window.
    win_commits: AtomicU64,
    /// Throughput EWMA, `f64` bits.
    tps_ewma_bits: AtomicU64,
    /// Commit-latency EWMA in microseconds (step 1/8).
    latency_ewma_us: AtomicU64,
    /// Requests shed by the admission gate (deadline expired).
    shed_requests: AtomicU64,
    /// Connections rejected by the connection cap.
    shed_connections: AtomicU64,
    /// Scan quanta the checkpoint capture path yielded under pressure.
    capture_yields: AtomicU64,
    /// Nanos-since-start of the last admission-pressure event.
    last_pressure_nanos: AtomicU64,
}

impl Default for LoadSignal {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadSignal {
    /// Fresh signal with no capacity estimate.
    pub fn new() -> Self {
        LoadSignal {
            started: Instant::now(),
            capacity_tps: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            inflight_capacity: AtomicU64::new(0),
            win_start_nanos: AtomicU64::new(0),
            win_commits: AtomicU64::new(0),
            tps_ewma_bits: AtomicU64::new(0f64.to_bits()),
            latency_ewma_us: AtomicU64::new(0),
            shed_requests: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            capture_yields: AtomicU64::new(0),
            last_pressure_nanos: AtomicU64::new(NEVER),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos().min((NEVER - 1) as u128) as u64
    }

    /// Records one committed transaction and its commit latency. Called
    /// from the engine's commit path: a couple of relaxed atomics, plus a
    /// window fold (one CAS) every ~100 ms per folding thread.
    pub fn observe_commit(&self, latency: Duration) {
        let us = (latency.as_micros() as u64).max(1);
        let prev = self.latency_ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 { us } else { prev - prev / 8 + us / 8 };
        self.latency_ewma_us.store(next.max(1), Ordering::Relaxed);

        self.win_commits.fetch_add(1, Ordering::Relaxed);
        let now = self.now_nanos();
        let start = self.win_start_nanos.load(Ordering::Relaxed);
        let elapsed = now.saturating_sub(start);
        if elapsed >= WINDOW.as_nanos() as u64 {
            // One racer folds the window; the rest keep counting. A lost
            // race loses at most one window's worth of smoothing.
            if self
                .win_start_nanos
                .compare_exchange(start, now, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let commits = self.win_commits.swap(0, Ordering::Relaxed);
                let tps = commits as f64 * 1e9 / elapsed as f64;
                let prev = f64::from_bits(self.tps_ewma_bits.load(Ordering::Relaxed));
                let folded = if prev == 0.0 { tps } else { prev * 0.7 + tps * 0.3 };
                self.tps_ewma_bits.store(folded.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// Smoothed throughput in commits/sec (0.0 until the first window
    /// folds). Stale-decays: if no window has folded for a while the
    /// reported value is scaled down so a burst that stopped does not
    /// read as sustained load forever.
    pub fn tps(&self) -> f64 {
        let ewma = f64::from_bits(self.tps_ewma_bits.load(Ordering::Relaxed));
        let idle = self
            .now_nanos()
            .saturating_sub(self.win_start_nanos.load(Ordering::Relaxed));
        // No fold for 10 windows: traffic stopped; halve per extra second.
        let stale = idle.saturating_sub(10 * WINDOW.as_nanos() as u64);
        if stale == 0 {
            return ewma;
        }
        ewma / (1.0 + stale as f64 / 1e9)
    }

    /// Smoothed commit latency in microseconds (0 until the first commit).
    pub fn latency_ewma_us(&self) -> u64 {
        self.latency_ewma_us.load(Ordering::Relaxed)
    }

    /// Sets the capacity estimate (commits/sec) the tps EWMA is judged
    /// against. 0 disables tps-based level derivation.
    pub fn set_capacity_tps(&self, tps: u64) {
        self.capacity_tps.store(tps, Ordering::Relaxed);
    }

    /// The configured capacity estimate (0 = unknown).
    pub fn capacity_tps(&self) -> u64 {
        self.capacity_tps.load(Ordering::Relaxed)
    }

    /// Sets the admission gate's permit capacity (0 = unbounded), for
    /// inflight-ratio level derivation. [`Gate::new`] calls this.
    pub fn set_inflight_capacity(&self, cap: u64) {
        self.inflight_capacity.store(cap, Ordering::Relaxed);
    }

    /// A request entered the admission gate.
    pub fn enter_inflight(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left the admission gate.
    pub fn exit_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently in flight.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// The admission gate shed a request (queue deadline expired).
    pub fn record_shed_request(&self) {
        self.shed_requests.fetch_add(1, Ordering::Relaxed);
        self.note_pressure();
    }

    /// Requests shed by the admission gate, lifetime total.
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests.load(Ordering::Relaxed)
    }

    /// The connection cap rejected a connect.
    pub fn record_shed_connection(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
        self.note_pressure();
    }

    /// Connections rejected by the cap, lifetime total.
    pub fn shed_connections(&self) -> u64 {
        self.shed_connections.load(Ordering::Relaxed)
    }

    /// A checkpoint capture worker yielded one scan quantum to foreground
    /// load.
    pub fn record_capture_yield(&self) {
        self.capture_yields.fetch_add(1, Ordering::Relaxed);
    }

    /// Capture scan quanta yielded under pressure, lifetime total.
    pub fn capture_yields(&self) -> u64 {
        self.capture_yields.load(Ordering::Relaxed)
    }

    /// Marks admission pressure now (a waiter blocked on a full gate or a
    /// shed); the level reads [`LoadLevel::Overload`] for a short hold
    /// window afterwards.
    pub fn note_pressure(&self) {
        self.last_pressure_nanos
            .store(self.now_nanos(), Ordering::Relaxed);
    }

    fn recent_pressure(&self) -> bool {
        match self.last_pressure_nanos.load(Ordering::Relaxed) {
            NEVER => false,
            n => self.now_nanos().saturating_sub(n) <= PRESSURE_HOLD.as_nanos() as u64,
        }
    }

    /// Derives the coarse load band: admission pressure (recent sheds or
    /// blocked waiters) always reads as overload; otherwise the tps EWMA
    /// is judged against the configured capacity, falling back to the
    /// in-flight/permit ratio when no capacity estimate is set.
    pub fn level(&self) -> LoadLevel {
        if self.recent_pressure() {
            return LoadLevel::Overload;
        }
        let capacity = self.capacity_tps();
        if capacity > 0 {
            let ratio = self.tps() / capacity as f64;
            return if ratio >= 1.0 {
                LoadLevel::Overload
            } else if ratio >= 0.75 {
                LoadLevel::High
            } else if ratio >= 0.05 {
                LoadLevel::Normal
            } else {
                LoadLevel::Idle
            };
        }
        let cap = self.inflight_capacity.load(Ordering::Relaxed);
        let inflight = self.inflight();
        if cap > 0 {
            if inflight >= cap {
                LoadLevel::Overload
            } else if inflight * 2 >= cap {
                LoadLevel::High
            } else if inflight > 0 {
                LoadLevel::Normal
            } else {
                LoadLevel::Idle
            }
        } else if inflight > 0 {
            LoadLevel::Normal
        } else {
            LoadLevel::Idle
        }
    }
}

impl std::fmt::Debug for LoadSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LoadSignal(level={}, tps={:.0}, latency_us={}, inflight={}, shed={})",
            self.level(),
            self.tps(),
            self.latency_ewma_us(),
            self.inflight(),
            self.shed_requests(),
        )
    }
}

/// Bounded in-flight admission gate with deadline-bounded acquisition.
/// `max = 0` means unbounded (the gate only maintains the in-flight
/// gauge). Dropping the returned [`Permit`] releases the slot.
pub struct Gate {
    max: usize,
    held: Mutex<usize>,
    freed: Condvar,
    signal: Arc<LoadSignal>,
}

impl Gate {
    /// A gate admitting at most `max` concurrent holders (0 = unbounded),
    /// publishing its gauge and shed counter on `signal`.
    pub fn new(max: usize, signal: Arc<LoadSignal>) -> Arc<Gate> {
        signal.set_inflight_capacity(max as u64);
        Arc::new(Gate {
            max,
            held: Mutex::new(0),
            freed: Condvar::new(),
            signal,
        })
    }

    /// Acquires a permit, waiting at most `deadline` for a slot. `None`
    /// means the request was shed (counted on the signal): answer busy,
    /// do not execute.
    pub fn try_acquire_for(self: &Arc<Self>, deadline: Duration) -> Option<Permit> {
        if self.max == 0 {
            self.signal.enter_inflight();
            return Some(Permit { gate: self.clone() });
        }
        let until = Instant::now() + deadline;
        let mut held = self.held.lock();
        while *held >= self.max {
            self.signal.note_pressure();
            let now = Instant::now();
            if now >= until {
                drop(held);
                self.signal.record_shed_request();
                return None;
            }
            self.freed.wait_for(&mut held, until - now);
        }
        *held += 1;
        drop(held);
        self.signal.enter_inflight();
        Some(Permit { gate: self.clone() })
    }

    /// The permit capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.max
    }

    /// Permits currently held.
    pub fn held(&self) -> usize {
        if self.max == 0 {
            self.signal.inflight() as usize
        } else {
            *self.held.lock()
        }
    }
}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gate({}/{})", self.held(), self.max)
    }
}

/// One admitted request's slot in a [`Gate`]; dropping it frees the slot
/// and wakes one waiter.
pub struct Permit {
    gate: Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.signal.exit_inflight();
        if self.gate.max != 0 {
            let mut held = self.gate.held.lock();
            *held = held.saturating_sub(1);
            drop(held);
            self.gate.freed.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ewma_tracks_and_smooths() {
        let s = LoadSignal::new();
        assert_eq!(s.latency_ewma_us(), 0);
        s.observe_commit(Duration::from_micros(800));
        assert_eq!(s.latency_ewma_us(), 800, "first sample seeds the EWMA");
        for _ in 0..64 {
            s.observe_commit(Duration::from_micros(100));
        }
        let settled = s.latency_ewma_us();
        assert!(
            (50..=220).contains(&settled),
            "EWMA must settle toward the new regime, got {settled}"
        );
    }

    #[test]
    fn tps_ewma_folds_windows_and_judges_capacity() {
        let s = LoadSignal::new();
        assert_eq!(s.level(), LoadLevel::Idle);
        s.set_capacity_tps(1_000);
        // ~25k commits across ≥2 window folds.
        for burst in 0..5 {
            for _ in 0..5_000 {
                s.observe_commit(Duration::from_micros(50));
            }
            let _ = burst;
            std::thread::sleep(Duration::from_millis(120));
        }
        assert!(s.tps() > 1_000.0, "tps EWMA {} must exceed capacity", s.tps());
        assert_eq!(s.level(), LoadLevel::Overload);
        // Against a huge capacity the same traffic is not overload.
        s.set_capacity_tps(100_000_000);
        assert!(s.level() <= LoadLevel::Normal);
    }

    #[test]
    fn inflight_ratio_derivation_without_capacity() {
        let signal = Arc::new(LoadSignal::new());
        let gate = Gate::new(4, signal.clone());
        assert_eq!(signal.level(), LoadLevel::Idle);
        let p1 = gate.try_acquire_for(Duration::from_millis(10)).unwrap();
        assert_eq!(signal.level(), LoadLevel::Normal);
        let _p2 = gate.try_acquire_for(Duration::from_millis(10)).unwrap();
        let _p3 = gate.try_acquire_for(Duration::from_millis(10)).unwrap();
        assert_eq!(signal.level(), LoadLevel::High, "3/4 permits is high");
        drop(p1);
        assert_eq!(signal.inflight(), 2);
    }

    #[test]
    fn gate_sheds_on_deadline_and_releases_on_drop() {
        let signal = Arc::new(LoadSignal::new());
        let gate = Gate::new(2, signal.clone());
        let p1 = gate.try_acquire_for(Duration::from_millis(5)).unwrap();
        let _p2 = gate.try_acquire_for(Duration::from_millis(5)).unwrap();
        assert_eq!(signal.inflight(), 2);
        // Full gate: the third acquisition must shed within its deadline.
        let t = Instant::now();
        assert!(gate.try_acquire_for(Duration::from_millis(20)).is_none());
        assert!(t.elapsed() >= Duration::from_millis(18));
        assert_eq!(signal.shed_requests(), 1);
        assert_eq!(
            signal.level(),
            LoadLevel::Overload,
            "a shed marks admission pressure"
        );
        // A freed permit admits a blocked waiter.
        let gate2 = gate.clone();
        let waiter = std::thread::spawn(move || {
            gate2.try_acquire_for(Duration::from_secs(10)).is_some()
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(p1);
        assert!(waiter.join().unwrap(), "freed slot must admit the waiter");
        assert_eq!(signal.shed_requests(), 1, "the admitted waiter is not a shed");
    }

    #[test]
    fn unbounded_gate_only_tracks_inflight() {
        let signal = Arc::new(LoadSignal::new());
        let gate = Gate::new(0, signal.clone());
        let permits: Vec<_> = (0..64)
            .map(|_| gate.try_acquire_for(Duration::ZERO).unwrap())
            .collect();
        assert_eq!(signal.inflight(), 64);
        drop(permits);
        assert_eq!(signal.inflight(), 0);
        assert_eq!(signal.shed_requests(), 0);
    }

    #[test]
    fn capture_yield_and_shed_connection_counters() {
        let s = LoadSignal::new();
        s.record_capture_yield();
        s.record_capture_yield();
        s.record_shed_connection();
        assert_eq!(s.capture_yields(), 2);
        assert_eq!(s.shed_connections(), 1);
        assert_eq!(s.level(), LoadLevel::Overload, "connection shed is pressure");
    }
}
