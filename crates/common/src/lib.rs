//! Shared primitives for the CALC checkpointing database.
//!
//! This crate contains the low-level, dependency-free building blocks that
//! every other crate in the workspace uses:
//!
//! * [`bitvec`] — atomic bit vectors, including the polarity-swapping
//!   variant that implements the paper's `SwapAvailableAndNotAvailable`
//!   trick (§2.2.5): after a checkpoint cycle every `stable_status` bit is
//!   left in the *available* state, and instead of scanning the whole
//!   vector to reset it, the *meaning* of 0/1 is flipped.
//! * [`bloom`] — a split-block bloom filter, one of the three dirty-key
//!   tracker designs evaluated in §2.3 of the paper.
//! * [`crc`] — CRC-32 (IEEE), used to checksum checkpoint files so that a
//!   crash mid-capture leaves a detectably-invalid file.
//! * [`hist`] — a log-bucketed latency histogram (HDR-style) used to
//!   produce the latency CDFs of Figure 5.
//! * [`striped`] — striped mutexes guarding per-record version data; the
//!   critical sections are a few instructions, preserving the paper's
//!   "no blocking synchronization" behaviour while being data-race-free.
//! * [`types`] — `Key`, record values, and small shared identifiers.
//! * [`rng`] — a tiny deterministic splitmix64 generator used where
//!   reproducibility across runs matters more than statistical quality.
//! * [`backoff`] — capped exponential retry backoff with deterministic
//!   (seeded) jitter, used by the supervised checkpoint service.
//! * [`load`] — cheap EWMA load signals ([`load::LoadSignal`]) and the
//!   bounded admission gate ([`load::Gate`]) behind overload shedding
//!   and load-aware checkpoint pacing.
//! * [`vfs`] — the filesystem trait everything durable is written
//!   through, with the [`vfs::OsVfs`] passthrough.
//! * [`simfs`] — a deterministic fault-injecting in-memory filesystem
//!   ([`simfs::SimVfs`]) for crash-recovery testing.
//! * [`perturb`] — seeded schedule-jitter points for concurrency stress
//!   (free when disabled; see `calc-conform`).
//! * [`mutation`] — test-only seeded-bug switches (behind the
//!   `mutation-hooks` feature) proving the conformance oracle has teeth.

#![warn(missing_docs)]

pub mod backoff;
pub mod bitvec;
pub mod bloom;
pub mod crc;
pub mod hist;
pub mod load;
#[cfg(feature = "mutation-hooks")]
pub mod mutation;
pub mod perturb;
pub mod phase;
pub mod rng;
pub mod simfs;
pub mod striped;
pub mod types;
pub mod vfs;

pub use backoff::Backoff;
pub use bitvec::{AtomicBitVec, PolarityBitVec};
pub use bloom::BloomFilter;
pub use hist::Histogram;
pub use load::{Gate, LoadLevel, LoadSignal, Permit};
pub use phase::Phase;
pub use simfs::{DirCrashMode, FaultKind, FaultSpec, OpCounts, SimVfs, TransientKind, TransientSpec};
pub use striped::StripedMutex;
pub use types::{CommitSeq, Key, TxnId, Value};
pub use vfs::{OsVfs, Vfs, VfsFile, VfsRead};
