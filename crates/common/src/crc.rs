//! CRC-32 (IEEE 802.3 polynomial, reflected), used to checksum checkpoint
//! files.
//!
//! A crash in the middle of the capture phase leaves a checkpoint file
//! without a valid footer; recovery (§3) must detect and discard it. The
//! implementation is the classic 8-entries-per-byte slicing-by-1 table —
//! plenty fast for our file sizes and dependency-free.

/// Streaming CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xEDB8_8320;

static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the hash.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// Finishes and returns the checksum.
    #[inline]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"hello checkpoint world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xABu8; 1024];
        let clean = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
