//! The CALC checkpointing phase vocabulary (§2.2 of the paper).
//!
//! A system running CALC cycles through five phases. Each transition is
//! marked by a token atomically appended to the commit log, so it can
//! always be unambiguously determined which phase the system was in when a
//! particular transaction committed. The enum lives in `calc-common` so
//! that the commit log (in `calc-txn`) can record transition tokens without
//! depending on the checkpointing crate.

/// One of CALC's five phases.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// No checkpoint is being taken. Records store only live versions.
    Rest = 0,
    /// Immediately precedes the virtual point of consistency. Writers copy
    /// live→stable before updating (the copy is provisional: the commit
    /// hook keeps or discards it depending on the commit phase).
    Prepare = 1,
    /// Immediately follows the virtual point of consistency, before capture
    /// starts. Writers copy live→stable and mark it available.
    Resolve = 2,
    /// The background thread is recording the checkpoint to disk, erasing
    /// stable versions as it goes.
    Capture = 3,
    /// Capture finished; write behaviour reverts to rest semantics while
    /// capture-phase transactions drain.
    Complete = 4,
}

impl Phase {
    /// All phases, in cycle order.
    pub const ALL: [Phase; 5] = [
        Phase::Rest,
        Phase::Prepare,
        Phase::Resolve,
        Phase::Capture,
        Phase::Complete,
    ];

    /// Number of phases.
    pub const COUNT: usize = 5;

    /// Dense index for per-phase counters.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Phase::index`]. Panics on out-of-range input.
    #[inline]
    pub fn from_index(i: usize) -> Phase {
        Self::ALL[i]
    }

    /// The phase that follows this one in the checkpoint cycle.
    #[inline]
    pub fn next(self) -> Phase {
        Self::ALL[(self.index() + 1) % Self::COUNT]
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Rest => "REST",
            Phase::Prepare => "PREPARE",
            Phase::Resolve => "RESOLVE",
            Phase::Capture => "CAPTURE",
            Phase::Complete => "COMPLETE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_index(p.index()), p);
        }
    }

    #[test]
    fn cycle_order() {
        assert_eq!(Phase::Rest.next(), Phase::Prepare);
        assert_eq!(Phase::Prepare.next(), Phase::Resolve);
        assert_eq!(Phase::Resolve.next(), Phase::Capture);
        assert_eq!(Phase::Capture.next(), Phase::Complete);
        assert_eq!(Phase::Complete.next(), Phase::Rest);
    }

    #[test]
    fn display_names() {
        assert_eq!(Phase::Resolve.to_string(), "RESOLVE");
    }
}
