//! Atomic bit vectors, including the polarity-swapping variant used for
//! CALC's `stable_status` vector.
//!
//! The paper (§2.2.5) observes that after a capture phase completes, every
//! `stable_status` bit has been driven to *available*, but the next rest
//! phase wants every bit to read *not available*. Rather than scanning the
//! whole vector to reset it, CALC swaps the **meaning** of the 0/1 values:
//! in one checkpoint cycle `available` maps to 1, in the next it maps
//! to 0. [`PolarityBitVec`] implements exactly that.

use std::sync::atomic::{AtomicU64, Ordering};

const BITS: usize = 64;

/// A fixed-capacity bit vector with atomic per-bit operations.
///
/// All operations use `SeqCst`-free orderings: individual bits are
/// independent flags, so `AcqRel`/`Acquire` on the containing word is
/// sufficient for the protocols built on top (the surrounding store always
/// pairs bit flips with striped-mutex-protected version updates).
pub struct AtomicBitVec {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicBitVec {
    /// Creates a vector of `len` bits, all initially 0.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(BITS);
        let words = (0..n_words).map(|_| AtomicU64::new(0)).collect();
        AtomicBitVec { words, len }
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn locate(&self, idx: usize) -> (&AtomicU64, u64) {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (&self.words[idx / BITS], 1u64 << (idx % BITS))
    }

    /// Reads bit `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        let (word, mask) = self.locate(idx);
        word.load(Ordering::Acquire) & mask != 0
    }

    /// Sets bit `idx` to `value`, returning the previous value.
    #[inline]
    pub fn set(&self, idx: usize, value: bool) -> bool {
        let (word, mask) = self.locate(idx);
        let prev = if value {
            word.fetch_or(mask, Ordering::AcqRel)
        } else {
            word.fetch_and(!mask, Ordering::AcqRel)
        };
        prev & mask != 0
    }

    /// Atomically sets bit `idx` to 1; returns `true` if this call changed
    /// it (i.e. the bit was previously 0). Useful for "first writer wins"
    /// protocols such as dirty-key tracking.
    #[inline]
    pub fn test_and_set(&self, idx: usize) -> bool {
        let (word, mask) = self.locate(idx);
        word.fetch_or(mask, Ordering::AcqRel) & mask == 0
    }

    /// Clears every bit. This is the full scan that [`PolarityBitVec`]
    /// exists to avoid on the hot path; it is still used by the partial
    /// checkpointers to clear the *inactive* dirty vector during a
    /// checkpoint period (§2.3), off the critical path.
    pub fn clear_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Release);
        }
    }

    /// Sets every bit.
    pub fn set_all(&self) {
        // Bits beyond `len` in the last word are don't-cares.
        for w in self.words.iter() {
            w.store(u64::MAX, Ordering::Release);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        let mut total = 0usize;
        for (i, w) in self.words.iter().enumerate() {
            let mut v = w.load(Ordering::Acquire);
            if (i + 1) * BITS > self.len {
                let valid = self.len - i * BITS;
                if valid < BITS {
                    v &= (1u64 << valid) - 1;
                }
            }
            total += v.count_ones() as usize;
        }
        total
    }

    /// Iterates over the indices of set bits. The snapshot is per-word:
    /// concurrent mutation of other words is tolerated (the capture scan
    /// relies on this).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            let mut v = w.load(Ordering::Acquire);
            if (wi + 1) * BITS > self.len {
                let valid = self.len - wi * BITS;
                if valid < BITS {
                    v &= (1u64 << valid) - 1;
                }
            }
            std::iter::from_fn(move || {
                if v == 0 {
                    None
                } else {
                    let bit = v.trailing_zeros() as usize;
                    v &= v - 1;
                    Some(wi * BITS + bit)
                }
            })
        })
    }

    /// Overwrites this vector with the bitwise complement of `src`
    /// (word-at-a-time). Used by Zig-Zag's checkpoint start, which sets
    /// `MW[k] = ¬MR[k]` for every key at a physical point of consistency
    /// (the system is quiesced, so per-word atomicity suffices).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn store_inverted_from(&self, src: &AtomicBitVec) {
        assert_eq!(self.len, src.len, "bit vector length mismatch");
        for (dst, s) in self.words.iter().zip(src.words.iter()) {
            dst.store(!s.load(Ordering::Acquire), Ordering::Release);
        }
    }

    /// Memory footprint of the bit storage in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<AtomicU64>()
    }
}

impl std::fmt::Debug for AtomicBitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBitVec(len={}, ones={})", self.len, self.count_ones())
    }
}

/// A bit vector with a global *polarity* bit that decides which raw value
/// means "marked".
///
/// `is_marked(i)` returns `raw_bit(i) == polarity`. Flipping the polarity
/// instantly inverts the interpretation of every bit — an O(1) replacement
/// for an O(n) reset scan, exactly the paper's
/// `SwapAvailableAndNotAvailable()` (§2.2.5).
///
/// Protocol requirement (upheld by CALC's capture phase): a polarity swap
/// may only happen at a moment when *every* bit reads "marked", so the swap
/// makes every bit read "unmarked" and no information is lost.
pub struct PolarityBitVec {
    bits: AtomicBitVec,
    /// Number of polarity swaps so far. The active polarity is derived
    /// from its parity (even = raw `true` means marked), so a swap and
    /// the generation bump are one atomic event — writers can bracket a
    /// mark/unmark with two [`PolarityBitVec::generation`] reads
    /// (seqlock-style) to detect a racing swap and redo the write under
    /// the new polarity.
    generation: AtomicU64,
}

impl PolarityBitVec {
    /// Creates a vector of `len` bits with all bits *unmarked*.
    pub fn new(len: usize) -> Self {
        // All raw bits are 0 and polarity starts at `true` (generation 0,
        // even parity), so nothing is marked.
        PolarityBitVec {
            bits: AtomicBitVec::new(len),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    #[inline]
    fn marked_value(&self) -> bool {
        self.generation.load(Ordering::Acquire) & 1 == 0
    }

    /// Current swap generation: bumped by exactly one on every
    /// [`PolarityBitVec::swap_polarity`]. Reading it before and after a
    /// mark/unmark (seqlock-style) tells a lock-free writer whether a swap
    /// reinterpreted the bit mid-write.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Whether bit `idx` is currently marked under the active polarity.
    #[inline]
    pub fn is_marked(&self, idx: usize) -> bool {
        self.bits.get(idx) == self.marked_value()
    }

    /// Marks bit `idx`. Returns `true` if this call transitioned it from
    /// unmarked to marked.
    #[inline]
    pub fn mark(&self, idx: usize) -> bool {
        let target = self.marked_value();
        self.bits.set(idx, target) != target
    }

    /// Unmarks bit `idx`. Returns `true` if this call transitioned it from
    /// marked to unmarked.
    #[inline]
    pub fn unmark(&self, idx: usize) -> bool {
        let target = self.marked_value();
        self.bits.set(idx, !target) == target
    }

    /// Flips the meaning of marked/unmarked in O(1).
    ///
    /// This is `SwapAvailableAndNotAvailable()`: if all bits currently read
    /// marked (as guaranteed at the end of a CALC capture phase), after the
    /// swap all bits read unmarked, with no scan.
    pub fn swap_polarity(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Number of marked bits (O(n); diagnostic / test use).
    pub fn count_marked(&self) -> usize {
        let ones = self.bits.count_ones();
        if self.marked_value() {
            ones
        } else {
            self.bits.len() - ones
        }
    }

    /// Memory footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

impl std::fmt::Debug for PolarityBitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PolarityBitVec(len={}, marked={})",
            self.len(),
            self.count_marked()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_get_roundtrip() {
        let bv = AtomicBitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert!(!bv.get(0));
        assert!(!bv.set(0, true));
        assert!(bv.get(0));
        assert!(bv.set(0, false));
        assert!(!bv.get(0));
        // Bits across word boundaries.
        for idx in [63, 64, 65, 127, 128, 129] {
            bv.set(idx, true);
            assert!(bv.get(idx), "bit {idx}");
        }
        assert_eq!(bv.count_ones(), 6);
    }

    #[test]
    fn test_and_set_first_wins() {
        let bv = AtomicBitVec::new(10);
        assert!(bv.test_and_set(3));
        assert!(!bv.test_and_set(3));
        assert!(bv.get(3));
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let bv = AtomicBitVec::new(200);
        let set = [0usize, 1, 63, 64, 120, 199];
        for &i in &set {
            bv.set(i, true);
        }
        let got: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(got, set);
    }

    #[test]
    fn count_ones_ignores_bits_beyond_len() {
        let bv = AtomicBitVec::new(10);
        bv.set_all();
        assert_eq!(bv.count_ones(), 10);
        assert_eq!(bv.iter_ones().count(), 10);
    }

    #[test]
    fn clear_all_resets() {
        let bv = AtomicBitVec::new(100);
        for i in 0..100 {
            bv.set(i, true);
        }
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn polarity_swap_is_constant_time_reset() {
        let pv = PolarityBitVec::new(100);
        assert_eq!(pv.count_marked(), 0);
        for i in 0..100 {
            assert!(pv.mark(i));
        }
        assert_eq!(pv.count_marked(), 100);
        // End of a capture phase: everything marked. Swap → all unmarked.
        pv.swap_polarity();
        assert_eq!(pv.count_marked(), 0);
        for i in 0..100 {
            assert!(!pv.is_marked(i));
        }
        // Works repeatedly across cycles.
        for i in 0..100 {
            pv.mark(i);
        }
        pv.swap_polarity();
        assert_eq!(pv.count_marked(), 0);
    }

    #[test]
    fn polarity_mark_unmark_transitions() {
        let pv = PolarityBitVec::new(8);
        assert!(pv.mark(2));
        assert!(!pv.mark(2), "second mark is a no-op");
        assert!(pv.unmark(2));
        assert!(!pv.unmark(2), "second unmark is a no-op");
    }

    #[test]
    fn store_inverted_from_complements() {
        let mr = AtomicBitVec::new(130);
        let mw = AtomicBitVec::new(130);
        for i in (0..130).step_by(3) {
            mr.set(i, true);
        }
        mw.store_inverted_from(&mr);
        for i in 0..130 {
            assert_eq!(mw.get(i), !mr.get(i), "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn store_inverted_from_length_mismatch_panics() {
        AtomicBitVec::new(10).store_inverted_from(&AtomicBitVec::new(11));
    }

    #[test]
    fn concurrent_test_and_set_exactly_one_winner() {
        let bv = Arc::new(AtomicBitVec::new(1024));
        let mut handles = Vec::new();
        let winners = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let bv = bv.clone();
            let winners = winners.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1024 {
                    if bv.test_and_set(i) {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::Relaxed), 1024);
        assert_eq!(bv.count_ones(), 1024);
    }

    /// Seed for the seeded property tests below, overridable for replay
    /// with `BITVEC_SEED=<u64>`.
    fn prop_seed() -> u64 {
        match std::env::var("BITVEC_SEED") {
            Ok(s) => {
                let s = s.trim();
                match s.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => s.parse(),
                }
                .unwrap_or_else(|_| panic!("BITVEC_SEED not a u64: {s:?}"))
            }
            Err(_) => 0xB17_BEC5_0000,
        }
    }

    /// Property: concurrent `mark` calls conserve counts — the number of
    /// successful (transition-reporting) marks equals `count_marked()`,
    /// no matter how markers overlap, and a polarity swap zeroes it.
    #[test]
    fn concurrent_marks_conserve_counts_seeded() {
        const CASES: u64 = 16;
        for case in 0..CASES {
            let seed = prop_seed() ^ case;
            let len = 64 + (crate::rng::SplitMix::new(seed).next_u64() % 1000) as usize;
            let pv = Arc::new(PolarityBitVec::new(len));
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let pv = pv.clone();
                handles.push(std::thread::spawn(move || {
                    let mut rng = crate::rng::SplitMix::new(seed ^ (t.wrapping_mul(0x9e37)));
                    let mut transitions = 0u64;
                    for _ in 0..len * 2 {
                        let idx = rng.next_below(len as u64) as usize;
                        if pv.mark(idx) {
                            transitions += 1;
                        }
                    }
                    transitions
                }));
            }
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(
                total as usize,
                pv.count_marked(),
                "seed {seed:#x}: transition count != marked count"
            );
            // Polarity swap reinterprets every bit at once: marked and
            // unmarked populations exchange exactly (conservation).
            let marked = pv.count_marked();
            pv.swap_polarity();
            assert_eq!(
                pv.count_marked(),
                len - marked,
                "seed {seed:#x}: swap did not exchange marked/unmarked populations"
            );
        }
    }

    /// Property: `swap_polarity` is a single atomic reinterpretation, so a
    /// reader can never observe a *mixed* state where some bits flipped
    /// and others did not (which a scan-and-clear reset would produce).
    ///
    /// Protocol: a writer thread repeatedly marks every bit, publishes a
    /// "stable: all marked" generation, holds it briefly, retracts it and
    /// swaps. Readers use a seqlock-style double-read of the generation:
    /// if the generation was odd (stable) both before and after a
    /// `count_marked` scan, the count must be exactly `len` — any partial
    /// flip observable mid-swap would break this. The writer asserts the
    /// swapped state reads all-unmarked.
    #[test]
    fn polarity_swap_atomic_under_concurrent_readers_seeded() {
        const ROUNDS: u64 = 40;
        let seed = prop_seed() ^ 0x5a5a;
        let len = 512usize;
        let pv = Arc::new(PolarityBitVec::new(len));
        let generation = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBitVec::new(1));

        let mut readers = Vec::new();
        for r in 0..3u64 {
            let pv = pv.clone();
            let generation = generation.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut rng = crate::rng::SplitMix::new(seed ^ r);
                let mut stable_observations = 0u64;
                while !stop.get(0) {
                    let g1 = generation.load(Ordering::Acquire);
                    let count = pv.count_marked();
                    let sampled = pv.is_marked(rng.next_below(len as u64) as usize);
                    let g2 = generation.load(Ordering::Acquire);
                    assert!(count <= len, "count_marked out of range: {count}");
                    if g1 == g2 && g1 % 2 == 1 {
                        // Stable all-marked window: a swap (or any reset)
                        // racing this scan would have bumped the generation.
                        assert_eq!(
                            count, len,
                            "seed {seed:#x} gen {g1}: reader saw {count}/{len} marked \
                             inside a stable all-marked window (partial swap observed)"
                        );
                        assert!(sampled, "seed {seed:#x} gen {g1}: unmarked bit sampled");
                        stable_observations += 1;
                    }
                }
                stable_observations
            }));
        }

        let mut rng = crate::rng::SplitMix::new(seed);
        for round in 0..ROUNDS {
            // Mark every bit in a seeded random order.
            let mut order: Vec<usize> = (0..len).collect();
            for i in (1..len).rev() {
                order.swap(i, rng.next_below(i as u64 + 1) as usize);
            }
            let mut transitions = 0usize;
            for &idx in &order {
                if pv.mark(idx) {
                    transitions += 1;
                }
            }
            assert_eq!(transitions, len, "seed {seed:#x} round {round}");
            assert_eq!(pv.count_marked(), len);
            generation.store(round * 2 + 1, Ordering::Release); // stable: all marked
            std::thread::sleep(std::time::Duration::from_micros(200));
            generation.store(round * 2 + 2, Ordering::Release); // mutation window
            pv.swap_polarity();
            assert_eq!(
                pv.count_marked(),
                0,
                "seed {seed:#x} round {round}: swap did not clear all marks"
            );
        }
        stop.set(0, true);
        let observed: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        // Sanity: the readers actually exercised stable windows.
        assert!(observed > 0, "seed {seed:#x}: readers never saw a stable window");
    }
}
