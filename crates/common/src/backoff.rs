//! Capped exponential backoff with deterministic jitter.
//!
//! The supervised checkpoint service retries transient I/O failures; the
//! delay sequence must be *deterministic* so that SimVfs fault-sweep runs
//! replay exactly from a seed. The jitter therefore comes from the same
//! splitmix64 generator ([`crate::rng::SplitMix`]) the rest of the test
//! harness uses, not from wall-clock entropy.
//!
//! The policy is the classic decorrelated-cap scheme: attempt `n` draws a
//! delay uniformly from `[base/2, base * 2^n]`, clamped to `cap`. A seeded
//! [`Backoff`] yields the same sequence every run; two services with
//! different seeds de-synchronize (useful when several engines share a
//! disk).

use std::time::Duration;

use crate::rng::SplitMix;

/// Deterministic capped-exponential backoff policy.
///
/// `next_delay()` advances the attempt counter and returns the delay to
/// wait before the next retry; `reset()` returns to attempt 0 after a
/// success. The sequence of delays is a pure function of
/// `(base, cap, seed)`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    rng: SplitMix,
    attempt: u32,
}

impl Backoff {
    /// Creates a policy with the given base delay, cap, and jitter seed.
    /// A zero `base` is bumped to 1ms so the exponential ladder is
    /// non-degenerate; `cap` is raised to at least `base`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        let base = base.max(Duration::from_millis(1));
        Backoff {
            base,
            cap: cap.max(base),
            rng: SplitMix::new(seed),
            attempt: 0,
        }
    }

    /// Number of delays handed out since the last [`reset`](Self::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Draws the delay for the next retry and advances the attempt
    /// counter. Attempt `n` (0-based) is uniform in
    /// `[base/2, min(cap, base * 2^n)]`.
    pub fn next_delay(&mut self) -> Duration {
        let n = self.attempt;
        self.attempt = self.attempt.saturating_add(1);
        let base_us = self.base.as_micros() as u64;
        let cap_us = self.cap.as_micros() as u64;
        // base * 2^n, saturating well before u64 overflow.
        let ceiling = base_us
            .saturating_mul(1u64.checked_shl(n.min(32)).unwrap_or(u64::MAX))
            .min(cap_us);
        let floor = (base_us / 2).min(ceiling);
        let span = ceiling - floor;
        let jittered = floor + if span == 0 { 0 } else { self.rng.next_below(span + 1) };
        Duration::from_micros(jittered)
    }

    /// Resets the attempt counter after a success. The jitter stream is
    /// *not* rewound — later delays keep consuming the same seeded
    /// sequence, so a whole run stays a pure function of the seed.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mk = || Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..20 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn delays_grow_and_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut b = Backoff::new(base, cap, 7);
        for i in 0..16 {
            let d = b.next_delay();
            assert!(d >= base / 2, "attempt {i}: {d:?} below floor");
            assert!(d <= cap, "attempt {i}: {d:?} above cap");
        }
        assert_eq!(b.attempt(), 16);
    }

    #[test]
    fn reset_restarts_ladder_but_not_jitter() {
        let mut b = Backoff::new(Duration::from_millis(8), Duration::from_secs(4), 9);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempt(), 0);
        // First post-reset delay is back on the attempt-0 rung.
        let d = b.next_delay();
        assert!(d <= Duration::from_millis(8));
    }

    #[test]
    fn zero_base_is_survivable() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 1);
        let d = b.next_delay();
        assert!(d <= Duration::from_millis(1));
    }
}
