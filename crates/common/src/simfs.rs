//! Deterministic fault-injecting in-memory filesystem for crash testing.
//!
//! [`SimVfs`] implements [`crate::vfs::Vfs`] over two namespaces:
//!
//! * the **current** namespace — what a running process observes
//!   (page cache + directory cache), and
//! * the **durable** namespace — the bytes and directory entries that
//!   would actually survive a power loss right now.
//!
//! File contents track a `durable_len` watermark advanced only by
//! [`crate::vfs::VfsFile::sync`]. Directory mutations (create, rename,
//! remove) are applied to the current namespace immediately but queue as
//! *pending* entries against their parent directory; only
//! [`crate::vfs::Vfs::sync_dir`] drains them into the durable namespace.
//! This is the strict POSIX model: an atomic rename is not persistent
//! until the parent directory itself is fsynced.
//!
//! A seeded [`FaultSpec`] arms exactly one fault at a chosen operation
//! index (counted per operation class). When it fires the filesystem
//! "crashes": the faulting call and every later call return
//! `ErrorKind::Other("simulated crash")`. [`SimVfs::recover_view`] then
//! reboots the disk: each file is truncated to its durable prefix plus a
//! seeded slice of its unsynced tail (modelling partial page writeback),
//! and pending directory operations survive according to the configured
//! [`DirCrashMode`]. Everything is driven by [`crate::rng::SplitMix`], so
//! one seed reproduces one exact crash state.
//!
//! Simplifications, documented so tests don't over-trust the model:
//! directories themselves are always durable once created (only their
//! *entries* are subject to loss), and files are append-only, matching
//! how checkpoints and the command log are written.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Cursor};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::rng::SplitMix;
use crate::vfs::{Vfs, VfsFile, VfsRead};

/// The kinds of fault [`SimVfs`] can inject, per the crash taxonomy in
/// DESIGN.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The `at`-th write persists only a seeded prefix of its bytes (the
    /// fragment is made durable, modelling a partial sector write), then
    /// the system crashes.
    TornWrite,
    /// The `at`-th sync (file fsync or directory fsync, one shared
    /// index) returns `Ok` without making anything durable. No crash is
    /// raised; the driver calls [`SimVfs::force_crash`] at a time of its
    /// choosing, after the caller has acted on the lying `Ok`.
    DropFsync,
    /// Crash immediately *before* the `at`-th rename: neither namespace
    /// changes.
    CrashBeforeRename,
    /// Crash immediately *after* the `at`-th rename, with the rename
    /// itself durable (journal ordering can persist a rename ahead of
    /// everything queued around it). Models "checkpoint published but
    /// manifest GC never ran".
    CrashAfterRename,
}

/// A single armed fault: fire `kind` at the `at`-th operation of its
/// class (0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which fault to inject.
    pub kind: FaultKind,
    /// 0-based index within the fault's operation class.
    pub at: u64,
}

/// The error class a [`TransientSpec`] window injects. Unlike
/// [`FaultKind`], these do **not** crash the filesystem — the failing
/// call returns an error and later calls proceed normally, modelling a
/// disk that misbehaves and then recovers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransientKind {
    /// Data writes inside the window fail with a retryable
    /// `ErrorKind::Interrupted` error; nothing is appended.
    WriteError,
    /// Data writes *and* file creations inside the window fail with
    /// `ENOSPC` (raw OS error 28), modelling a full disk that later
    /// frees up.
    Enospc,
}

/// A window of transient failures over the combined data-operation index
/// ([`OpCounts::data_ops`], i.e. writes + creates): operations whose
/// index falls in `[from, from + count)` fail per `kind`. Failing
/// operations still consume their index, so deterministic retries walk
/// *through* the window instead of spinning at its leading edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransientSpec {
    /// Which error class to inject.
    pub kind: TransientKind,
    /// First data-op index (0-based) inside the window.
    pub from: u64,
    /// Number of data-op indices the window covers.
    pub count: u64,
}

/// How pending (un-fsynced) directory operations behave at crash time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirCrashMode {
    /// Each pending operation independently survives with probability
    /// one half, drawn from the seed. The default.
    #[default]
    Seeded,
    /// Adversarial: pending removes all persist, pending adds and
    /// renames are all lost. The worst case for GC racing a crash.
    RemovesOnly,
}

/// Per-class operation counters, readable via [`SimVfs::counts`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `write_all` calls on any file handle.
    pub writes: u64,
    /// File fsyncs.
    pub fsyncs: u64,
    /// Directory fsyncs.
    pub dir_syncs: u64,
    /// Renames.
    pub renames: u64,
    /// File removals.
    pub removes: u64,
    /// File creations.
    pub creates: u64,
}

impl OpCounts {
    /// Combined fsync-class index (file + directory syncs), the stream
    /// [`FaultKind::DropFsync`] indexes into.
    pub fn sync_events(&self) -> u64 {
        self.fsyncs + self.dir_syncs
    }

    /// Total of every counted operation, handy for exhaustive sweeps.
    pub fn total(&self) -> u64 {
        self.writes + self.fsyncs + self.dir_syncs + self.renames + self.removes + self.creates
    }

    /// Combined data-operation index (writes + creates), the stream
    /// [`TransientSpec`] windows index into.
    pub fn data_ops(&self) -> u64 {
        self.writes + self.creates
    }
}

#[derive(Clone, Debug)]
enum DirOp {
    Add(PathBuf, u64),
    Remove(PathBuf),
    Rename(PathBuf, PathBuf),
}

#[derive(Debug)]
struct FileNode {
    content: Vec<u8>,
    durable_len: usize,
}

#[derive(Debug)]
struct SimState {
    files: BTreeMap<u64, FileNode>,
    current: BTreeMap<PathBuf, u64>,
    durable: BTreeMap<PathBuf, u64>,
    dirs: BTreeSet<PathBuf>,
    pending: BTreeMap<PathBuf, Vec<DirOp>>,
    next_inode: u64,
    counts: OpCounts,
    fault: Option<FaultSpec>,
    transient: Option<TransientSpec>,
    transient_hits: u64,
    fault_fired: bool,
    crashed: bool,
    fsyncs_dropped: u64,
    remove_crash_at: Option<u64>,
    dir_crash_mode: DirCrashMode,
    seed: u64,
}

/// The fault-injecting simulated filesystem. Cloning shares the state.
#[derive(Clone, Debug)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

const CRASH_SALT: u64 = 0x51b7_a5ed_c845_0f1d;

fn crash_err() -> io::Error {
    io::Error::other("simulated crash")
}

fn parent_of(path: &Path) -> PathBuf {
    path.parent().unwrap_or_else(|| Path::new("")).to_path_buf()
}

impl SimState {
    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(crash_err())
        } else {
            Ok(())
        }
    }

    /// Returns the injected error if data-op index `idx` lies inside an
    /// armed transient window and the window's kind covers `write`
    /// (WriteError windows spare creates; ENOSPC hits both).
    fn transient_err(&mut self, idx: u64, write: bool) -> Option<io::Error> {
        let spec = self.transient?;
        if idx < spec.from || idx >= spec.from.saturating_add(spec.count) {
            return None;
        }
        match spec.kind {
            TransientKind::WriteError if write => {
                self.transient_hits += 1;
                Some(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "simulated transient write error",
                ))
            }
            TransientKind::WriteError => None,
            TransientKind::Enospc => {
                self.transient_hits += 1;
                Some(io::Error::from_raw_os_error(28))
            }
        }
    }

    /// True when the armed fault matches `kind` at class-index `idx`.
    fn fault_matches(&self, kind: FaultKind, idx: u64) -> bool {
        !self.fault_fired
            && self
                .fault
                .map(|f| f.kind == kind && f.at == idx)
                .unwrap_or(false)
    }

    fn apply_durable(&mut self, op: &DirOp) {
        match op {
            DirOp::Add(path, inode) => {
                self.durable.insert(path.clone(), *inode);
            }
            DirOp::Remove(path) => {
                self.durable.remove(path);
            }
            DirOp::Rename(from, to) => {
                if let Some(inode) = self.durable.remove(from) {
                    self.durable.insert(to.clone(), inode);
                }
            }
        }
    }
}

struct SimFile {
    state: Arc<Mutex<SimState>>,
    inode: u64,
}

impl VfsFile for SimFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        st.check_alive()?;
        let idx = st.counts.writes;
        let didx = st.counts.data_ops();
        st.counts.writes += 1;
        if let Some(err) = st.transient_err(didx, true) {
            return Err(err);
        }
        if st.fault_matches(FaultKind::TornWrite, idx) {
            st.fault_fired = true;
            st.crashed = true;
            let seed = st.seed;
            let keep = SplitMix::new(seed ^ CRASH_SALT ^ idx).next_below(buf.len() as u64 + 1);
            let node = st.files.get_mut(&self.inode).expect("inode live");
            node.content.extend_from_slice(&buf[..keep as usize]);
            // The fragment reached the platter: everything up to and
            // including it is durable, which is what makes the write
            // *torn* rather than merely lost.
            node.durable_len = node.content.len();
            return Err(crash_err());
        }
        let node = st.files.get_mut(&self.inode).expect("inode live");
        node.content.extend_from_slice(buf);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.state.lock().check_alive()
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock();
        st.check_alive()?;
        let idx = st.counts.sync_events();
        st.counts.fsyncs += 1;
        if st.fault_matches(FaultKind::DropFsync, idx) {
            st.fault_fired = true;
            st.fsyncs_dropped += 1;
            return Ok(()); // the lie: report durability without providing it
        }
        let node = st.files.get_mut(&self.inode).expect("inode live");
        node.durable_len = node.content.len();
        Ok(())
    }
}

impl SimVfs {
    /// A fault-free simulated filesystem (still counts operations and
    /// still crashes on demand via [`SimVfs::force_crash`]).
    pub fn new(seed: u64) -> Self {
        Self::build(seed, None)
    }

    /// A simulated filesystem with one armed fault.
    pub fn with_fault(seed: u64, fault: FaultSpec) -> Self {
        Self::build(seed, Some(fault))
    }

    fn build(seed: u64, fault: Option<FaultSpec>) -> Self {
        SimVfs {
            state: Arc::new(Mutex::new(SimState {
                files: BTreeMap::new(),
                current: BTreeMap::new(),
                durable: BTreeMap::new(),
                dirs: BTreeSet::new(),
                pending: BTreeMap::new(),
                next_inode: 1,
                counts: OpCounts::default(),
                fault,
                transient: None,
                transient_hits: 0,
                fault_fired: false,
                crashed: false,
                fsyncs_dropped: 0,
                remove_crash_at: None,
                dir_crash_mode: DirCrashMode::default(),
                seed,
            })),
        }
    }

    /// Selects how pending directory operations survive a crash.
    pub fn set_dir_crash_mode(&self, mode: DirCrashMode) {
        self.state.lock().dir_crash_mode = mode;
    }

    /// Arms (or replaces) a transient failure window. Pass a window with
    /// `count == 0` to disarm. Unlike [`FaultSpec`] faults a window does
    /// not crash the filesystem; see [`TransientSpec`].
    pub fn arm_transient(&self, spec: TransientSpec) {
        self.state.lock().transient = (spec.count > 0).then_some(spec);
    }

    /// Number of operations a transient window has failed so far.
    pub fn transient_hits(&self) -> u64 {
        self.state.lock().transient_hits
    }

    /// Arms a crash immediately before the `n`-th (0-based) file
    /// removal — the GC-racing-crash scenario.
    pub fn crash_before_remove(&self, n: u64) {
        self.state.lock().remove_crash_at = Some(n);
    }

    /// Crashes the filesystem now: every subsequent operation fails
    /// until [`SimVfs::recover_view`].
    pub fn force_crash(&self) {
        self.state.lock().crashed = true;
    }

    /// Whether the armed fault has fired.
    pub fn fault_fired(&self) -> bool {
        self.state.lock().fault_fired
    }

    /// Whether the filesystem is currently in the crashed state.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Number of fsyncs acknowledged without effect (dropped).
    pub fn fsyncs_dropped(&self) -> u64 {
        self.state.lock().fsyncs_dropped
    }

    /// Snapshot of the per-class operation counters.
    pub fn counts(&self) -> OpCounts {
        self.state.lock().counts
    }

    /// Reboots after a crash (or simulates a surprise power cut on a
    /// healthy filesystem): computes the surviving disk state and makes
    /// it the new current state, clears the crash flag, and disarms any
    /// remaining fault so recovery code runs against an honest disk.
    pub fn recover_view(&self) {
        let mut st = self.state.lock();
        let mut rng = SplitMix::new(st.seed ^ CRASH_SALT);

        // Unsynced file tails survive as a seeded prefix, modelling the
        // page cache writing back an arbitrary prefix before power loss.
        // Iteration is over the BTreeMap, so draws are deterministic.
        for (_, node) in st.files.iter_mut() {
            let unsynced = node.content.len() - node.durable_len;
            let extra = rng.next_below(unsynced as u64 + 1) as usize;
            node.content.truncate(node.durable_len + extra);
            node.durable_len = node.content.len();
        }

        // Pending directory operations survive per the crash mode.
        let pending = std::mem::take(&mut st.pending);
        for (_, ops) in pending {
            for op in ops {
                let survives = match st.dir_crash_mode {
                    DirCrashMode::Seeded => rng.chance(0.5),
                    DirCrashMode::RemovesOnly => matches!(op, DirOp::Remove(_)),
                };
                if survives {
                    st.apply_durable(&op);
                }
            }
        }

        st.current = st.durable.clone();
        let live: BTreeSet<u64> = st.current.values().copied().collect();
        st.files.retain(|inode, _| live.contains(inode));
        st.crashed = false;
        st.fault = None;
        st.transient = None;
        st.fault_fired = false;
        st.remove_crash_at = None;
    }
}

impl Vfs for SimVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.state.lock();
        st.check_alive()?;
        let didx = st.counts.data_ops();
        st.counts.creates += 1;
        if let Some(err) = st.transient_err(didx, false) {
            return Err(err);
        }
        let inode = st.next_inode;
        st.next_inode += 1;
        st.files.insert(
            inode,
            FileNode {
                content: Vec::new(),
                durable_len: 0,
            },
        );
        st.current.insert(path.to_path_buf(), inode);
        st.pending
            .entry(parent_of(path))
            .or_default()
            .push(DirOp::Add(path.to_path_buf(), inode));
        Ok(Box::new(SimFile {
            state: self.state.clone(),
            inode,
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsRead>> {
        let st = self.state.lock();
        st.check_alive()?;
        let inode = st
            .current
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let content = st.files[inode].content.clone();
        Ok(Box::new(Cursor::new(content)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        st.check_alive()?;
        let idx = st.counts.renames;
        st.counts.renames += 1;
        if st.fault_matches(FaultKind::CrashBeforeRename, idx) {
            st.fault_fired = true;
            st.crashed = true;
            return Err(crash_err());
        }
        let inode = st
            .current
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename source missing"))?;
        st.current.insert(to.to_path_buf(), inode);
        if st.fault_matches(FaultKind::CrashAfterRename, idx) {
            st.fault_fired = true;
            st.crashed = true;
            // The rename itself reached the journal: persist the final
            // name (pointing at the file's current durable content) and
            // drop the old one, bypassing the pending queue.
            st.durable.remove(from);
            st.durable.insert(to.to_path_buf(), inode);
            // Discard any queued ops for these names so recover_view
            // cannot double-apply or resurrect the temp name.
            let parent = parent_of(to);
            if let Some(ops) = st.pending.get_mut(&parent) {
                ops.retain(|op| match op {
                    DirOp::Add(p, _) | DirOp::Remove(p) => p != from && p != to,
                    DirOp::Rename(f, t) => f != from && t != to,
                });
            }
            return Err(crash_err());
        }
        st.pending
            .entry(parent_of(to))
            .or_default()
            .push(DirOp::Rename(from.to_path_buf(), to.to_path_buf()));
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        st.check_alive()?;
        let idx = st.counts.removes;
        st.counts.removes += 1;
        if st.remove_crash_at == Some(idx) {
            st.crashed = true;
            return Err(crash_err());
        }
        st.current
            .remove(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        st.pending
            .entry(parent_of(path))
            .or_default()
            .push(DirOp::Remove(path.to_path_buf()));
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let st = self.state.lock();
        st.check_alive()?;
        Ok(st
            .current
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        st.check_alive()?;
        let mut d = dir.to_path_buf();
        loop {
            st.dirs.insert(d.clone());
            match d.parent() {
                Some(p) if !p.as_os_str().is_empty() => d = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        st.check_alive()?;
        let idx = st.counts.sync_events();
        st.counts.dir_syncs += 1;
        if st.fault_matches(FaultKind::DropFsync, idx) {
            st.fault_fired = true;
            st.fsyncs_dropped += 1;
            return Ok(());
        }
        if let Some(ops) = st.pending.remove(dir) {
            for op in &ops {
                st.apply_durable(op);
            }
        }
        Ok(())
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let st = self.state.lock();
        st.check_alive()?;
        let inode = st
            .current
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        Ok(st.files[inode].content.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_publish(vfs: &SimVfs, dir: &str, tmp: &str, fin: &str, data: &[u8]) -> io::Result<()> {
        vfs.create_dir_all(&p(dir))?;
        let mut f = vfs.create(&p(tmp))?;
        f.write_all(data)?;
        f.sync()?;
        vfs.rename(&p(tmp), &p(fin))?;
        vfs.sync_dir(&p(dir))?;
        Ok(())
    }

    #[test]
    fn synced_and_published_file_survives_crash() {
        let vfs = SimVfs::new(7);
        write_publish(&vfs, "/d", "/d/.tmp", "/d/final", b"abc").unwrap();
        vfs.force_crash();
        assert!(vfs.len(&p("/d/final")).is_err());
        vfs.recover_view();
        assert_eq!(vfs.len(&p("/d/final")).unwrap(), 3);
        let mut buf = Vec::new();
        vfs.open_read(&p("/d/final")).unwrap().read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"abc");
    }

    #[test]
    fn unsynced_rename_may_be_lost_and_removes_only_is_adversarial() {
        let vfs = SimVfs::new(3);
        vfs.set_dir_crash_mode(DirCrashMode::RemovesOnly);
        vfs.create_dir_all(&p("/d")).unwrap();
        let mut f = vfs.create(&p("/d/.tmp")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap();
        vfs.rename(&p("/d/.tmp"), &p("/d/final")).unwrap();
        // No sync_dir: the rename (and the create) are pending.
        vfs.force_crash();
        vfs.recover_view();
        assert!(vfs.open_read(&p("/d/final")).is_err());
        assert!(vfs.open_read(&p("/d/.tmp")).is_err());
    }

    #[test]
    fn dropped_fsync_leaves_data_volatile() {
        let vfs = SimVfs::with_fault(
            11,
            FaultSpec {
                kind: FaultKind::DropFsync,
                at: 0,
            },
        );
        vfs.create_dir_all(&p("/d")).unwrap();
        let mut f = vfs.create(&p("/d/log")).unwrap();
        f.write_all(b"payload").unwrap();
        f.sync().unwrap(); // lies
        assert_eq!(vfs.fsyncs_dropped(), 1);
        vfs.sync_dir(&p("/d")).unwrap(); // honest: name becomes durable
        vfs.force_crash();
        vfs.recover_view();
        // The name survived but the bytes were never durable; only a
        // seeded writeback prefix (possibly empty) remains.
        let n = vfs.len(&p("/d/log")).unwrap();
        assert!(n <= 7, "at most the written bytes survive, got {n}");
    }

    #[test]
    fn torn_write_persists_partial_fragment() {
        let vfs = SimVfs::with_fault(
            5,
            FaultSpec {
                kind: FaultKind::TornWrite,
                at: 1,
            },
        );
        vfs.create_dir_all(&p("/d")).unwrap();
        let mut f = vfs.create(&p("/d/log")).unwrap();
        f.write_all(b"first").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        let err = f.write_all(b"secondsecond").unwrap_err();
        assert_eq!(err.to_string(), "simulated crash");
        assert!(vfs.crashed());
        vfs.recover_view();
        let n = vfs.len(&p("/d/log")).unwrap() as usize;
        assert!((5..5 + 12).contains(&n), "torn tail in range, got {n}");
        let mut buf = Vec::new();
        vfs.open_read(&p("/d/log")).unwrap().read_to_end(&mut buf).unwrap();
        assert_eq!(&buf[..5], b"first");
        assert_eq!(&buf[5..], &b"secondsecond"[..n - 5]);
    }

    #[test]
    fn crash_before_rename_keeps_old_state() {
        let vfs = SimVfs::with_fault(
            9,
            FaultSpec {
                kind: FaultKind::CrashBeforeRename,
                at: 0,
            },
        );
        vfs.create_dir_all(&p("/d")).unwrap();
        let mut f = vfs.create(&p("/d/.tmp")).unwrap();
        f.write_all(b"x").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        assert!(vfs.rename(&p("/d/.tmp"), &p("/d/final")).is_err());
        vfs.recover_view();
        assert!(vfs.open_read(&p("/d/final")).is_err());
        assert_eq!(vfs.len(&p("/d/.tmp")).unwrap(), 1);
    }

    #[test]
    fn crash_after_rename_persists_final_name() {
        let vfs = SimVfs::with_fault(
            9,
            FaultSpec {
                kind: FaultKind::CrashAfterRename,
                at: 0,
            },
        );
        vfs.create_dir_all(&p("/d")).unwrap();
        let mut f = vfs.create(&p("/d/.tmp")).unwrap();
        f.write_all(b"xy").unwrap();
        f.sync().unwrap();
        // Note: no sync_dir — CrashAfterRename persists the final name
        // anyway, modelling journal ordering.
        assert!(vfs.rename(&p("/d/.tmp"), &p("/d/final")).is_err());
        vfs.recover_view();
        assert_eq!(vfs.len(&p("/d/final")).unwrap(), 2);
        assert!(vfs.open_read(&p("/d/.tmp")).is_err());
    }

    #[test]
    fn crash_before_remove_with_removes_only_mode() {
        let vfs = SimVfs::new(13);
        vfs.set_dir_crash_mode(DirCrashMode::RemovesOnly);
        write_publish(&vfs, "/d", "/d/.t0", "/d/a", b"a").unwrap();
        write_publish(&vfs, "/d", "/d/.t1", "/d/b", b"b").unwrap();
        write_publish(&vfs, "/d", "/d/.t2", "/d/c", b"c").unwrap();
        vfs.crash_before_remove(1);
        vfs.remove_file(&p("/d/a")).unwrap();
        assert!(vfs.remove_file(&p("/d/b")).is_err());
        vfs.recover_view();
        // The first unlink persisted (RemovesOnly), the second never ran.
        assert!(vfs.open_read(&p("/d/a")).is_err());
        assert_eq!(vfs.len(&p("/d/b")).unwrap(), 1);
        assert_eq!(vfs.len(&p("/d/c")).unwrap(), 1);
    }

    #[test]
    fn transient_write_window_fails_then_recovers() {
        let vfs = SimVfs::new(21);
        vfs.create_dir_all(&p("/d")).unwrap();
        let mut f = vfs.create(&p("/d/log")).unwrap(); // data-op 0
        f.write_all(b"ok0").unwrap(); // data-op 1
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::WriteError,
            from: 2,
            count: 2,
        });
        let e = f.write_all(b"fail").unwrap_err(); // data-op 2: in window
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        let e = f.write_all(b"fail").unwrap_err(); // data-op 3: in window
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert!(!vfs.crashed(), "transient errors never crash the fs");
        f.write_all(b"ok1").unwrap(); // data-op 4: past the window
        assert_eq!(vfs.transient_hits(), 2);
        f.sync().unwrap();
        assert_eq!(vfs.len(&p("/d/log")).unwrap(), 6, "failed writes left no bytes");
    }

    #[test]
    fn enospc_window_fails_creates_and_writes() {
        let vfs = SimVfs::new(22);
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::Enospc,
            from: 0,
            count: 2,
        });
        let e = vfs.create(&p("/d/a")).err().expect("enospc"); // data-op 0
        assert_eq!(e.raw_os_error(), Some(28));
        let e = vfs.create(&p("/d/a")).err().expect("enospc"); // data-op 1
        assert_eq!(e.raw_os_error(), Some(28));
        // Window exhausted: the disk "freed up".
        let mut f = vfs.create(&p("/d/a")).unwrap();
        f.write_all(b"x").unwrap();
        assert_eq!(vfs.transient_hits(), 2);
    }

    #[test]
    fn determinism_same_seed_same_recovered_state() {
        let run = |seed: u64| -> Vec<(PathBuf, u64)> {
            let vfs = SimVfs::new(seed);
            vfs.create_dir_all(&p("/d")).unwrap();
            for i in 0..6 {
                let tmp = p(&format!("/d/.t{i}"));
                let fin = p(&format!("/d/f{i}"));
                let mut f = vfs.create(&tmp).unwrap();
                f.write_all(&[i as u8; 64]).unwrap();
                if i % 2 == 0 {
                    f.sync().unwrap();
                }
                vfs.rename(&tmp, &fin).unwrap();
                if i % 3 == 0 {
                    vfs.sync_dir(&p("/d")).unwrap();
                }
            }
            vfs.force_crash();
            vfs.recover_view();
            vfs.read_dir(&p("/d"))
                .unwrap()
                .into_iter()
                .map(|f| {
                    let n = vfs.len(&f).unwrap();
                    (f, n)
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_eq!(run(43), run(43));
        assert_ne!(run(42), run(1042), "different seeds should differ somewhere");
    }
}
