//! Test-only fault switches that inject *known concurrency bugs* into the
//! engine, so the conformance checker can prove it would catch them.
//!
//! A checker that has never seen a failure proves nothing: if the oracle
//! is vacuous (checks the wrong thing, or checks nothing under the real
//! schedules), every run "passes". The mutation smoke test in
//! `calc-conform` flips each switch here, reruns the stress harness, and
//! asserts the checker reports a violation — zero false negatives on the
//! mutation set, zero false positives on clean runs.
//!
//! Everything here is behind the `mutation-hooks` cargo feature AND a
//! runtime flag that defaults to off. The double gate matters: cargo
//! feature unification means a workspace build that includes
//! `calc-conform` compiles these hooks into `calc-txn`/`calc-storage`
//! for every crate's tests, so correctness cannot rely on the feature
//! being absent — only the runtime flags, which nothing but the mutation
//! smoke test ever sets.

use std::sync::atomic::{AtomicBool, Ordering};

/// The seeded bugs. Each corresponds to a one-line "typo" a refactor
/// could plausibly introduce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// The lock manager grants every request in shared mode — writers no
    /// longer exclude each other, so hot-key read-modify-write chains
    /// lose updates.
    SkipLock,
    /// `DualVersionStore::get` returns the *stable* version when one
    /// exists — readers observe the checkpoint's pre-images instead of
    /// the newest committed live value while a checkpoint is in flight.
    StaleStableRead,
    /// `CommitLog::append_commit` stamps the commit with the *next*
    /// phase, as if the stamp had been read after a racing phase
    /// transition instead of under the log mutex — commits straddle the
    /// virtual point of consistency and checkpoint contents go wrong.
    LatePhaseStamp,
}

/// All mutations, for sweep-style tests.
pub const ALL: [Mutation; 3] = [
    Mutation::SkipLock,
    Mutation::StaleStableRead,
    Mutation::LatePhaseStamp,
];

static FLAGS: [AtomicBool; 3] = [
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
];

impl Mutation {
    #[inline]
    fn idx(self) -> usize {
        match self {
            Mutation::SkipLock => 0,
            Mutation::StaleStableRead => 1,
            Mutation::LatePhaseStamp => 2,
        }
    }

    /// Human-readable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SkipLock => "skip-lock",
            Mutation::StaleStableRead => "stale-stable-read",
            Mutation::LatePhaseStamp => "late-phase-stamp",
        }
    }
}

/// Arms a mutation process-wide. Test harnesses must serialize around
/// this (the flags are global).
pub fn arm(m: Mutation) {
    FLAGS[m.idx()].store(true, Ordering::SeqCst);
}

/// Disarms all mutations.
pub fn disarm_all() {
    for f in &FLAGS {
        f.store(false, Ordering::SeqCst);
    }
}

/// Whether a mutation is currently armed. Hook sites call this; it is a
/// single relaxed load when the feature is compiled in, and the whole
/// call site is absent otherwise.
#[inline]
pub fn armed(m: Mutation) -> bool {
    FLAGS[m.idx()].load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_disarm_roundtrip() {
        disarm_all();
        for m in ALL {
            assert!(!armed(m), "{} armed at rest", m.name());
        }
        arm(Mutation::SkipLock);
        assert!(armed(Mutation::SkipLock));
        assert!(!armed(Mutation::StaleStableRead));
        disarm_all();
        assert!(!armed(Mutation::SkipLock));
    }
}
