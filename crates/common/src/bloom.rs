//! A blocked bloom filter over 64-bit keys.
//!
//! §2.3 of the paper evaluates three data structures for tracking the keys
//! updated since the most recent checkpoint: a hash table, a plain bit
//! vector (one bit per record), and a bloom filter that trades a smaller
//! footprint for false positives (a false positive merely causes an
//! unchanged record to be included in a partial checkpoint — correctness is
//! unaffected). The paper settled on the bit vector; this filter exists so
//! the `dirty_trackers` bench can reproduce that ablation, and as a
//! standalone utility.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-line-blocked bloom filter: each key hashes to one 64-byte block
/// and sets `k` bits within it, so an insert or query touches one cache
/// line.
pub struct BloomFilter {
    blocks: Box<[Block]>,
    k: u32,
}

#[repr(align(64))]
struct Block([AtomicU64; 8]);

impl Block {
    fn new() -> Self {
        Block(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

#[inline]
fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer — cheap, well-distributed for sequential keys.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BloomFilter {
    /// Creates a filter sized for `expected_items` at roughly
    /// `bits_per_item` bits each (the paper's configuration knob: fewer
    /// bits per item than the 1-bit-per-*record* vector when the dirty set
    /// is sparse). `k` is derived as `bits_per_item * ln 2`, clamped to
    /// 1..=8.
    pub fn new(expected_items: usize, bits_per_item: usize) -> Self {
        let total_bits = (expected_items.max(1) * bits_per_item.max(1)).max(512);
        let n_blocks = total_bits.div_ceil(512).next_power_of_two();
        let k = ((bits_per_item as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 8);
        BloomFilter {
            blocks: (0..n_blocks).map(|_| Block::new()).collect(),
            k,
        }
    }

    #[inline]
    fn block_of(&self, h: u64) -> (&Block, u64) {
        let idx = (h as usize) & (self.blocks.len() - 1);
        (&self.blocks[idx], h >> 32)
    }

    /// Inserts `key`.
    pub fn insert(&self, key: u64) {
        let h = mix(key);
        let (block, mut seed) = self.block_of(h);
        for _ in 0..self.k {
            seed = mix(seed);
            let word = (seed >> 6) as usize & 7;
            let bit = seed & 63;
            block.0[word].fetch_or(1u64 << bit, Ordering::Relaxed);
        }
    }

    /// Whether `key` *may* have been inserted. False positives possible,
    /// false negatives impossible.
    pub fn may_contain(&self, key: u64) -> bool {
        let h = mix(key);
        let (block, mut seed) = self.block_of(h);
        for _ in 0..self.k {
            seed = mix(seed);
            let word = (seed >> 6) as usize & 7;
            let bit = seed & 63;
            if block.0[word].load(Ordering::Relaxed) & (1u64 << bit) == 0 {
                return false;
            }
        }
        true
    }

    /// Clears the filter.
    pub fn clear(&self) {
        for b in self.blocks.iter() {
            for w in &b.0 {
                w.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Memory footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.blocks.len() * 64
    }
}

impl std::fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BloomFilter(blocks={}, k={})",
            self.blocks.len(),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let f = BloomFilter::new(10_000, 10);
        for k in 0..10_000u64 {
            f.insert(k * 7 + 1);
        }
        for k in 0..10_000u64 {
            assert!(f.may_contain(k * 7 + 1));
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let f = BloomFilter::new(10_000, 10);
        for k in 0..10_000u64 {
            f.insert(k);
        }
        let fp = (10_000u64..110_000)
            .filter(|&k| f.may_contain(k))
            .count();
        let rate = fp as f64 / 100_000.0;
        // With ~10 bits/item and k≈7 the theoretical FP rate is <1%; the
        // blocked layout costs a bit, so allow 5%.
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn clear_resets() {
        let f = BloomFilter::new(100, 8);
        f.insert(42);
        assert!(f.may_contain(42));
        f.clear();
        assert!(!f.may_contain(42));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1000, 8);
        let hits = (0..1000u64).filter(|&k| f.may_contain(k)).count();
        assert_eq!(hits, 0);
    }
}
