//! Striped mutexes guarding per-record version data.
//!
//! The checkpointer thread reads and erases stable record versions
//! *without* acquiring logical (transaction) locks — that asynchrony is the
//! entire point of the paper. The paper's C++ implementation relies on
//! benign word-sized races; in Rust we instead guard each record slot's
//! version data with one of `N` striped mutexes. Critical sections are a
//! handful of instructions (a pointer swap and a bit flip), and with 4096
//! stripes contention is negligible, so the paper's "no blocking
//! synchronization" behaviour is preserved in practice while staying
//! data-race-free. Every checkpointing strategy pays the identical stripe
//! cost, so relative overheads (the quantity the paper measures) are
//! unaffected.

use parking_lot::{Mutex, MutexGuard};

/// A power-of-two array of cache-line-padded mutexes, indexed by slot.
pub struct StripedMutex {
    stripes: Box<[PaddedMutex]>,
    mask: usize,
}

#[repr(align(64))]
struct PaddedMutex(Mutex<()>);

impl StripedMutex {
    /// Default stripe count: enough that 16 worker threads rarely collide.
    pub const DEFAULT_STRIPES: usize = 4096;

    /// Creates a striped lock with `stripes` rounded up to a power of two.
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        StripedMutex {
            stripes: (0..n).map(|_| PaddedMutex(Mutex::new(()))).collect(),
            mask: n - 1,
        }
    }

    /// Locks the stripe covering `slot` and returns its guard.
    #[inline]
    pub fn lock(&self, slot: usize) -> MutexGuard<'_, ()> {
        // Multiply-shift so adjacent slots land on different stripes
        // (adjacent slots are exactly what a capture scan touches).
        let h = (slot as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        self.stripes[h as usize & self.mask].0.lock()
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }
}

impl Default for StripedMutex {
    fn default() -> Self {
        Self::new(Self::DEFAULT_STRIPES)
    }
}

impl std::fmt::Debug for StripedMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StripedMutex(stripes={})", self.stripes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn rounds_to_power_of_two() {
        assert_eq!(StripedMutex::new(1000).stripe_count(), 1024);
        assert_eq!(StripedMutex::new(1).stripe_count(), 1);
        assert_eq!(StripedMutex::new(0).stripe_count(), 1);
    }

    #[test]
    fn same_slot_is_mutually_exclusive() {
        // Hammer one slot from many threads; a non-atomic counter under the
        // stripe lock must not lose updates.
        let lock = Arc::new(StripedMutex::new(16));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut shared = 0usize;
        let shared_ptr = &mut shared as *mut usize as usize;
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = lock.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let _g = lock.lock(7);
                        // SAFETY: all mutation happens under the same
                        // stripe guard; the main thread joins before
                        // reading.
                        unsafe {
                            *(shared_ptr as *mut usize) += 1;
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared, 80_000);
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn adjacent_slots_spread_across_stripes() {
        let lock = StripedMutex::new(4096);
        // Lock slot 0, then verify slot 1 can be locked without blocking —
        // i.e. the multiply-shift keeps neighbours apart.
        let _g0 = lock.lock(0);
        let g1 = lock.lock(1); // would deadlock if same stripe
        drop(g1);
    }
}
