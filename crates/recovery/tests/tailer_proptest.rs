//! Property test for incremental multi-segment tailing (ISSUE 7).
//!
//! For arbitrary seeded interleavings of append / implicit rotate+seal /
//! group-commit sync / tailer poll over a tiny-segment command log, the
//! record stream an incrementally polling [`LogTailer`] hands its sink
//! must equal the one-shot [`read_dir_logs`] scan of the final directory
//! — same records, same order, nothing skipped, nothing duplicated, no
//! matter where the polls landed relative to rotations and unflushed
//! tails.
//!
//! Replay a failing case with `SIM_SEED=<seed> cargo test -p
//! calc-recovery --test tailer_proptest`.

use std::path::PathBuf;
use std::sync::Arc;

use calc_common::rng::SplitMix;
use calc_common::simfs::SimVfs;
use calc_common::types::{CommitSeq, TxnId};
use calc_common::vfs::Vfs;
use calc_recovery::logfile::{read_dir_logs, SegmentedLogWriter};
use calc_recovery::tailer::{LogTailer, TailStatus};
use calc_txn::commitlog::CommitRecord;
use calc_txn::proc::ProcId;

const CASES: u64 = 48;
const OPS_PER_CASE: u64 = 160;
const SEED_BASE: u64 = 0x7a11_e27a_0000_0000;

/// `SIM_SEED` (decimal or 0x-hex) overrides the case-0 seed for replay,
/// mirroring the sim crate's convention.
fn base_seed() -> u64 {
    match std::env::var("SIM_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("SIM_SEED {s:?} is not a u64"))
        }
        Err(_) => SEED_BASE,
    }
}

fn rec(seq: u64, rng: &mut SplitMix) -> CommitRecord {
    let len = rng.next_below(40) as usize;
    let params: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
    CommitRecord {
        seq: CommitSeq(seq),
        txn: TxnId(seq),
        proc: ProcId(rng.next_u64() as u16),
        params: params.into(),
    }
}

fn assert_streams_equal(case: u64, seed: u64, label: &str, got: &[CommitRecord], want: &[CommitRecord]) {
    assert_eq!(
        got.len(),
        want.len(),
        "case {case} (seed {seed:#x}): {label}: tailed {} records, expected {}",
        got.len(),
        want.len()
    );
    for (g, w) in got.iter().zip(want) {
        assert!(
            g.seq == w.seq && g.txn == w.txn && g.proc == w.proc && g.params == w.params,
            "case {case} (seed {seed:#x}): {label}: record {:?} diverged from {:?}",
            g.seq,
            w.seq
        );
    }
}

/// One seeded interleaving: a writer appending (with 512-byte segments,
/// so rotations are frequent) and syncing at random points, a tailer
/// polling at random points, then a final sync + drain.
fn run_case(case: u64) {
    let seed = base_seed() ^ case;
    let mut rng = SplitMix::new(seed);
    let vfs: Arc<dyn Vfs> = Arc::new(SimVfs::new(seed));
    let dir = PathBuf::from("/tail/cmdlog");

    let mut writer = SegmentedLogWriter::create(vfs.clone(), &dir, 512).expect("create log");
    let mut tailer = LogTailer::new(vfs.clone(), &dir);
    let mut appended: Vec<CommitRecord> = Vec::new();
    let mut tailed: Vec<CommitRecord> = Vec::new();
    let mut seq = 0u64;

    for _ in 0..OPS_PER_CASE {
        match rng.next_below(10) {
            // Weighted toward appends so cases cross many segment
            // boundaries; a poll can land mid-rotation (sealed segment
            // ended, next not yet listed — or listed but empty).
            0..=5 => {
                seq += 1;
                let r = rec(seq, &mut rng);
                writer.append(&r).expect("append");
                appended.push(r);
            }
            6..=7 => writer.sync().expect("sync"),
            _ => {
                let poll = tailer
                    .poll(&mut |r| {
                        tailed.push(r.clone());
                        Ok(())
                    })
                    .expect("mid-run poll");
                assert_eq!(
                    poll.status,
                    TailStatus::CaughtUp,
                    "case {case} (seed {seed:#x}): live tail must never wedge or lose its prefix"
                );
                // Whatever the poll applied must be a prefix of the
                // commit order — never reordered, never skipped.
                assert_streams_equal(case, seed, "mid-run prefix", &tailed, &appended[..tailed.len()]);
            }
        }
    }

    // Final seal + drain: after a sync, one poll must surface every
    // remaining record.
    writer.sync().expect("final sync");
    tailer
        .poll(&mut |r| {
            tailed.push(r.clone());
            Ok(())
        })
        .expect("final poll");

    assert_streams_equal(case, seed, "final tailed stream", &tailed, &appended);
    let one_shot = read_dir_logs(vfs.as_ref(), &dir).expect("read_dir_logs");
    assert_streams_equal(case, seed, "one-shot scan", &one_shot, &appended);
}

#[test]
fn tailer_matches_one_shot_scan_across_interleavings() {
    for case in 0..CASES {
        run_case(case);
    }
}
