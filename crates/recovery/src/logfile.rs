//! A durable, append-only command log file.
//!
//! The paper's recovery story (§1, §3) builds on VoltDB-style command
//! logging: persist each transaction's *input* `(commit seq, procedure,
//! parameters)` — far lighter than ARIES-style value logging — and replay
//! it deterministically after loading a checkpoint. This module provides
//! the file format:
//!
//! ```text
//! record: len:u32 | crc32:u32 | seq:u64 | txn:u64 | proc:u16 | params…
//! ```
//!
//! Each record is individually CRC-protected, so a torn tail (crash
//! mid-append) is detected and cleanly truncated at read time. The writer
//! offers group-commit flushing: `append` buffers, `sync` makes everything
//! appended so far durable — callers batch syncs to amortize the fsync
//! cost, which is the command-logging trade the paper describes.

use std::io::{self, BufReader, Read};
use std::path::Path;
use std::sync::Arc;

use calc_common::crc::crc32;
use calc_common::vfs::{OsVfs, Vfs, VfsFile, VfsRead};
use calc_common::types::{CommitSeq, TxnId};
use calc_txn::commitlog::CommitRecord;
use calc_txn::proc::ProcId;

/// Appending side of the command log.
pub struct CommandLogWriter {
    out: Box<dyn VfsFile>,
    appended: u64,
}

impl CommandLogWriter {
    /// Creates (or truncates) a command log at `path` on the real
    /// filesystem.
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::create_with_vfs(&OsVfs, path)
    }

    /// Creates (or truncates) a command log at `path` through an
    /// arbitrary [`Vfs`].
    ///
    /// The new (empty) file is fsynced and so is its parent directory
    /// before this returns: the log's *name* must be durable before the
    /// first commit is acknowledged, or a crash could lose the entire
    /// log file while the engine believes synced batches are safe.
    pub fn create_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        let mut file = vfs.create(path)?;
        file.sync()?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                vfs.sync_dir(parent)?;
            }
        }
        Ok(CommandLogWriter {
            out: file,
            appended: 0,
        })
    }

    /// Appends one commit record (buffered; call [`Self::sync`] for
    /// durability).
    pub fn append(&mut self, rec: &CommitRecord) -> io::Result<()> {
        let mut body = Vec::with_capacity(18 + rec.params.len());
        body.extend_from_slice(&rec.seq.0.to_le_bytes());
        body.extend_from_slice(&rec.txn.0.to_le_bytes());
        body.extend_from_slice(&rec.proc.0.to_le_bytes());
        body.extend_from_slice(&rec.params);
        self.out.write_all(&(body.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&body).to_le_bytes())?;
        self.out.write_all(&body)?;
        self.appended += 1;
        Ok(())
    }

    /// Group commit: flushes buffered records and fsyncs.
    pub fn sync(&mut self) -> io::Result<()> {
        self.out.sync()
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

/// Reading side: iterates valid records, stopping at the first torn or
/// corrupt one (everything before it is trusted).
pub struct CommandLogReader {
    input: BufReader<Box<dyn VfsRead>>,
}

impl CommandLogReader {
    /// Opens a command log for reading on the real filesystem.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_vfs(&OsVfs, path)
    }

    /// Opens a command log for reading through an arbitrary [`Vfs`].
    pub fn open_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        Ok(CommandLogReader {
            input: BufReader::with_capacity(1 << 20, vfs.open_read(path)?),
        })
    }

    /// Reads every valid record. A torn tail is silently dropped; a
    /// corrupt record mid-file also stops the scan (nothing after it can
    /// be trusted for replay ordering).
    pub fn read_all(mut self) -> io::Result<Vec<CommitRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = read_one(&mut self.input)? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Decodes the next record from `input`. `Ok(None)` on clean EOF, a torn
/// tail, or a corrupt record (nothing after a bad CRC can be trusted for
/// replay ordering); `Err` only on real I/O failure.
fn read_one(input: &mut impl Read) -> io::Result<Option<CommitRecord>> {
    let mut head = [0u8; 8];
    match input.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
    let expected_crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if !(18..=(1 << 30)).contains(&len) {
        return Ok(None); // implausible: torn write
    }
    let mut body = vec![0u8; len];
    match input.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if crc32(&body) != expected_crc {
        return Ok(None);
    }
    let seq = CommitSeq(u64::from_le_bytes(body[0..8].try_into().unwrap()));
    let txn = TxnId(u64::from_le_bytes(body[8..16].try_into().unwrap()));
    let proc = ProcId(u16::from_le_bytes(body[16..18].try_into().unwrap()));
    let params: Arc<[u8]> = Arc::from(body[18..].to_vec().into_boxed_slice());
    Ok(Some(CommitRecord {
        seq,
        txn,
        proc,
        params,
    }))
}

/// Streaming reader: a prefetch thread reads, CRC-checks, and decodes
/// records ahead of the consumer through a bounded channel, so replay's
/// single-threaded apply (commit order is mandatory) overlaps with log
/// I/O instead of waiting for a full up-front [`CommandLogReader::read_all`].
///
/// Iteration ends at clean EOF or a torn/corrupt tail — same trust
/// boundary as `read_all`. A real I/O error is yielded as the final
/// `Err` item.
pub struct CommandLogStream {
    rx: std::sync::mpsc::Receiver<io::Result<CommitRecord>>,
    prefetcher: Option<std::thread::JoinHandle<()>>,
}

impl CommandLogStream {
    /// Records buffered ahead of the consumer.
    pub const CHANNEL_DEPTH: usize = 1024;

    /// Opens a command log for streaming on the real filesystem.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_vfs(&OsVfs, path)
    }

    /// Opens a command log for streaming through an arbitrary [`Vfs`].
    /// The open itself is synchronous (a missing file fails here, not on
    /// the prefetch thread); decoding starts immediately afterwards.
    pub fn open_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        let file = vfs.open_read(path)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(Self::CHANNEL_DEPTH);
        let prefetcher = std::thread::spawn(move || {
            let mut input = BufReader::with_capacity(1 << 20, file);
            loop {
                match read_one(&mut input) {
                    Ok(Some(rec)) => {
                        if tx.send(Ok(rec)).is_err() {
                            return; // consumer dropped the stream
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        });
        Ok(CommandLogStream {
            rx,
            prefetcher: Some(prefetcher),
        })
    }
}

impl Iterator for CommandLogStream {
    type Item = io::Result<CommitRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rx.recv().ok()
    }
}

impl Drop for CommandLogStream {
    fn drop(&mut self) {
        // Disconnect first so a blocked prefetcher's send fails and it
        // exits; then reap it.
        let (_tx, dead_rx) = std::sync::mpsc::sync_channel(0);
        self.rx = dead_rx;
        if let Some(h) = self.prefetcher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "calc-logfile-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ))
    }

    fn rec(seq: u64, params: &[u8]) -> CommitRecord {
        CommitRecord {
            seq: CommitSeq(seq),
            txn: TxnId(seq * 10),
            proc: ProcId(3),
            params: Arc::from(params.to_vec().into_boxed_slice()),
        }
    }

    #[test]
    fn roundtrip() {
        let path = tmp("rt");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=100u64 {
            w.append(&rec(i, &i.to_le_bytes())).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.appended(), 100);
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(records[41].seq, CommitSeq(42));
        assert_eq!(records[41].txn, TxnId(420));
        assert_eq!(&records[41].params[..], &42u64.to_le_bytes());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=10u64 {
            w.append(&rec(i, b"payload")).unwrap();
        }
        w.sync().unwrap();
        // Tear the last record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 9, "torn tail dropped, prefix intact");
    }

    #[test]
    fn corrupt_record_stops_scan() {
        let path = tmp("corrupt");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=10u64 {
            w.append(&rec(i, b"payload-payload")).unwrap();
        }
        w.sync().unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert!(records.len() < 10);
    }

    #[test]
    fn empty_log_reads_empty() {
        let path = tmp("empty");
        let mut w = CommandLogWriter::create(&path).unwrap();
        w.sync().unwrap();
        assert!(CommandLogReader::open(&path)
            .unwrap()
            .read_all()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stream_matches_read_all_and_stops_at_torn_tail() {
        let path = tmp("stream");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=500u64 {
            w.append(&rec(i, &i.to_le_bytes())).unwrap();
        }
        w.sync().unwrap();
        let eager = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        let streamed: Vec<CommitRecord> = CommandLogStream::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed.len(), eager.len());
        assert!(streamed
            .iter()
            .zip(&eager)
            .all(|(a, b)| a.seq == b.seq && a.params == b.params));

        // Tear the tail: the stream ends early, no error item.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let torn: Vec<_> = CommandLogStream::open(&path).unwrap().collect();
        assert_eq!(torn.len(), 499);
        assert!(torn.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn dropping_stream_midway_reaps_prefetcher() {
        let path = tmp("streamdrop");
        let mut w = CommandLogWriter::create(&path).unwrap();
        // More records than the channel holds, so the prefetcher is
        // blocked on send when the consumer walks away.
        for i in 1..=(CommandLogStream::CHANNEL_DEPTH as u64 * 3) {
            w.append(&rec(i, b"x")).unwrap();
        }
        w.sync().unwrap();
        let mut s = CommandLogStream::open(&path).unwrap();
        let first = s.next().unwrap().unwrap();
        assert_eq!(first.seq, CommitSeq(1));
        drop(s); // must not deadlock
    }

    #[test]
    fn empty_params_roundtrip() {
        let path = tmp("noparams");
        let mut w = CommandLogWriter::create(&path).unwrap();
        w.append(&rec(1, b"")).unwrap();
        w.sync().unwrap();
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].params.is_empty());
    }
}
