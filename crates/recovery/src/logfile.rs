//! A durable, append-only command log file.
//!
//! The paper's recovery story (§1, §3) builds on VoltDB-style command
//! logging: persist each transaction's *input* `(commit seq, procedure,
//! parameters)` — far lighter than ARIES-style value logging — and replay
//! it deterministically after loading a checkpoint. This module provides
//! the file format:
//!
//! ```text
//! record: len:u32 | crc32:u32 | seq:u64 | txn:u64 | proc:u16 | params…
//! ```
//!
//! Each record is individually CRC-protected, so a torn tail (crash
//! mid-append) is detected and cleanly truncated at read time. The writer
//! offers group-commit flushing: `append` buffers, `sync` makes everything
//! appended so far durable — callers batch syncs to amortize the fsync
//! cost, which is the command-logging trade the paper describes.
//!
//! ## Segmentation
//!
//! A single ever-growing log file can never be truncated while the engine
//! is running, so long uptimes accumulate unbounded replay debt on disk.
//! [`SegmentedLogWriter`] rotates the log across `cmdlog-{i:06}.log`
//! segment files at a size threshold; once a durable checkpoint's
//! watermark covers every commit in a sealed segment,
//! [`truncate_segments_below`] deletes it. Readers
//! ([`read_dir_logs`], [`CommandLogStream::open_dir_with_vfs`]) walk the
//! surviving segments in index order with the same trust boundary as a
//! single file: the first torn or corrupt record anywhere ends the scan,
//! because nothing after it can be trusted for replay ordering.

use std::io::{self, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use calc_common::crc::crc32;
use calc_common::vfs::{OsVfs, Vfs, VfsFile, VfsRead};
use calc_common::types::{CommitSeq, TxnId};
use calc_txn::commitlog::CommitRecord;
use calc_txn::proc::ProcId;

/// Appending side of the command log.
pub struct CommandLogWriter {
    out: Box<dyn VfsFile>,
    appended: u64,
}

impl CommandLogWriter {
    /// Creates (or truncates) a command log at `path` on the real
    /// filesystem.
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::create_with_vfs(&OsVfs, path)
    }

    /// Creates (or truncates) a command log at `path` through an
    /// arbitrary [`Vfs`].
    ///
    /// The new (empty) file is fsynced and so is its parent directory
    /// before this returns: the log's *name* must be durable before the
    /// first commit is acknowledged, or a crash could lose the entire
    /// log file while the engine believes synced batches are safe.
    pub fn create_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        let mut file = vfs.create(path)?;
        file.sync()?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                vfs.sync_dir(parent)?;
            }
        }
        Ok(CommandLogWriter {
            out: file,
            appended: 0,
        })
    }

    /// Appends one commit record (buffered; call [`Self::sync`] for
    /// durability).
    pub fn append(&mut self, rec: &CommitRecord) -> io::Result<()> {
        let mut body = Vec::with_capacity(18 + rec.params.len());
        body.extend_from_slice(&rec.seq.0.to_le_bytes());
        body.extend_from_slice(&rec.txn.0.to_le_bytes());
        body.extend_from_slice(&rec.proc.0.to_le_bytes());
        body.extend_from_slice(&rec.params);
        self.out.write_all(&(body.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&body).to_le_bytes())?;
        self.out.write_all(&body)?;
        self.appended += 1;
        Ok(())
    }

    /// Group commit: flushes buffered records and fsyncs.
    pub fn sync(&mut self) -> io::Result<()> {
        self.out.sync()
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

/// Name of command-log segment `i`.
pub fn segment_file_name(i: u64) -> String {
    format!("cmdlog-{i:06}.log")
}

/// Parses `cmdlog-{i:06}.log`.
fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("cmdlog-")?;
    let idx = rest.strip_suffix(".log")?;
    if idx.len() != 6 {
        return None;
    }
    idx.parse().ok()
}

/// Lists a directory's command-log segments, ascending by index.
pub fn list_segments(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for path in vfs.read_dir(dir)? {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if let Some(i) = parse_segment_name(&name) {
            out.push((i, path));
        }
    }
    out.sort_unstable_by_key(|&(i, _)| i);
    Ok(out)
}

/// A command-log writer that rotates across `cmdlog-{i:06}.log` segment
/// files at a size threshold, so sealed segments can later be deleted by
/// [`truncate_segments_below`] once a durable checkpoint covers them.
///
/// Rotation seals the old segment with an fsync *before* the new one is
/// created, so every non-active segment on disk is either complete or
/// evidence of a crash; a record never splits across segments.
pub struct SegmentedLogWriter {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    segment_bytes: u64,
    seg_index: u64,
    seg_written: u64,
    inner: CommandLogWriter,
    appended: u64,
    rotations: u64,
}

impl SegmentedLogWriter {
    /// Creates a segmented log in `dir` (created if needed), rotating
    /// once the active segment reaches `segment_bytes` (clamped to at
    /// least 512 B — tiny thresholds are only useful to tests and the
    /// crash simulator). Existing segments are left untouched — the writer
    /// starts a fresh segment above the highest surviving index, never
    /// appending to a file whose tail it did not write.
    pub fn create(vfs: Arc<dyn Vfs>, dir: &Path, segment_bytes: u64) -> io::Result<Self> {
        vfs.create_dir_all(dir)?;
        let next = list_segments(vfs.as_ref(), dir)?
            .last()
            .map(|&(i, _)| i + 1)
            .unwrap_or(0);
        let segment_bytes = segment_bytes.max(512);
        let inner =
            CommandLogWriter::create_with_vfs(vfs.as_ref(), &dir.join(segment_file_name(next)))?;
        Ok(SegmentedLogWriter {
            vfs,
            dir: dir.to_path_buf(),
            segment_bytes,
            seg_index: next,
            seg_written: 0,
            inner,
            appended: 0,
            rotations: 0,
        })
    }

    /// Appends one commit record, rotating first if the active segment is
    /// full (so a record never splits across segments). Buffered; call
    /// [`Self::sync`] for durability.
    pub fn append(&mut self, rec: &CommitRecord) -> io::Result<()> {
        if self.seg_written >= self.segment_bytes {
            self.rotate()?;
        }
        self.inner.append(rec)?;
        self.seg_written += 8 + 18 + rec.params.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Seals the active segment (fsync) and opens the next one. The old
    /// segment's bytes are durable before the new name exists, so a crash
    /// between the two leaves at worst an empty newest segment.
    fn rotate(&mut self) -> io::Result<()> {
        self.inner.sync()?;
        self.seg_index += 1;
        self.inner = CommandLogWriter::create_with_vfs(
            self.vfs.as_ref(),
            &self.dir.join(segment_file_name(self.seg_index)),
        )?;
        self.seg_written = 0;
        self.rotations += 1;
        Ok(())
    }

    /// Group commit: flushes and fsyncs the active segment.
    pub fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }

    /// Records appended across all segments.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Index of the active segment.
    pub fn active_index(&self) -> u64 {
        self.seg_index
    }

    /// Segment rotations performed since creation.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// The directory the segments live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Reads every valid record across a directory's segments in index
/// order. The first torn or corrupt record anywhere ends the scan —
/// later segments hold later commits, and replay must not skip a gap.
pub fn read_dir_logs(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<CommitRecord>> {
    let mut out = Vec::new();
    for (_, path) in list_segments(vfs, dir)? {
        let mut input = BufReader::with_capacity(1 << 20, vfs.open_read(&path)?);
        loop {
            match read_one_outcome(&mut input)? {
                ReadOutcome::Record(rec) => out.push(rec),
                ReadOutcome::CleanEof => break,
                ReadOutcome::Torn => return Ok(out),
            }
        }
    }
    Ok(out)
}

/// Outcome of one [`truncate_segments_below`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TruncateStats {
    /// Segments deleted.
    pub removed: u64,
    /// Bytes those segments occupied on disk.
    pub bytes: u64,
}

/// Deletes sealed command-log segments whose every commit is covered by a
/// durable checkpoint at `watermark`. A segment is removed only if **all**
/// of the following hold, checked per segment in index order (stopping at
/// the first survivor, since later segments hold later commits):
///
/// * it is not the highest-index (active) segment — the writer may still
///   be appending to it;
/// * it scans cleanly end to end — a torn segment is evidence of a crash
///   and is left for recovery to judge;
/// * its newest record's seq is `<= watermark` (an empty sealed segment
///   contains nothing to lose and is removed).
///
/// The deletions are made durable with a directory fsync before
/// returning, so a crash cannot resurrect a half-truncated state that
/// recovery would misread as a gap.
pub fn truncate_segments_below(
    vfs: &dyn Vfs,
    dir: &Path,
    watermark: CommitSeq,
) -> io::Result<TruncateStats> {
    let segments = list_segments(vfs, dir)?;
    let Some(active) = segments.last().map(|&(i, _)| i) else {
        return Ok(TruncateStats::default());
    };
    let mut stats = TruncateStats::default();
    for (i, path) in &segments {
        if *i == active {
            break;
        }
        let mut input = BufReader::with_capacity(1 << 20, vfs.open_read(path)?);
        let mut last_seq = None;
        let clean = loop {
            match read_one_outcome(&mut input)? {
                ReadOutcome::Record(rec) => last_seq = Some(rec.seq),
                ReadOutcome::CleanEof => break true,
                ReadOutcome::Torn => break false,
            }
        };
        if !clean || last_seq.is_some_and(|s| s > watermark) {
            break;
        }
        let bytes = vfs.len(path).unwrap_or(0);
        vfs.remove_file(path)?;
        stats.removed += 1;
        stats.bytes += bytes;
    }
    if stats.removed > 0 {
        vfs.sync_dir(dir)?;
    }
    Ok(stats)
}

/// Reading side: iterates valid records, stopping at the first torn or
/// corrupt one (everything before it is trusted).
pub struct CommandLogReader {
    input: BufReader<Box<dyn VfsRead>>,
}

impl CommandLogReader {
    /// Opens a command log for reading on the real filesystem.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_vfs(&OsVfs, path)
    }

    /// Opens a command log for reading through an arbitrary [`Vfs`].
    pub fn open_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        Ok(CommandLogReader {
            input: BufReader::with_capacity(1 << 20, vfs.open_read(path)?),
        })
    }

    /// Reads every valid record. A torn tail is silently dropped; a
    /// corrupt record mid-file also stops the scan (nothing after it can
    /// be trusted for replay ordering).
    pub fn read_all(mut self) -> io::Result<Vec<CommitRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = read_one(&mut self.input)? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// What decoding the next record produced. Multi-segment readers need to
/// tell a cleanly-ended segment (continue with the next one) from a torn
/// or corrupt record (stop the whole scan).
pub(crate) enum ReadOutcome {
    Record(CommitRecord),
    CleanEof,
    /// Torn tail or corrupt record — the rest of the log is untrusted.
    Torn,
}

/// Decodes the next record from `input`. `Ok(None)` on clean EOF, a torn
/// tail, or a corrupt record (nothing after a bad CRC can be trusted for
/// replay ordering); `Err` only on real I/O failure.
fn read_one(input: &mut impl Read) -> io::Result<Option<CommitRecord>> {
    match read_one_outcome(input)? {
        ReadOutcome::Record(rec) => Ok(Some(rec)),
        ReadOutcome::CleanEof | ReadOutcome::Torn => Ok(None),
    }
}

pub(crate) fn read_one_outcome(input: &mut impl Read) -> io::Result<ReadOutcome> {
    let mut head = [0u8; 8];
    match read_exact_or_eof(input, &mut head)? {
        Filled::Full => {}
        Filled::Empty => return Ok(ReadOutcome::CleanEof),
        Filled::Partial => return Ok(ReadOutcome::Torn),
    }
    let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
    let expected_crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if !(18..=(1 << 30)).contains(&len) {
        return Ok(ReadOutcome::Torn); // implausible: torn write
    }
    let mut body = vec![0u8; len];
    match read_exact_or_eof(input, &mut body)? {
        Filled::Full => {}
        Filled::Empty | Filled::Partial => return Ok(ReadOutcome::Torn),
    }
    if crc32(&body) != expected_crc {
        return Ok(ReadOutcome::Torn);
    }
    let seq = CommitSeq(u64::from_le_bytes(body[0..8].try_into().unwrap()));
    let txn = TxnId(u64::from_le_bytes(body[8..16].try_into().unwrap()));
    let proc = ProcId(u16::from_le_bytes(body[16..18].try_into().unwrap()));
    let params: Arc<[u8]> = Arc::from(body[18..].to_vec().into_boxed_slice());
    Ok(ReadOutcome::Record(CommitRecord {
        seq,
        txn,
        proc,
        params,
    }))
}

enum Filled {
    Full,
    /// EOF before the first byte — a record boundary.
    Empty,
    /// EOF mid-buffer — a torn write.
    Partial,
}

fn read_exact_or_eof(input: &mut impl Read, buf: &mut [u8]) -> io::Result<Filled> {
    let mut at = 0;
    while at < buf.len() {
        match input.read(&mut buf[at..]) {
            Ok(0) => {
                return Ok(if at == 0 { Filled::Empty } else { Filled::Partial });
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Filled::Full)
}

/// Streaming reader: a prefetch thread reads, CRC-checks, and decodes
/// records ahead of the consumer through a bounded channel, so replay's
/// single-threaded apply (commit order is mandatory) overlaps with log
/// I/O instead of waiting for a full up-front [`CommandLogReader::read_all`].
///
/// Iteration ends at clean EOF or a torn/corrupt tail — same trust
/// boundary as `read_all`. A real I/O error is yielded as the final
/// `Err` item.
pub struct CommandLogStream {
    rx: std::sync::mpsc::Receiver<io::Result<CommitRecord>>,
    prefetcher: Option<std::thread::JoinHandle<()>>,
}

impl CommandLogStream {
    /// Records buffered ahead of the consumer.
    pub const CHANNEL_DEPTH: usize = 1024;

    /// Opens a command log for streaming on the real filesystem.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_vfs(&OsVfs, path)
    }

    /// Opens a command log for streaming through an arbitrary [`Vfs`].
    /// The open itself is synchronous (a missing file fails here, not on
    /// the prefetch thread); decoding starts immediately afterwards.
    pub fn open_with_vfs(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        let file = vfs.open_read(path)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(Self::CHANNEL_DEPTH);
        let prefetcher = std::thread::spawn(move || {
            let mut input = BufReader::with_capacity(1 << 20, file);
            loop {
                match read_one(&mut input) {
                    Ok(Some(rec)) => {
                        if tx.send(Ok(rec)).is_err() {
                            return; // consumer dropped the stream
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        });
        Ok(CommandLogStream {
            rx,
            prefetcher: Some(prefetcher),
        })
    }

    /// Opens a segmented command-log directory for streaming: segments
    /// are decoded in index order on the prefetch thread, with the same
    /// trust boundary as [`read_dir_logs`] — the first torn or corrupt
    /// record anywhere ends the stream. Listing (and the first segment
    /// open) happens synchronously so a missing directory fails here.
    pub fn open_dir_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path) -> io::Result<Self> {
        let segments = list_segments(vfs.as_ref(), dir)?;
        let first = match segments.first() {
            Some((_, path)) => Some(vfs.open_read(path)?),
            None => None,
        };
        let (tx, rx) = std::sync::mpsc::sync_channel(Self::CHANNEL_DEPTH);
        let prefetcher = std::thread::spawn(move || {
            let mut pending = first;
            for (_, path) in &segments {
                let file = match pending.take() {
                    Some(f) => f,
                    None => match vfs.open_read(path) {
                        Ok(f) => f,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    },
                };
                let mut input = BufReader::with_capacity(1 << 20, file);
                loop {
                    match read_one_outcome(&mut input) {
                        Ok(ReadOutcome::Record(rec)) => {
                            if tx.send(Ok(rec)).is_err() {
                                return; // consumer dropped the stream
                            }
                        }
                        Ok(ReadOutcome::CleanEof) => break,
                        Ok(ReadOutcome::Torn) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            }
        });
        Ok(CommandLogStream {
            rx,
            prefetcher: Some(prefetcher),
        })
    }
}

impl Iterator for CommandLogStream {
    type Item = io::Result<CommitRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rx.recv().ok()
    }
}

impl Drop for CommandLogStream {
    fn drop(&mut self) {
        // Disconnect first so a blocked prefetcher's send fails and it
        // exits; then reap it.
        let (_tx, dead_rx) = std::sync::mpsc::sync_channel(0);
        self.rx = dead_rx;
        if let Some(h) = self.prefetcher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "calc-logfile-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ))
    }

    fn rec(seq: u64, params: &[u8]) -> CommitRecord {
        CommitRecord {
            seq: CommitSeq(seq),
            txn: TxnId(seq * 10),
            proc: ProcId(3),
            params: Arc::from(params.to_vec().into_boxed_slice()),
        }
    }

    #[test]
    fn roundtrip() {
        let path = tmp("rt");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=100u64 {
            w.append(&rec(i, &i.to_le_bytes())).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.appended(), 100);
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(records[41].seq, CommitSeq(42));
        assert_eq!(records[41].txn, TxnId(420));
        assert_eq!(&records[41].params[..], &42u64.to_le_bytes());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=10u64 {
            w.append(&rec(i, b"payload")).unwrap();
        }
        w.sync().unwrap();
        // Tear the last record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 9, "torn tail dropped, prefix intact");
    }

    #[test]
    fn corrupt_record_stops_scan() {
        let path = tmp("corrupt");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=10u64 {
            w.append(&rec(i, b"payload-payload")).unwrap();
        }
        w.sync().unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert!(records.len() < 10);
    }

    #[test]
    fn empty_log_reads_empty() {
        let path = tmp("empty");
        let mut w = CommandLogWriter::create(&path).unwrap();
        w.sync().unwrap();
        assert!(CommandLogReader::open(&path)
            .unwrap()
            .read_all()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stream_matches_read_all_and_stops_at_torn_tail() {
        let path = tmp("stream");
        let mut w = CommandLogWriter::create(&path).unwrap();
        for i in 1..=500u64 {
            w.append(&rec(i, &i.to_le_bytes())).unwrap();
        }
        w.sync().unwrap();
        let eager = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        let streamed: Vec<CommitRecord> = CommandLogStream::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed.len(), eager.len());
        assert!(streamed
            .iter()
            .zip(&eager)
            .all(|(a, b)| a.seq == b.seq && a.params == b.params));

        // Tear the tail: the stream ends early, no error item.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let torn: Vec<_> = CommandLogStream::open(&path).unwrap().collect();
        assert_eq!(torn.len(), 499);
        assert!(torn.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn dropping_stream_midway_reaps_prefetcher() {
        let path = tmp("streamdrop");
        let mut w = CommandLogWriter::create(&path).unwrap();
        // More records than the channel holds, so the prefetcher is
        // blocked on send when the consumer walks away.
        for i in 1..=(CommandLogStream::CHANNEL_DEPTH as u64 * 3) {
            w.append(&rec(i, b"x")).unwrap();
        }
        w.sync().unwrap();
        let mut s = CommandLogStream::open(&path).unwrap();
        let first = s.next().unwrap().unwrap();
        assert_eq!(first.seq, CommitSeq(1));
        drop(s); // must not deadlock
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = tmp(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Writes `n` records of `params_len`-byte payloads into a segmented
    /// log with the given threshold; returns the directory.
    fn seg_log(name: &str, n: u64, segment_bytes: u64) -> std::path::PathBuf {
        let dir = tmpdir(name);
        let mut w = SegmentedLogWriter::create(Arc::new(OsVfs), &dir, segment_bytes).unwrap();
        for i in 1..=n {
            w.append(&rec(i, &[7u8; 100])).unwrap();
        }
        w.sync().unwrap();
        dir
    }

    #[test]
    fn segmented_writer_rotates_and_reads_back_in_order() {
        // 100 records × 126 bytes ≫ 4 KiB: several segments.
        let dir = seg_log("seg-rt", 100, 4 << 10);
        let segs = list_segments(&OsVfs, &dir).unwrap();
        assert!(segs.len() > 1, "expected rotation, got {} segment", segs.len());
        assert_eq!(segs[0].0, 0);
        let records = read_dir_logs(&OsVfs, &dir).unwrap();
        assert_eq!(records.len(), 100);
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));

        let streamed: Vec<CommitRecord> =
            CommandLogStream::open_dir_with_vfs(Arc::new(OsVfs), &dir)
                .unwrap()
                .map(|r| r.unwrap())
                .collect();
        assert_eq!(streamed.len(), 100);
        assert!(streamed
            .iter()
            .zip(&records)
            .all(|(a, b)| a.seq == b.seq && a.params == b.params));
    }

    #[test]
    fn segmented_writer_resumes_above_surviving_segments() {
        let dir = seg_log("seg-resume", 50, 4 << 10);
        let before = list_segments(&OsVfs, &dir).unwrap();
        let top = before.last().unwrap().0;
        // Restart: a new writer must not append to the old tail.
        let mut w = SegmentedLogWriter::create(Arc::new(OsVfs), &dir, 4 << 10).unwrap();
        assert_eq!(w.active_index(), top + 1);
        w.append(&rec(51, b"after-restart")).unwrap();
        w.sync().unwrap();
        let records = read_dir_logs(&OsVfs, &dir).unwrap();
        assert_eq!(records.len(), 51);
        assert_eq!(records.last().unwrap().seq, CommitSeq(51));
    }

    #[test]
    fn torn_record_in_middle_segment_stops_the_whole_scan() {
        let dir = seg_log("seg-torn", 100, 4 << 10);
        let segs = list_segments(&OsVfs, &dir).unwrap();
        assert!(segs.len() >= 3);
        // Tear the tail of the second segment: everything from there on is
        // untrusted, including later (intact) segments.
        let victim = &segs[1].1;
        let data = std::fs::read(victim).unwrap();
        std::fs::write(victim, &data[..data.len() - 5]).unwrap();
        let first_seg = read_dir_logs(&OsVfs, &dir)
            .unwrap()
            .len();
        let full: usize = 100;
        assert!(first_seg < full, "scan must stop inside segment 1");
        let streamed = CommandLogStream::open_dir_with_vfs(Arc::new(OsVfs), &dir)
            .unwrap()
            .count();
        assert_eq!(streamed, first_seg, "stream and eager scan agree");
    }

    #[test]
    fn truncate_removes_only_covered_sealed_segments() {
        let dir = seg_log("seg-trunc", 100, 4 << 10);
        let segs = list_segments(&OsVfs, &dir).unwrap();
        let active = segs.last().unwrap().0;
        // Watermark covering everything: every sealed segment goes, the
        // active one stays.
        let stats = truncate_segments_below(&OsVfs, &dir, CommitSeq(100)).unwrap();
        assert_eq!(stats.removed, active);
        assert!(stats.bytes > 0);
        let left = list_segments(&OsVfs, &dir).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, active);
        // Surviving records still replayable.
        let records = read_dir_logs(&OsVfs, &dir).unwrap();
        assert!(records.iter().all(|r| r.seq <= CommitSeq(100)));
    }

    #[test]
    fn truncate_refuses_segments_with_commits_above_the_watermark() {
        let dir = seg_log("seg-trunc-refuse", 100, 4 << 10);
        // Find the first segment's last seq; truncate with a watermark one
        // below it — nothing may be removed.
        let segs = list_segments(&OsVfs, &dir).unwrap();
        let first_last = {
            let mut input =
                BufReader::with_capacity(1 << 20, OsVfs.open_read(&segs[0].1).unwrap());
            let mut last = 0;
            while let Some(r) = read_one(&mut input).unwrap() {
                last = r.seq.0;
            }
            last
        };
        let stats =
            truncate_segments_below(&OsVfs, &dir, CommitSeq(first_last - 1)).unwrap();
        assert_eq!(stats, TruncateStats::default());
        assert_eq!(list_segments(&OsVfs, &dir).unwrap().len(), segs.len());
        // With the watermark exactly at the boundary, exactly one goes.
        let stats = truncate_segments_below(&OsVfs, &dir, CommitSeq(first_last)).unwrap();
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn truncate_never_removes_the_active_segment() {
        let dir = tmpdir("seg-trunc-active");
        let mut w = SegmentedLogWriter::create(Arc::new(OsVfs), &dir, 4 << 10).unwrap();
        w.append(&rec(1, b"only")).unwrap();
        w.sync().unwrap();
        let stats = truncate_segments_below(&OsVfs, &dir, CommitSeq(u64::MAX)).unwrap();
        assert_eq!(stats.removed, 0);
        assert_eq!(read_dir_logs(&OsVfs, &dir).unwrap().len(), 1);
    }

    #[test]
    fn truncate_leaves_torn_segments_for_recovery() {
        let dir = seg_log("seg-trunc-torn", 100, 4 << 10);
        let segs = list_segments(&OsVfs, &dir).unwrap();
        let victim = &segs[0].1;
        let data = std::fs::read(victim).unwrap();
        std::fs::write(victim, &data[..data.len() - 5]).unwrap();
        // Even an all-covering watermark must not delete the torn segment
        // (or anything after it).
        let stats = truncate_segments_below(&OsVfs, &dir, CommitSeq(u64::MAX)).unwrap();
        assert_eq!(stats.removed, 0);
        assert_eq!(list_segments(&OsVfs, &dir).unwrap().len(), segs.len());
    }

    #[test]
    fn empty_params_roundtrip() {
        let path = tmp("noparams");
        let mut w = CommandLogWriter::create(&path).unwrap();
        w.append(&rec(1, b"")).unwrap();
        w.sync().unwrap();
        let records = CommandLogReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].params.is_empty());
    }
}
